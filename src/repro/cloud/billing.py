"""Cost accounting for cloud runs.

The paper repeatedly frames storage and data-movement choices as
*performance/cost trade-offs* (§I, §III-A) without quantifying cost.
This module makes the trade-off measurable in the reproduction: a
:class:`BillingModel` prices VM-hours, egress bytes and storage
byte-hours so the strategy-comparison benchmarks can report dollars
next to seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.cluster import VirtualCluster
from repro.cloud.storage import StorageTier
from repro.telemetry.metrics import MetricsRegistry, NULL_METRICS
from repro.util.units import GB


@dataclass(frozen=True)
class PriceSheet:
    """Unit prices (USD). Defaults echo early-2010s public-cloud rates."""

    #: Egress price per GB leaving a site over the WAN.
    wan_egress_per_gb: float = 0.12
    #: Storage prices per GB-month by tier.
    storage_per_gb_month: dict = field(
        default_factory=lambda: {
            StorageTier.LOCAL: 0.0,  # bundled with the instance
            StorageTier.BLOCK: 0.10,
            StorageTier.NETWORK: 0.125,
        }
    )
    #: Per-request overhead price (API calls, negligible but nonzero).
    per_request: float = 0.00001
    #: VM billing granularity in seconds: 3600 is classic per-started-
    #: hour billing (the 2012 default); 1 models modern per-second
    #: billing. Partial units always round up.
    vm_billing_granularity_s: float = 3600.0

    def storage_rate_per_byte_second(self, tier: StorageTier) -> float:
        per_gb_month = self.storage_per_gb_month.get(tier, 0.0)
        return per_gb_month / GB / (30 * 24 * 3600.0)


@dataclass
class CostReport:
    """Line-itemed cost of one run."""

    vm_cost: float = 0.0
    egress_cost: float = 0.0
    storage_cost: float = 0.0
    request_cost: float = 0.0

    @property
    def total(self) -> float:
        return self.vm_cost + self.egress_cost + self.storage_cost + self.request_cost

    def __str__(self) -> str:
        return (
            f"total ${self.total:.4f} (vm ${self.vm_cost:.4f}, "
            f"egress ${self.egress_cost:.4f}, storage ${self.storage_cost:.4f}, "
            f"requests ${self.request_cost:.4f})"
        )


class BillingModel:
    """Accumulates costs for a cluster run."""

    def __init__(
        self,
        prices: PriceSheet | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.prices = prices or PriceSheet()
        self._wan_bytes = 0.0
        self._requests = 0
        self._storage_byte_seconds: dict[StorageTier, float] = {}
        metrics = metrics if metrics is not None else NULL_METRICS
        self._m_wan_bytes = metrics.counter("billing.wan_bytes")
        self._m_requests = metrics.counter("billing.requests")
        self._metrics = metrics

    def record_wan_bytes(self, nbytes: float) -> None:
        self._wan_bytes += nbytes
        self._m_wan_bytes.inc(nbytes)

    def record_request(self, count: int = 1) -> None:
        self._requests += count
        self._m_requests.inc(count)

    def record_storage(self, tier: StorageTier, nbytes: float, seconds: float) -> None:
        self._storage_byte_seconds[tier] = (
            self._storage_byte_seconds.get(tier, 0.0) + nbytes * seconds
        )
        self._metrics.counter(
            "billing.storage_byte_seconds", tier=tier.value
        ).inc(nbytes * seconds)

    def report(self, cluster: VirtualCluster) -> CostReport:
        """Price the run: VM uptime is read off the cluster's VMs.

        Billing rounds uptime up to the price sheet's granularity —
        per started hour by default, which is why short elastic bursts
        are disproportionately expensive under 2012-style billing.
        """
        import math

        granularity = self.prices.vm_billing_granularity_s
        report = CostReport()
        for vm in cluster.vms.values():
            units = math.ceil(max(vm.uptime, 1e-9) / granularity)
            billed_hours = units * granularity / 3600.0
            report.vm_cost += billed_hours * vm.itype.hourly_price
        report.egress_cost = (self._wan_bytes / GB) * self.prices.wan_egress_per_gb
        report.request_cost = self._requests * self.prices.per_request
        for tier, byte_seconds in self._storage_byte_seconds.items():
            report.storage_cost += byte_seconds * self.prices.storage_rate_per_byte_second(tier)
        self._metrics.gauge("billing.total_usd").set(report.total)
        return report
