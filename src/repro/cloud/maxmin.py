"""Batched max-min fair solvers (pure-Python and NumPy, bit-identical).

The progressive-filling allocation is defined here in *batched* form:
every freeze round computes one aggregate capacity delta per link —
``k × share`` for a bottleneck freeze, an in-order sum of caps for a
capped-flow freeze — and applies it with a single subtract-and-clamp.
Because each link is updated once per round with identical IEEE-754
operations, the same arithmetic can be expressed either as Python
scalar loops or as NumPy vector ops, and the two produce **bit-for-bit
identical** rates:

- fair shares are elementwise ``cap / count`` either way,
- the bottleneck is the *first* strict minimum (``np.argmin`` has the
  same first-occurrence tie rule as a ``<`` scan) over links in
  first-seen order,
- bottleneck deltas are one ``float(k) * share`` multiply per link,
- capped deltas accumulate in flow-major path order (``np.add.at`` is
  unbuffered and applies repeated indices in input order, matching the
  scalar loop),
- clamping is ``x if x > 0.0 else 0.0`` vs ``np.where(x > 0.0, x, 0.0)``.

The scalar path keeps per-solve state in scratch slots *on* the Link
and Flow objects (``_s_*``), validated by a monotonically increasing
token, so a solve allocates no per-link dictionaries — incremental
replanning calls it thousands of times on small components and the
setup cost is what dominates there.

``solve_rates`` dispatches by component size: NumPy wins once a
component has enough flows to amortize array construction; small
components (the common case under incremental replanning) stay on the
scalar path. When NumPy is unavailable the scalar path handles every
size — same results, different speed. ``FRIEDA_SOLVER=python|numpy``
forces one path (used by the equivalence tests and as an escape hatch).
"""

from __future__ import annotations

import itertools
import math
import os
from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from repro.cloud.network import Flow, Link

try:  # NumPy is optional: the scalar path is always available.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via FRIEDA_SOLVER=python
    _np = None

#: Components with at least this many flows go to the NumPy path; the
#: crossover was measured on the clustered-churn micro-benchmark (array
#: construction never pays back on rack-sized components).
VECTOR_THRESHOLD = 64

#: ``None`` → dispatch by size; ``"python"``/``"numpy"`` → force a path.
FORCE: Optional[str] = os.environ.get("FRIEDA_SOLVER") or None

#: Scratch-slot validity tokens (shared by solve setup and freeze
#: rounds — any unique int will do).
_TOKENS = itertools.count(1)

_INF = math.inf


def solve_rates(
    flows: Sequence["Flow"],
    capacities: Optional[dict["Link", float]] = None,
) -> list[float]:
    """Max-min rates for ONE connected component, parallel to ``flows``.

    ``flows`` must be in canonical (flow-id) order; the result is a
    pure function of that order, link capacities, and per-flow caps.
    """
    force = FORCE
    if force == "python" or _np is None:
        return _solve_py(flows, capacities)
    if force == "numpy" or len(flows) >= VECTOR_THRESHOLD:
        return _solve_np(flows, capacities)
    return _solve_py(flows, capacities)


def solve_component(
    flows: Sequence["Flow"],
    capacities: Optional[dict["Link", float]] = None,
) -> dict["Flow", float]:
    """Dict-shaped wrapper over :func:`solve_rates`."""
    if not flows:
        return {}
    rates = solve_rates(flows, capacities)
    return {flow: rates[i] for i, flow in enumerate(flows)}


def _solve_py(
    flows: Sequence["Flow"],
    capacities: Optional[dict["Link", float]] = None,
) -> list[float]:
    """Scalar reference implementation of the batched solver."""
    token = next(_TOKENS)
    touched: list["Link"] = []  # links in first-seen (flow-major) order
    has_capped = False
    for flow in flows:
        if flow.max_rate is not None:
            has_capped = True
        for link in flow.path:
            if link._s_stamp != token:
                link._s_stamp = token
                link._s_cap = link.capacity if capacities is None else capacities[link]
                link._s_count = 1
                touched.append(link)
            else:
                link._s_count += 1

    live = list(flows)
    while live:
        # Fair share of the tightest link among unfixed flows (first
        # strict minimum in first-seen link order).
        share = _INF
        bottleneck = None
        for link in touched:
            count = link._s_count
            if count:
                candidate = link._s_cap / count
                if candidate < share:
                    share = candidate
                    bottleneck = link
        if bottleneck is None:  # pragma: no cover - flows always cross >=1 link
            for flow in live:
                flow._s_rate = _INF if flow.max_rate is None else flow.max_rate
            break
        if has_capped:
            capped = [
                f for f in live if f.max_rate is not None and f.max_rate < share
            ]
            if capped:
                # Freeze below-share capped flows first; their released
                # capacity shifts the bottleneck, so re-search. The
                # per-link delta accumulates in flow-major path order.
                round_token = next(_TOKENS)
                delta_links: list["Link"] = []
                for flow in capped:
                    rate = flow.max_rate
                    flow._s_rate = rate
                    for link in flow.path:
                        if link._s_kstamp != round_token:
                            link._s_kstamp = round_token
                            link._s_delta = rate
                            link._s_frozen = 1
                            delta_links.append(link)
                        else:
                            link._s_delta += rate
                            link._s_frozen += 1
                for link in delta_links:
                    link._s_count -= link._s_frozen
                    new = link._s_cap - link._s_delta
                    link._s_cap = new if new > 0.0 else 0.0
                capped_set = set(capped)
                live = [f for f in live if f not in capped_set]
                continue
        # Freeze every flow crossing the bottleneck at the fair share;
        # each crossed link's capacity drops by one k × share delta.
        round_token = next(_TOKENS)
        frozen_links: list["Link"] = []
        still_live: list["Flow"] = []
        for flow in live:
            path = flow.path
            if bottleneck in path:
                flow._s_rate = share
                for link in path:
                    if link._s_kstamp != round_token:
                        link._s_kstamp = round_token
                        link._s_frozen = 1
                        frozen_links.append(link)
                    else:
                        link._s_frozen += 1
            else:
                still_live.append(flow)
        for link in frozen_links:
            k = link._s_frozen
            link._s_count -= k
            new = link._s_cap - k * share
            link._s_cap = new if new > 0.0 else 0.0
        live = still_live
    return [flow._s_rate for flow in flows]


def _index_component(flows, capacities):
    """NumPy-path setup: links in first-seen order, integer paths."""
    caps: list[float] = []
    counts: list[int] = []
    link_index: dict = {}
    paths: list[list[int]] = []
    flow_caps: list[float] = []
    has_capped = False
    for flow in flows:
        max_rate = flow.max_rate
        if max_rate is None:
            flow_caps.append(_INF)
        else:
            flow_caps.append(max_rate)
            has_capped = True
        idxs = []
        for link in flow.path:
            li = link_index.get(link)
            if li is None:
                li = link_index[link] = len(caps)
                caps.append(link.capacity if capacities is None else capacities[link])
                counts.append(0)
            counts[li] += 1
            idxs.append(li)
        paths.append(idxs)
    return caps, counts, paths, flow_caps, has_capped


def _solve_np(
    flows: Sequence["Flow"],
    capacities: Optional[dict["Link", float]] = None,
) -> list[float]:
    """Vectorized solver: same rounds, same arithmetic, NumPy arrays."""
    np = _np
    caps_l, counts_l, paths, flow_caps_l, has_capped = _index_component(
        flows, capacities
    )
    nflows = len(flows)
    nlinks = len(caps_l)
    caps = np.array(caps_l, dtype=np.float64)
    counts = np.array(counts_l, dtype=np.int64)
    flow_caps = np.array(flow_caps_l, dtype=np.float64)
    # CSR-ish flattened paths: flat[i] is a link index, flow_of_flat[i]
    # the flow it belongs to; order is flow-major (canonical).
    flat = np.array([li for p in paths for li in p], dtype=np.intp)
    flow_of_flat = np.array(
        [f for f, p in enumerate(paths) for _ in p], dtype=np.intp
    )
    live = np.ones(nflows, dtype=bool)
    rates = np.zeros(nflows, dtype=np.float64)
    remaining = nflows

    while remaining:
        shares = np.where(counts > 0, caps / np.maximum(counts, 1), _INF)
        bottleneck = int(np.argmin(shares))
        share = float(shares[bottleneck])
        if not counts[bottleneck]:  # pragma: no cover - defensive, see _solve_py
            rates[live] = flow_caps[live]
            break
        if has_capped:
            capped = live & (flow_caps < share)
            if capped.any():
                rates[capped] = flow_caps[capped]
                sel = capped[flow_of_flat]
                idx = flat[sel]
                delta = np.zeros(nlinks, dtype=np.float64)
                # Unbuffered in-order accumulation == the scalar loop.
                np.add.at(delta, idx, flow_caps[flow_of_flat[sel]])
                new = caps - delta
                caps = np.where(new > 0.0, new, 0.0)
                counts -= np.bincount(idx, minlength=nlinks)
                remaining -= int(np.count_nonzero(capped))
                live &= ~capped
                continue
        crossing = np.zeros(nflows, dtype=bool)
        crossing[flow_of_flat[flat == bottleneck]] = True
        crossing &= live
        rates[crossing] = share
        sel = crossing[flow_of_flat]
        idx = flat[sel]
        frozen_per_link = np.bincount(idx, minlength=nlinks)
        new = caps - frozen_per_link * share
        caps = np.where(new > 0.0, new, 0.0)
        counts -= frozen_per_link
        remaining -= int(np.count_nonzero(crossing))
        live &= ~crossing
    return rates.tolist()
