"""Flow-level network model with max-min fair bandwidth sharing.

Why flow-level: the paper's experiments are characterized by *which
transfers share which bottleneck* (all workers pull through the master's
single provisioned 100 Mbps uplink), not by packet dynamics. A
progressive-filling (water-filling) max-min allocation over a set of
concurrent flows captures exactly that: when the master streams to four
workers at once each flow gets ~25 Mbps; when three finish the last one
speeds up to 100 Mbps.

Mechanics
---------
A :class:`Link` has a capacity in bits/s. A :class:`Flow` occupies a
path (sequence of links) and drains a fixed number of bits. Whenever the
set of active flows changes, the model:

1. advances every active flow by ``rate × elapsed`` bits,
2. recomputes max-min fair rates (respecting per-flow rate caps, which
   model single-stream protocol limits — see :mod:`repro.transfer`),
3. schedules a wake-up at the earliest projected flow completion.

Disk I/O reuses the same machinery: a disk is just a pair of links
(read/write), so an end-to-end transfer path ``[src-disk-read,
src-uplink, dst-downlink, dst-disk-write]`` is automatically limited by
its slowest stage. This mirrors the observation in the paper's §III-A
that local disks, block stores, and network storage have different
bandwidth trade-offs.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.errors import NetworkError
from repro.sim.kernel import Environment, Event
from repro.sim.monitor import Monitor
from repro.util.units import bytes_to_bits

#: Flows whose remaining volume is below this many bits are considered
#: drained (guards against float dust keeping flows alive forever).
_EPSILON_BITS = 1e-6

#: Flows with less than this much *time* of work left are also retired:
#: at high rates the residual bits can correspond to a delay below the
#: float resolution of `now + delay`, which would stall virtual time.
_EPSILON_TIME = 1e-9


class Link:
    """A unidirectional capacity-constrained channel."""

    __slots__ = ("name", "capacity", "latency", "_flows")

    def __init__(self, name: str, capacity_bps: float, latency_s: float = 0.0):
        if capacity_bps <= 0:
            raise NetworkError(f"link {name!r} needs positive capacity")
        if latency_s < 0:
            raise NetworkError(f"link {name!r} has negative latency")
        self.name = name
        self.capacity = float(capacity_bps)
        self.latency = float(latency_s)
        self._flows: set["Flow"] = set()

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def __repr__(self) -> str:
        return f"<Link {self.name} {self.capacity:.0f}bps flows={len(self._flows)}>"


@dataclass(frozen=True)
class Route:
    """A named path through the network (sequence of link names)."""

    name: str
    links: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.links:
            raise NetworkError(f"route {self.name!r} has no links")


class Flow:
    """One in-flight transfer.

    ``done`` is the completion event; its value is the flow itself so
    processes can inspect realized throughput afterwards.
    """

    __slots__ = (
        "id",
        "path",
        "total_bits",
        "remaining_bits",
        "rate",
        "max_rate",
        "done",
        "start_time",
        "end_time",
        "tag",
    )

    def __init__(
        self,
        flow_id: int,
        path: Sequence[Link],
        nbytes: float,
        done: Event,
        max_rate: Optional[float],
        start_time: float,
        tag: str,
    ):
        self.id = flow_id
        self.path = tuple(path)
        self.total_bits = bytes_to_bits(nbytes)
        self.remaining_bits = self.total_bits
        self.rate = 0.0
        self.max_rate = max_rate
        self.done = done
        self.start_time = start_time
        self.end_time: Optional[float] = None
        self.tag = tag

    @property
    def mean_throughput_bps(self) -> float:
        """Realized mean throughput (valid after completion)."""
        if self.end_time is None or self.end_time <= self.start_time:
            return math.nan
        return self.total_bits / (self.end_time - self.start_time)

    def __repr__(self) -> str:
        return f"<Flow {self.id} tag={self.tag} remaining={self.remaining_bits:.0f}b>"


def max_min_rates(
    flows: Iterable[Flow],
    capacities: dict[Link, float] | None = None,
) -> dict[Flow, float]:
    """Progressive-filling max-min fair allocation with per-flow caps.

    Repeatedly finds the most-constrained link (smallest fair share),
    freezes its flows at that share, removes the consumed capacity, and
    iterates. Flows with ``max_rate`` below their fair share are frozen
    at their cap first (standard extension for rate-limited flows).
    """
    active = [f for f in flows]
    caps: dict[Link, float] = {}
    link_flows: dict[Link, set[Flow]] = {}
    for flow in active:
        for link in flow.path:
            caps.setdefault(link, link.capacity if capacities is None else capacities[link])
            link_flows.setdefault(link, set()).add(flow)

    rates: dict[Flow, float] = {}
    unfixed = set(active)

    def freeze(flow: Flow, rate: float) -> None:
        rates[flow] = rate
        unfixed.discard(flow)
        for link in flow.path:
            caps[link] = max(0.0, caps[link] - rate)
            link_flows[link].discard(flow)

    while unfixed:
        # Fair share of the tightest link among unfixed flows.
        bottleneck_link: Link | None = None
        bottleneck_share = math.inf
        for link, members in link_flows.items():
            if members:
                share = caps[link] / len(members)
                if share < bottleneck_share:
                    bottleneck_share = share
                    bottleneck_link = link
        if bottleneck_link is None:  # pragma: no cover - defensive
            for flow in list(unfixed):
                freeze(flow, flow.max_rate or math.inf)
            break
        # Flows capped below the share are frozen at their cap first;
        # freezing them releases capacity, so recompute from scratch.
        capped = [
            f
            for f in unfixed
            if f.max_rate is not None and f.max_rate < bottleneck_share
        ]
        if capped:
            for flow in capped:
                freeze(flow, flow.max_rate)
            continue
        # Freeze every flow crossing the bottleneck; the loop re-finds
        # further bottlenecks (each iteration freezes at least one flow,
        # so termination is guaranteed).
        for flow in list(link_flows[bottleneck_link]):
            freeze(flow, bottleneck_share)
    return rates


class FlowNetwork:
    """The dynamic flow simulation over a set of links.

    Components create links once (:meth:`add_link`) and start transfers
    with :meth:`start_flow`. A background process re-plans rates on
    every arrival/departure.
    """

    def __init__(self, env: Environment, monitor: Monitor | None = None):
        self.env = env
        self.monitor = monitor
        self._links: dict[str, Link] = {}
        self._routes: dict[str, Route] = {}
        self._flows: set[Flow] = set()
        self._flow_ids = itertools.count()
        self._last_update = env.now
        self._wake: Optional[Event] = None
        self._driver = env.process(self._drive(), name="flow-network")
        self.completed_flows = 0
        self.total_bytes_moved = 0.0

    # -- topology ---------------------------------------------------------
    def add_link(self, name: str, capacity_bps: float, latency_s: float = 0.0) -> Link:
        """Create and register a link (names are unique)."""
        if name in self._links:
            raise NetworkError(f"duplicate link name {name!r}")
        link = Link(name, capacity_bps, latency_s)
        self._links[name] = link
        return link

    def link(self, name: str) -> Link:
        try:
            return self._links[name]
        except KeyError:
            raise NetworkError(f"unknown link {name!r}") from None

    def add_route(self, name: str, links: Sequence[str]) -> Route:
        """Register a named path (validates link existence)."""
        for link_name in links:
            self.link(link_name)
        route = Route(name, tuple(links))
        self._routes[name] = route
        return route

    def route(self, name: str) -> Route:
        try:
            return self._routes[name]
        except KeyError:
            raise NetworkError(f"unknown route {name!r}") from None

    # -- flows --------------------------------------------------------------
    def start_flow(
        self,
        path: Sequence[str] | Route,
        nbytes: float,
        *,
        max_rate: Optional[float] = None,
        latency: Optional[float] = None,
        tag: str = "",
    ) -> Flow:
        """Begin a transfer of ``nbytes`` along ``path``.

        ``latency`` (default: sum of link latencies) delays the first
        bit; ``max_rate`` caps the flow below its fair share (protocol
        single-stream limits). Returns the :class:`Flow`; wait on
        ``flow.done``.
        """
        if nbytes < 0:
            raise NetworkError("cannot transfer a negative volume")
        route = path if isinstance(path, Route) else Route("<anon>", tuple(path))
        links = [self.link(name) for name in route.links]
        if max_rate is not None and max_rate <= 0:
            raise NetworkError("max_rate must be positive")
        done = Event(self.env)
        flow = Flow(
            flow_id=next(self._flow_ids),
            path=links,
            nbytes=nbytes,
            done=done,
            max_rate=max_rate,
            start_time=self.env.now,
            tag=tag,
        )
        startup = sum(l.latency for l in links) if latency is None else latency
        if nbytes == 0:
            # Pure-latency "transfer" (control message): no bandwidth use.
            self.env.process(self._zero_volume(flow, startup), name=f"flow{flow.id}-zero")
            return flow
        self.env.process(self._launch(flow, startup), name=f"flow{flow.id}-launch")
        return flow

    def transfer(self, path: Sequence[str] | Route, nbytes: float, **kw) -> Event:
        """Shorthand: start a flow, return its completion event."""
        return self.start_flow(path, nbytes, **kw).done

    def _zero_volume(self, flow: Flow, startup: float):
        if startup > 0:
            yield self.env.timeout(startup)
        flow.end_time = self.env.now
        self.completed_flows += 1
        flow.done.succeed(flow)

    def _launch(self, flow: Flow, startup: float):
        if startup > 0:
            yield self.env.timeout(startup)
        self._advance_flows()
        self._flows.add(flow)
        for link in flow.path:
            link._flows.add(flow)
        self._replan()
        return
        yield  # pragma: no cover - makes this a generator

    # -- engine -------------------------------------------------------------
    def _advance_flows(self) -> None:
        """Drain bits according to current rates up to env.now."""
        elapsed = self.env.now - self._last_update
        if elapsed > 0:
            for flow in self._flows:
                flow.remaining_bits -= flow.rate * elapsed
        self._last_update = self.env.now

    def _replan(self) -> None:
        """Recompute rates and poke the driver process."""
        rates = max_min_rates(self._flows)
        for flow, rate in rates.items():
            flow.rate = rate
        if self.monitor is not None:
            for flow in self._flows:
                self.monitor.sample(self.env.now, "flow.rate", flow.rate, flow=flow.id, tag=flow.tag)
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()
        self._wake = None

    def _earliest_completion(self) -> float:
        horizon = math.inf
        for flow in self._flows:
            if flow.rate > 0:
                horizon = min(horizon, flow.remaining_bits / flow.rate)
        return horizon

    def _drive(self):
        """Background process: completes flows as they drain."""
        while True:
            self._advance_flows()
            # Retire drained flows (including those whose residue would
            # drain in under a nanosecond — see _EPSILON_TIME).
            finished = [
                f
                for f in self._flows
                if f.remaining_bits <= max(_EPSILON_BITS, f.rate * _EPSILON_TIME)
            ]
            if finished:
                for flow in finished:
                    self._flows.discard(flow)
                    for link in flow.path:
                        link._flows.discard(flow)
                    flow.remaining_bits = 0.0
                    flow.rate = 0.0
                    flow.end_time = self.env.now
                    self.completed_flows += 1
                    self.total_bytes_moved += flow.total_bits / 8.0
                    flow.done.succeed(flow)
                    if self.monitor is not None:
                        self.monitor.interval(
                            "flow",
                            flow.start_time,
                            flow.end_time,
                            flow=flow.id,
                            tag=flow.tag,
                            nbytes=flow.total_bits / 8.0,
                        )
                self._replan()
            horizon = self._earliest_completion()
            wake = Event(self.env)
            self._wake = wake
            if horizon is math.inf:
                yield wake  # sleep until a flow arrives
            else:
                yield self.env.any_of([wake, self.env.timeout(horizon)])
                if self._wake is wake:
                    self._wake = None
