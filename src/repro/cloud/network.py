"""Flow-level network model with max-min fair bandwidth sharing.

Why flow-level: the paper's experiments are characterized by *which
transfers share which bottleneck* (all workers pull through the master's
single provisioned 100 Mbps uplink), not by packet dynamics. A
progressive-filling (water-filling) max-min allocation over a set of
concurrent flows captures exactly that: when the master streams to four
workers at once each flow gets ~25 Mbps; when three finish the last one
speeds up to 100 Mbps.

Mechanics
---------
A :class:`Link` has a capacity in bits/s. A :class:`Flow` occupies a
path (sequence of links) and drains a fixed number of bits. Whenever the
set of active flows changes, the model:

1. advances every active flow by ``rate × elapsed`` bits,
2. recomputes max-min fair rates (respecting per-flow rate caps, which
   model single-stream protocol limits — see :mod:`repro.transfer`),
3. schedules a wake-up at the earliest projected flow completion.

Disk I/O reuses the same machinery: a disk is just a pair of links
(read/write), so an end-to-end transfer path ``[src-disk-read,
src-uplink, dst-downlink, dst-disk-write]`` is automatically limited by
its slowest stage. This mirrors the observation in the paper's §III-A
that local disks, block stores, and network storage have different
bandwidth trade-offs.

Performance model
-----------------
Replanning is *incremental*: the max-min allocation decomposes over the
connected components of the flow/link bipartite graph, so an arrival or
departure only perturbs rates inside its own component. The planner
tracks which links changed since the last plan and re-solves only the
affected components, reusing frozen rates everywhere else. All
arrivals/retirements that land at the same virtual instant are coalesced
into a single replanning pass. Components are solved by the batched
solvers in :mod:`repro.cloud.maxmin` — one aggregate capacity delta per
link per freeze round — which lets large components go through NumPy
while small ones stay on a scalar path with bit-identical results.

Three structural choices keep the per-wake cost flat as flow counts
grow:

- **Drain is closed-form.** A flow's remaining volume is only a
  function of the last rate change (``R0 - rate × (now - t0)``), so
  nothing iterates over active flows between replans, and evaluating
  the formula at any instant gives the same bits regardless of how
  often intermediate code looked at it. This is what makes
  ``incremental=True`` and ``incremental=False`` replay identically:
  both materialize at the same rate-change instants.
- **The completion heap holds frontiers, not futures.** Each replanned
  component pushes only its earliest projected completion (plus exact
  ties); later completions are discovered by the replan that the
  earliest retirement triggers. Projections are stored per flow and
  re-pushed verbatim, so duplicate entries are bitwise equal and the
  heap stays O(components), not O(rate changes).
- **Component discovery uses visit stamps.** Reachability marks links
  and flows with a per-replan token instead of building hash sets.

Both planner modes solve each component with identical,
deterministically-ordered arithmetic, so the two replay byte-identically
— see ``tests/cloud/test_max_min_incremental.py``.
"""

from __future__ import annotations

import itertools
import math
import operator
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Iterable, Optional, Sequence

from repro.cloud.maxmin import solve_component as _solve_component_batched
from repro.cloud.maxmin import solve_rates as _solve_rates
from repro.errors import NetworkError
from repro.sim.kernel import Environment, Event
from repro.sim.monitor import Monitor, MonitorSink
from repro.telemetry.metrics import NULL_METRICS
from repro.telemetry.spans import Telemetry
from repro.util.units import bytes_to_bits

#: Flows whose remaining volume is below this many bits are considered
#: drained (guards against float dust keeping flows alive forever).
_EPSILON_BITS = 1e-6

#: Flows with less than this much *time* of work left are also retired:
#: at high rates the residual bits can correspond to a delay below the
#: float resolution of `now + delay`, which would stall virtual time.
_EPSILON_TIME = 1e-9

_LINK_NAME = operator.attrgetter("name")
_FLOW_ID = operator.attrgetter("id")


class Link:
    """A unidirectional capacity-constrained channel.

    ``capacity`` is the *current* (possibly degraded) rate; links are
    created at ``base_capacity`` and fault injection may lower the
    current rate — to zero for a blackout — via
    :meth:`FlowNetwork.set_link_capacity`.
    """

    __slots__ = (
        "name",
        "capacity",
        "base_capacity",
        "latency",
        "_flows",
        "_visit",
        "_s_stamp",
        "_s_cap",
        "_s_count",
        "_s_kstamp",
        "_s_frozen",
        "_s_delta",
    )

    def __init__(self, name: str, capacity_bps: float, latency_s: float = 0.0):
        if capacity_bps <= 0:
            raise NetworkError(f"link {name!r} needs positive capacity")
        if latency_s < 0:
            raise NetworkError(f"link {name!r} has negative latency")
        self.name = name
        self.capacity = float(capacity_bps)
        self.base_capacity = float(capacity_bps)
        self.latency = float(latency_s)
        self._flows: set["Flow"] = set()
        #: Visit stamp for component discovery (see FlowNetwork._component).
        self._visit = 0
        # Token-validated scratch slots for the scalar max-min solver
        # (see repro.cloud.maxmin — avoids per-solve dict building).
        self._s_stamp = 0
        self._s_cap = 0.0
        self._s_count = 0
        self._s_kstamp = 0
        self._s_frozen = 0
        self._s_delta = 0.0

    @property
    def degraded(self) -> bool:
        return self.capacity < self.base_capacity

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def __repr__(self) -> str:
        return f"<Link {self.name} {self.capacity:.0f}bps flows={len(self._flows)}>"


@dataclass(frozen=True)
class Route:
    """A named path through the network (sequence of link names)."""

    name: str
    links: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.links:
            raise NetworkError(f"route {self.name!r} has no links")


class Flow:
    """One in-flight transfer.

    ``done`` is the completion event; its value is the flow itself so
    processes can inspect realized throughput afterwards.
    """

    __slots__ = (
        "id",
        "path",
        "total_bits",
        "remaining_bits",
        "rate",
        "max_rate",
        "done",
        "start_time",
        "end_time",
        "tag",
        "cancelled",
        "_version",
        "_rate_t0",
        "_projected_end",
        "_visit",
        "_s_rate",
    )

    def __init__(
        self,
        flow_id: int,
        path: Sequence[Link],
        nbytes: float,
        done: Event,
        max_rate: Optional[float],
        start_time: float,
        tag: str,
    ):
        self.id = flow_id
        self.path = tuple(path)
        self.total_bits = bytes_to_bits(nbytes)
        self.remaining_bits = self.total_bits
        self.rate = 0.0
        self.max_rate = max_rate
        self.done = done
        self.start_time = start_time
        self.end_time: Optional[float] = None
        self.tag = tag
        #: True when the flow was torn down before draining (timeout
        #: guard, injected transfer fault). ``done`` still succeeds so
        #: waiters wake up; they must check this flag.
        self.cancelled = False
        #: Bumped on every rate change/retirement; projected-completion
        #: heap entries carry the version they were computed under, so
        #: stale entries are recognized and skipped (lazy invalidation).
        self._version = 0
        #: ``remaining_bits`` is exact as of this instant; between rate
        #: changes the live value is ``remaining_bits - rate * (now -
        #: _rate_t0)`` (closed form — no per-wake advancement loop).
        self._rate_t0 = start_time
        #: Projected completion under the current rate, computed once
        #: per rate change so re-pushing it is bitwise stable.
        self._projected_end = math.inf
        #: Visit stamp for component discovery.
        self._visit = 0
        #: Solver scratch slot (repro.cloud.maxmin).
        self._s_rate = 0.0

    @property
    def mean_throughput_bps(self) -> float:
        """Realized mean throughput (valid after completion)."""
        if self.end_time is None or self.end_time <= self.start_time:
            return math.nan
        return self.total_bits / (self.end_time - self.start_time)

    def __repr__(self) -> str:
        return f"<Flow {self.id} tag={self.tag} remaining={self.remaining_bits:.0f}b>"


def _solve_component(
    flows: Sequence[Flow],
    capacities: dict[Link, float] | None = None,
) -> dict[Flow, float]:
    """Progressive-filling max-min allocation for ONE connected component.

    Delegates to the batched solvers in :mod:`repro.cloud.maxmin`
    (scalar or NumPy by component size — bit-for-bit identical either
    way). Callers must pass each component's flows in a canonical order
    (the planner sorts by flow id) for cross-run determinism.
    """
    return _solve_component_batched(flows, capacities)


def _components(flows: Sequence[Flow]) -> list[list[Flow]]:
    """Partition ``flows`` into connected components of the flow/link graph.

    Each component's flows appear in the order they occur in ``flows``
    (deterministic given a deterministic input order).
    """
    link_members: dict[Link, list[Flow]] = {}
    for flow in flows:
        for link in flow.path:
            link_members.setdefault(link, []).append(flow)
    comp_id: dict[Flow, int] = {}
    count = 0
    for flow in flows:
        if flow in comp_id:
            continue
        comp_id[flow] = count
        stack = [flow]
        while stack:
            member = stack.pop()
            for link in member.path:
                for peer in link_members[link]:
                    if peer not in comp_id:
                        comp_id[peer] = count
                        stack.append(peer)
        count += 1
    components: list[list[Flow]] = [[] for _ in range(count)]
    for flow in flows:
        components[comp_id[flow]].append(flow)
    return components


def max_min_rates(
    flows: Iterable[Flow],
    capacities: dict[Link, float] | None = None,
) -> dict[Flow, float]:
    """Progressive-filling max-min fair allocation with per-flow caps.

    Repeatedly finds the most-constrained link (smallest fair share),
    freezes its flows at that share, removes the consumed capacity, and
    iterates. Flows with ``max_rate`` below their fair share are frozen
    at their cap first (standard extension for rate-limited flows).

    The allocation decomposes over connected components of the flow/link
    bipartite graph; each component is solved independently (this is
    what makes incremental replanning exact — see :class:`FlowNetwork`).
    """
    ordered = list(flows)
    if not ordered:
        return {}
    rates: dict[Flow, float] = {}
    for component in _components(ordered):
        rates.update(_solve_component(component, capacities))
    return rates


class FlowNetwork:
    """The dynamic flow simulation over a set of links.

    Components create links once (:meth:`add_link`) and start transfers
    with :meth:`start_flow`. A background driver process retires drained
    flows and re-plans rates whenever the active set changes.

    ``incremental=True`` (the default) re-solves only the connected
    components touched by arrivals/departures since the last plan;
    ``incremental=False`` re-solves every component from scratch each
    time. Both produce byte-identical schedules (each component is
    solved with identical arithmetic either way); the flag exists for
    the equivalence tests and as an escape hatch.
    """

    def __init__(
        self,
        env: Environment,
        monitor: Monitor | None = None,
        *,
        incremental: bool = True,
        telemetry: Telemetry | None = None,
    ):
        self.env = env
        self.monitor = monitor
        if telemetry is None and monitor is not None:
            # Legacy construction: callers that hand us a bare Monitor
            # get a private hub whose only consumer is that monitor, so
            # flow intervals/samples land exactly where they used to.
            telemetry = Telemetry(clock=lambda: env.now)
            telemetry.bind(monitor=MonitorSink(monitor))
        self.telemetry = telemetry
        metrics = telemetry.metrics if telemetry is not None else NULL_METRICS
        self._m_flows = metrics.counter("network.flows_completed")
        self._m_bytes = metrics.counter("network.bytes_moved")
        self._m_replans = metrics.counter("network.replans")
        self._m_cancelled = metrics.counter("network.flows_cancelled")
        self._m_capacity_changes = metrics.counter("network.capacity_changes")
        self.incremental = incremental
        self._links: dict[str, Link] = {}
        self._routes: dict[str, Route] = {}
        #: Active flows in arrival order (dict for deterministic iteration).
        self._flows: dict[Flow, None] = {}
        self._flow_ids = itertools.count()
        #: Monotone token stamped onto links/flows during component
        #: discovery (cheaper than per-replan visited sets).
        self._visit_token = 0
        #: Arrivals whose startup latency has elapsed, awaiting admission
        #: by the driver (coalesces same-instant arrivals into one plan).
        self._pending: list[Flow] = []
        #: Links whose flow membership changed since the last plan.
        self._dirty_links: set[Link] = set()
        #: Lazily-invalidated min-heap of (projected_end, flow_id,
        #: version, flow); entries whose version no longer matches the
        #: flow are skipped on pop.
        self._completion_heap: list[tuple[float, int, int, Flow]] = []
        #: The driver's (recycled) wake event; other code pokes it.
        self._wake = Event(env)
        #: Currently armed completion alarm (a pooled Timeout) + deadline.
        self._alarm: Optional[Event] = None
        self._alarm_deadline = math.inf
        self._driver = env.process(self._drive(), name="flow-network")
        self.completed_flows = 0
        self.total_bytes_moved = 0.0
        #: Number of (coalesced) replanning passes actually executed.
        self.replans = 0

    # -- topology ---------------------------------------------------------
    def add_link(self, name: str, capacity_bps: float, latency_s: float = 0.0) -> Link:
        """Create and register a link (names are unique)."""
        if name in self._links:
            raise NetworkError(f"duplicate link name {name!r}")
        link = Link(name, capacity_bps, latency_s)
        self._links[name] = link
        return link

    def link(self, name: str) -> Link:
        try:
            return self._links[name]
        except KeyError:
            raise NetworkError(f"unknown link {name!r}") from None

    def add_route(self, name: str, links: Sequence[str]) -> Route:
        """Register a named path (validates link existence)."""
        for link_name in links:
            self.link(link_name)
        route = Route(name, tuple(links))
        self._routes[name] = route
        return route

    def route(self, name: str) -> Route:
        try:
            return self._routes[name]
        except KeyError:
            raise NetworkError(f"unknown route {name!r}") from None

    def set_link_capacity(self, name: str, capacity_bps: float) -> Link:
        """Change a link's current capacity (fault injection / repair).

        ``0`` models a blackout: flows crossing the link stall at rate
        zero and resume when capacity is restored. The change triggers
        an incremental replan of the affected component at this instant.
        """
        if capacity_bps < 0:
            raise NetworkError(f"link {name!r} capacity cannot be negative")
        link = self.link(name)
        if capacity_bps == link.capacity:
            return link
        link.capacity = float(capacity_bps)
        self._m_capacity_changes.inc()
        self._dirty_links.add(link)
        self._poke()
        if self.telemetry is not None:
            self.telemetry.event(
                "link.capacity", capacity_bps, track="network", link=name
            )
        return link

    def restore_link(self, name: str) -> Link:
        """Return a degraded link to its provisioned capacity."""
        return self.set_link_capacity(name, self.link(name).base_capacity)

    # -- flows --------------------------------------------------------------
    def start_flow(
        self,
        path: Sequence[str] | Route,
        nbytes: float,
        *,
        max_rate: Optional[float] = None,
        latency: Optional[float] = None,
        tag: str = "",
    ) -> Flow:
        """Begin a transfer of ``nbytes`` along ``path``.

        ``latency`` (default: sum of link latencies) delays the first
        bit; ``max_rate`` caps the flow below its fair share (protocol
        single-stream limits). Returns the :class:`Flow`; wait on
        ``flow.done``.
        """
        if nbytes < 0:
            raise NetworkError("cannot transfer a negative volume")
        route = path if isinstance(path, Route) else Route("<anon>", tuple(path))
        links = [self.link(name) for name in route.links]
        if max_rate is not None and max_rate <= 0:
            raise NetworkError("max_rate must be positive")
        done = Event(self.env)
        flow = Flow(
            flow_id=next(self._flow_ids),
            path=links,
            nbytes=nbytes,
            done=done,
            max_rate=max_rate,
            start_time=self.env.now,
            tag=tag,
        )
        startup = sum(l.latency for l in links) if latency is None else latency
        if nbytes == 0:
            # Pure-latency "transfer" (control message): no bandwidth use.
            if startup > 0:
                self.env.process(self._zero_volume(flow, startup), name=f"flow{flow.id}-zero")
            else:
                self._finish_zero_volume(flow)
            return flow
        if startup > 0:
            self.env.process(self._launch(flow, startup), name=f"flow{flow.id}-launch")
        else:
            self._admit(flow)
        return flow

    def transfer(self, path: Sequence[str] | Route, nbytes: float, **kw) -> Event:
        """Shorthand: start a flow, return its completion event."""
        return self.start_flow(path, nbytes, **kw).done

    def cancel_flow(self, flow: Flow, reason: str = "") -> bool:
        """Tear down an in-flight flow before it drains.

        Used by the transfer timeout guard: the abandoned flow must stop
        consuming bandwidth immediately. ``flow.done`` still *succeeds*
        (with the flow as value) so any waiter wakes up; the waiter must
        check :attr:`Flow.cancelled`. Returns False when the flow had
        already finished.
        """
        if flow.done.triggered:
            return False
        flow.cancelled = True
        if flow in self._flows:
            # Account bits drained up to this instant, then release the
            # flow's share so the component replans without it.
            self._materialize(flow, self.env.now)
            del self._flows[flow]
            for link in flow.path:
                link._flows.discard(flow)
            self._dirty_links.update(flow.path)
            self._poke()
        else:
            # Still in startup latency or awaiting admission.
            try:
                self._pending.remove(flow)
            except ValueError:
                pass
        flow.rate = 0.0
        flow._version += 1
        flow.end_time = self.env.now
        self._m_cancelled.inc()
        flow.done.succeed(flow)
        if self.telemetry is not None:
            self.telemetry.span_complete(
                "flow",
                flow.start_time,
                flow.end_time,
                track="network",
                flow=flow.id,
                tag=flow.tag,
                nbytes=(flow.total_bits - flow.remaining_bits) / 8.0,
                cancelled=True,
                reason=reason,
            )
        return True

    def _zero_volume(self, flow: Flow, startup: float):
        yield self.env.timeout(startup)
        self._finish_zero_volume(flow)

    def _finish_zero_volume(self, flow: Flow) -> None:
        if flow.cancelled:
            return
        flow.end_time = self.env.now
        self.completed_flows += 1
        self._m_flows.inc()
        flow.done.succeed(flow)
        if self.telemetry is not None:
            # Control messages carry no payload but still count: record
            # the span so consumers see every flow, not just bulk data
            # movements.
            self.telemetry.span_complete(
                "flow",
                flow.start_time,
                flow.end_time,
                track="network",
                flow=flow.id,
                tag=flow.tag,
                nbytes=0.0,
            )

    def _launch(self, flow: Flow, startup: float):
        yield self.env.timeout(startup)
        self._admit(flow)

    def _admit(self, flow: Flow) -> None:
        """Queue an arrival for the driver and wake it at this instant."""
        if flow.cancelled:
            return  # cancelled during startup latency
        self._pending.append(flow)
        self._poke()

    # -- engine -------------------------------------------------------------
    def _poke(self) -> None:
        """Wake the driver within the current virtual instant (idempotent)."""
        wake = self._wake
        if not wake.triggered:
            wake.succeed()

    def _on_alarm(self, timeout: Event) -> None:
        """A projected-completion alarm fired; stale alarms are ignored."""
        if timeout is self._alarm:
            self._alarm = None
            self._alarm_deadline = math.inf
            self._poke()
        self.env.release_timeout(timeout)  # type: ignore[arg-type]

    def _drive(self):
        """Driver process: one service pass per wake, then sleep."""
        wake = self._wake
        while True:
            yield wake
            self._service()
            wake.reset()

    @staticmethod
    def _materialize(flow: Flow, now: float) -> None:
        """Fold drained bits into ``remaining_bits`` as of ``now``.

        Closed-form over the interval since the last rate change, so the
        result is independent of how many times anything *looked* at the
        flow in between — the property the incremental/full equivalence
        tests rely on.
        """
        rate = flow.rate
        if rate > 0.0:
            flow.remaining_bits -= rate * (now - flow._rate_t0)
        flow._rate_t0 = now

    def _service(self) -> None:
        """Retire due flows, admit arrivals, replan, re-arm the alarm."""
        now = self.env.now

        # Retire drained flows: pop projected completions that are due
        # and verify against the actual remaining volume (including
        # residue that would drain in under a nanosecond — _EPSILON_TIME).
        heap = self._completion_heap
        due = now + _EPSILON_TIME
        while heap:
            projected, flow_id, version, flow = heap[0]
            if version != flow._version:
                heappop(heap)  # stale: rate changed since this projection
                continue
            if projected > due:
                break
            heappop(heap)
            self._materialize(flow, now)
            if flow.remaining_bits <= max(_EPSILON_BITS, flow.rate * _EPSILON_TIME):
                self._retire(flow, now)
            else:
                # Woken marginally early (float slack in alarm delay
                # arithmetic): project again from the advanced state.
                flow._version += 1
                flow._projected_end = now + flow.remaining_bits / flow.rate
                heappush(heap, (flow._projected_end, flow_id, flow._version, flow))

        # Admit arrivals whose startup latency elapsed at this instant.
        if self._pending:
            pending, self._pending = self._pending, []
            for flow in pending:
                if flow.cancelled:
                    continue  # cancelled between admission and service
                self._flows[flow] = None
                for link in flow.path:
                    link._flows.add(flow)
                self._dirty_links.update(flow.path)

        # One coalesced replanning pass for everything that changed.
        if self._dirty_links:
            self._replan(now)

        # Re-arm the completion alarm if an earlier wake-up is needed.
        while heap and heap[0][2] != heap[0][3]._version:
            heappop(heap)
        if heap:
            deadline = heap[0][0]
            if self._alarm is None or deadline < self._alarm_deadline:
                alarm = self.env.pooled_timeout(max(0.0, deadline - now))
                alarm.callbacks.append(self._on_alarm)
                self._alarm = alarm
                self._alarm_deadline = deadline

    def _retire(self, flow: Flow, now: float) -> None:
        del self._flows[flow]
        for link in flow.path:
            link._flows.discard(flow)
        self._dirty_links.update(flow.path)
        flow.remaining_bits = 0.0
        flow.rate = 0.0
        flow._version += 1
        flow.end_time = now
        self.completed_flows += 1
        self.total_bytes_moved += flow.total_bits / 8.0
        self._m_flows.inc()
        self._m_bytes.inc(flow.total_bits / 8.0)
        flow.done.succeed(flow)
        if self.telemetry is not None:
            self.telemetry.span_complete(
                "flow",
                flow.start_time,
                flow.end_time,
                track="network",
                flow=flow.id,
                tag=flow.tag,
                nbytes=flow.total_bits / 8.0,
            )

    def _replan(self, now: float) -> None:
        """Recompute rates for every component touched since the last plan.

        With ``incremental=False`` every component is re-solved; either
        way each component's flows are solved in flow-id order, so the
        two modes produce bitwise-identical rates.
        """
        dirty, self._dirty_links = self._dirty_links, set()
        self.replans += 1
        self._m_replans.inc()
        if self.incremental:
            token = self._visit_token = self._visit_token + 1
            for link in sorted(dirty, key=_LINK_NAME):
                if link._visit == token:
                    continue
                component_flows = self._component(link, token)
                if component_flows:
                    component_flows.sort(key=_FLOW_ID)
                    self._apply_rates(
                        component_flows, _solve_rates(component_flows), now
                    )
        else:
            ordered_all = sorted(self._flows, key=_FLOW_ID)
            for component in _components(ordered_all):
                self._apply_rates(component, _solve_rates(component), now)

    def _component(self, start: Link, token: int) -> list[Flow]:
        """Flows of the component containing ``start``, stamped with ``token``.

        Links reached are stamped too so the replan loop can skip dirty
        links already covered by an earlier component this pass. The
        returned order is unspecified (set iteration) — callers sort.
        """
        start._visit = token
        stack = [start]
        flows: list[Flow] = []
        while stack:
            link = stack.pop()
            for flow in link._flows:
                if flow._visit != token:
                    flow._visit = token
                    flows.append(flow)
                    for other in flow.path:
                        if other._visit != token:
                            other._visit = token
                            stack.append(other)
        return flows

    def _apply_rates(
        self, ordered: Sequence[Flow], rates: Sequence[float], now: float
    ) -> None:
        """Install a component's new rates; push its completion frontier.

        ``rates`` is parallel to ``ordered``. Only the earliest
        projected completion (and bitwise ties) goes on the heap:
        retiring it dirties the component, and the replan that follows
        pushes the next frontier. Projections are stored on the flow at
        rate-change time and re-pushed verbatim, so pushes for
        unchanged flows are exact duplicates of live entries — both
        planner modes therefore arm identical alarms.
        """
        heap = self._completion_heap
        telemetry = self.telemetry
        frontier = math.inf
        ties: list[Flow] = []
        for flow, rate in zip(ordered, rates):
            if rate != flow.rate:
                old_rate = flow.rate
                if old_rate > 0.0:
                    flow.remaining_bits -= old_rate * (now - flow._rate_t0)
                flow._rate_t0 = now
                flow.rate = rate
                flow._version += 1
                flow._projected_end = projected = (
                    now + flow.remaining_bits / rate if rate > 0.0 else math.inf
                )
            else:
                projected = flow._projected_end
            if projected < frontier:
                frontier = projected
                ties = [flow]
            elif projected == frontier and frontier != math.inf:
                ties.append(flow)
            if telemetry is not None:
                telemetry.event(
                    "flow.rate", rate, time=now, track="network",
                    flow=flow.id, tag=flow.tag,
                )
        for flow in ties:
            heappush(heap, (frontier, flow.id, flow._version, flow))
