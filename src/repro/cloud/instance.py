"""Instance types and virtual machines.

The paper's testbed is 4 × *c1.xlarge* (4 QEMU cores, 4 GB memory) with
100 Mbps provisioned links. :data:`C1_XLARGE` encodes that type; two
smaller types exist for heterogeneous-cluster experiments (the paper
motivates real-time partitioning with heterogeneity).

A :class:`VirtualMachine` owns:

- a CPU :class:`~repro.sim.resources.Resource` with one slot per core
  (multicore worker cloning in FRIEDA grabs one slot per program
  instance),
- a local disk (created by the cluster, see :mod:`repro.cloud.storage`),
- a registry of processes to interrupt if the VM fails.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import ProvisioningError
from repro.sim.kernel import Environment, Process
from repro.sim.resources import Resource
from repro.util.units import GB, Mbit


@dataclass(frozen=True)
class InstanceType:
    """A cloud instance flavour (immutable catalog entry)."""

    name: str
    cores: int
    memory_bytes: int
    local_disk_bytes: int
    #: Local-disk streaming bandwidth, bits/s (paper §III-A: local disk
    #: is the fastest tier but very limited in size).
    disk_read_bps: float
    disk_write_bps: float
    #: NIC rate, bits/s. The experiments provision 100 Mbps.
    nic_bps: float
    hourly_price: float = 0.0
    #: Relative per-core speed (1.0 = the reference c1.xlarge core).
    #: Heterogeneous clusters mix types with different speeds — the
    #: environment §III-A says real-time partitioning is designed for.
    core_speed: float = 1.0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ProvisioningError(f"{self.name}: cores must be >= 1")
        if min(self.disk_read_bps, self.disk_write_bps, self.nic_bps) <= 0:
            raise ProvisioningError(f"{self.name}: bandwidths must be positive")
        if self.core_speed <= 0:
            raise ProvisioningError(f"{self.name}: core_speed must be positive")


#: The paper's evaluation instance: 4 cores, 4 GB, 100 Mbps provisioned.
C1_XLARGE = InstanceType(
    name="c1.xlarge",
    cores=4,
    memory_bytes=4 * GB,
    local_disk_bytes=40 * GB,
    disk_read_bps=800 * Mbit,
    disk_write_bps=640 * Mbit,
    nic_bps=100 * Mbit,
    hourly_price=0.68,
)

M1_SMALL = InstanceType(
    name="m1.small",
    cores=1,
    memory_bytes=int(1.7 * GB),
    local_disk_bytes=10 * GB,
    disk_read_bps=400 * Mbit,
    disk_write_bps=320 * Mbit,
    nic_bps=100 * Mbit,
    hourly_price=0.09,
    core_speed=0.5,
)

M1_LARGE = InstanceType(
    name="m1.large",
    cores=2,
    memory_bytes=int(7.5 * GB),
    local_disk_bytes=80 * GB,
    disk_read_bps=800 * Mbit,
    disk_write_bps=640 * Mbit,
    nic_bps=200 * Mbit,
    hourly_price=0.34,
)


class VmState(str, enum.Enum):
    PROVISIONING = "provisioning"
    RUNNING = "running"
    FAILED = "failed"
    TERMINATED = "terminated"


class VirtualMachine:
    """A running (simulated) VM.

    Failure semantics: :meth:`fail` flips the state, interrupts every
    registered process with the VM as the interrupt cause, and records
    the failure time. FRIEDA's controller learns about it through the
    worker's connection breaking, matching §II-D ("Information on any
    failed worker gets reported to the controller").
    """

    def __init__(self, env: Environment, vm_id: str, itype: InstanceType):
        self.env = env
        self.vm_id = vm_id
        self.itype = itype
        self.state = VmState.PROVISIONING
        self.cpu = Resource(env, capacity=itype.cores)
        #: Set by the cluster when it creates the local disk volume.
        self.local_disk: Optional[Any] = None
        self.boot_time: Optional[float] = None
        self.failure_time: Optional[float] = None
        self.termination_time: Optional[float] = None
        self._processes: list[Process] = []

    # -- lifecycle -------------------------------------------------------
    def mark_running(self) -> None:
        if self.state is not VmState.PROVISIONING:
            raise ProvisioningError(f"{self.vm_id}: cannot boot from {self.state}")
        self.state = VmState.RUNNING
        self.boot_time = self.env.now

    @property
    def is_running(self) -> bool:
        return self.state is VmState.RUNNING

    def register_process(self, process: Process) -> Process:
        """Track a process so :meth:`fail` can interrupt it."""
        self._processes.append(process)
        return process

    def fail(self, cause: str = "vm-failure") -> None:
        """Kill the VM: interrupt all registered live processes."""
        if self.state in (VmState.FAILED, VmState.TERMINATED):
            return
        self.state = VmState.FAILED
        self.failure_time = self.env.now
        for process in self._processes:
            if process.is_alive:
                process.interrupt((self.vm_id, cause))

    def terminate(self) -> None:
        """Graceful shutdown (end of run, or elastic scale-down)."""
        if self.state is VmState.TERMINATED:
            return
        self.state = VmState.TERMINATED
        self.termination_time = self.env.now

    @property
    def uptime(self) -> float:
        """Seconds between boot and failure/termination (or now)."""
        if self.boot_time is None:
            return 0.0
        end = self.failure_time or self.termination_time or self.env.now
        return max(0.0, end - self.boot_time)

    def __repr__(self) -> str:
        return f"<VM {self.vm_id} {self.itype.name} {self.state.value}>"
