"""Storage tiers: local disk, block store, network (iSCSI-style) storage.

§III-A of the paper: *"Every virtual machine has a local disk that
provides the fastest I/O [but] local disk space is very limited. ...
various cloud providers provide a way to use block store volumes ...
External storage, like iSCSI disks ... provide means to handle and
store large amounts of data which can be shared across the network."*

Each volume contributes **links** to the cluster's
:class:`~repro.cloud.network.FlowNetwork`, so a transfer path through a
volume is automatically throttled by the volume's bandwidth and shares
it fairly with concurrent I/O:

- :class:`LocalDisk` — per-VM, fast, small; read/write links private to
  the VM.
- :class:`BlockStore` — attachable volume with its own bandwidth,
  larger but slower than local disk.
- :class:`NetworkStorage` — a shared server: all clients contend on the
  server's uplink (this is what makes "pre-partitioning remote" read
  contention real in the Figure 6 experiments).

Volumes also track contents (file name → bytes) against capacity, so a
strategy that tries to replicate the whole dataset onto a 40 GB local
disk fails the same way it would on the testbed.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.cloud.network import FlowNetwork
from repro.errors import StorageError
from repro.util.units import format_bytes


class StorageTier(str, enum.Enum):
    LOCAL = "local"
    BLOCK = "block"
    NETWORK = "network"


class StorageVolume:
    """Base volume: capacity accounting + read/write links.

    ``read_path()``/``write_path()`` return the link-name segments a
    transfer must traverse to read from / write to this volume.
    """

    tier: StorageTier = StorageTier.LOCAL

    def __init__(
        self,
        network: FlowNetwork,
        name: str,
        capacity_bytes: float,
        read_bps: float,
        write_bps: float,
        *,
        read_latency: float = 0.0,
        write_latency: float = 0.0,
    ):
        if capacity_bytes <= 0:
            raise StorageError(f"volume {name!r} needs positive capacity")
        self.name = name
        self.capacity_bytes = float(capacity_bytes)
        self.network = network
        self._contents: dict[str, int] = {}
        self._used = 0
        self._read_link = network.add_link(f"{name}.read", read_bps, read_latency)
        self._write_link = network.add_link(f"{name}.write", write_bps, write_latency)

    # -- paths -----------------------------------------------------------
    def read_path(self) -> tuple[str, ...]:
        return (self._read_link.name,)

    def write_path(self) -> tuple[str, ...]:
        return (self._write_link.name,)

    # -- telemetry ---------------------------------------------------------
    def note_read(self, nbytes: float) -> None:
        """Account a read of ``nbytes`` from this volume in the metrics
        registry (per storage tier, matching the paper's tier
        comparison).  The byte movement itself is modelled by the flow
        network; this is the aggregate-counting side."""
        telemetry = self.network.telemetry
        if telemetry is not None:
            telemetry.metrics.counter(
                "storage.read_bytes", tier=self.tier.value
            ).inc(nbytes)

    # -- contents ----------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> float:
        return self.capacity_bytes - self._used

    def has_file(self, name: str) -> bool:
        return name in self._contents

    def file_names(self) -> frozenset[str]:
        return frozenset(self._contents)

    def store_file(self, name: str, size: int) -> None:
        """Account for a file landing on the volume (idempotent per name)."""
        if name in self._contents:
            return
        if size < 0:
            raise StorageError(f"negative size for {name!r}")
        if self._used + size > self.capacity_bytes:
            raise StorageError(
                f"volume {self.name!r} full: {format_bytes(self._used)} used of "
                f"{format_bytes(self.capacity_bytes)}, cannot fit {format_bytes(size)}"
            )
        self._contents[name] = size
        self._used += size
        telemetry = self.network.telemetry
        if telemetry is not None:
            telemetry.metrics.counter(
                "storage.write_bytes", tier=self.tier.value
            ).inc(size)
            telemetry.metrics.counter(
                "storage.files_stored", tier=self.tier.value
            ).inc()

    def remove_file(self, name: str) -> None:
        size = self._contents.pop(name, None)
        if size is not None:
            self._used -= size

    def clear(self) -> None:
        self._contents.clear()
        self._used = 0

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.name} "
            f"{format_bytes(self._used)}/{format_bytes(self.capacity_bytes)}>"
        )


class LocalDisk(StorageVolume):
    """Per-VM ephemeral disk — fastest tier, smallest capacity.

    Contents vanish with the VM (transient storage; the paper's
    "snapshots of the data need to be captured" elasticity concern).
    """

    tier = StorageTier.LOCAL


class BlockStore(StorageVolume):
    """Attachable block volume (EBS-like): persists across VM failure."""

    tier = StorageTier.BLOCK

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.attached_to: Optional[str] = None

    def attach(self, vm_id: str) -> None:
        if self.attached_to is not None and self.attached_to != vm_id:
            raise StorageError(
                f"block store {self.name!r} already attached to {self.attached_to!r}"
            )
        self.attached_to = vm_id

    def detach(self) -> None:
        self.attached_to = None


class NetworkStorage(StorageVolume):
    """Shared network storage (iSCSI-like) behind a server uplink.

    Every client read crosses both the volume's read link *and* the
    shared server uplink, so N concurrent readers see ~1/N of the
    server bandwidth — the contention that penalizes the
    "pre-partitioned remote" strategy in Figure 6a.
    """

    tier = StorageTier.NETWORK

    def __init__(
        self,
        network: FlowNetwork,
        name: str,
        capacity_bytes: float,
        read_bps: float,
        write_bps: float,
        server_uplink_bps: float,
        **kwargs,
    ):
        super().__init__(network, name, capacity_bytes, read_bps, write_bps, **kwargs)
        self._server_link = network.add_link(f"{name}.server", server_uplink_bps)

    def read_path(self) -> tuple[str, ...]:
        return (self._read_link.name, self._server_link.name)

    def write_path(self) -> tuple[str, ...]:
        return (self._server_link.name, self._write_link.name)
