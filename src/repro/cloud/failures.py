"""Failure injection for the cloud substrate.

§V-A ("Robust"): *"Cloud environments often rely on commodity hardware
and have been shown to have availability fluctuations."* The injector
produces exactly those fluctuations so FRIEDA's failure isolation can be
exercised:

- :class:`FailureSchedule` — scripted, deterministic failures
  ("kill worker2 at t=300"), used by tests,
- random mode — per-VM exponential time-to-failure with a given MTTF,
  used by the robustness ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cloud.cluster import VirtualCluster
from repro.sim.kernel import Environment
from repro.util.seeding import make_rng


@dataclass(frozen=True)
class FailureRecord:
    """One injected failure that actually happened."""

    time: float
    vm_id: str
    cause: str


@dataclass(frozen=True)
class FailureSchedule:
    """Deterministic list of (time, vm_id) failures."""

    entries: tuple[tuple[float, str], ...]

    @classmethod
    def of(cls, *entries: tuple[float, str]) -> "FailureSchedule":
        return cls(tuple(sorted(entries)))


class FailureInjector:
    """Drives VM failures into a cluster.

    Exactly one of ``schedule`` or ``mttf_s`` should be provided.
    With ``mttf_s``, each *worker* VM draws an exponential lifetime;
    the master is spared by default because the paper calls the master
    a single point of failure handled separately (§V-A) — pass
    ``spare_master=False`` to include it.
    """

    def __init__(
        self,
        env: Environment,
        cluster: VirtualCluster,
        *,
        schedule: Optional[FailureSchedule] = None,
        mttf_s: Optional[float] = None,
        max_failures: Optional[int] = None,
        spare_master: bool = True,
        seed: int = 0,
    ):
        if (schedule is None) == (mttf_s is None):
            raise ValueError("provide exactly one of schedule= or mttf_s=")
        self.env = env
        self.cluster = cluster
        self.records: list[FailureRecord] = []
        self.max_failures = max_failures
        self._spare_master = spare_master
        if schedule is not None:
            self.process = env.process(self._run_schedule(schedule), name="failure-injector")
        else:
            rng = make_rng(seed, "failures", cluster.spec.name)
            self.process = env.process(self._run_random(float(mttf_s), rng), name="failure-injector")

    def _eligible(self) -> list[str]:
        out = []
        for vm_id, vm in self.cluster.vms.items():
            if not vm.is_running:
                continue
            if self._spare_master and vm is self.cluster.master_vm:
                continue
            out.append(vm_id)
        return out

    def _inject(self, vm_id: str, cause: str) -> None:
        vm = self.cluster.vms.get(vm_id)
        if vm is None or not vm.is_running:
            return
        self.cluster.fail_vm(vm_id, cause)
        self.records.append(FailureRecord(self.env.now, vm_id, cause))

    def _run_schedule(self, schedule: FailureSchedule):
        for when, vm_id in schedule.entries:
            delay = when - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            self._inject(vm_id, "scheduled")
            if self.max_failures is not None and len(self.records) >= self.max_failures:
                return

    def _run_random(self, mttf_s: float, rng: np.random.Generator):
        if mttf_s <= 0:
            raise ValueError("mttf_s must be positive")
        while True:
            # Pooled exponential: with k eligible VMs the next failure
            # arrives at rate k/MTTF, then strikes a uniform victim.
            eligible = self._eligible()
            if not eligible:
                return
            gap = float(rng.exponential(mttf_s / len(eligible)))
            yield self.env.timeout(gap)
            eligible = self._eligible()
            if not eligible:
                return
            victim = str(rng.choice(eligible))
            self._inject(victim, "random")
            if self.max_failures is not None and len(self.records) >= self.max_failures:
                return
