"""Failure injection for the cloud substrate.

§V-A ("Robust"): *"Cloud environments often rely on commodity hardware
and have been shown to have availability fluctuations."* The injectors
produce exactly those fluctuations so FRIEDA's failure isolation and
recovery loop can be exercised. The fault taxonomy (DESIGN.md §11):

- **VM crash** — :class:`FailureInjector`, scripted
  (:class:`FailureSchedule`) or random (exponential time-to-failure
  with a given MTTF). A crash interrupts the node's worker processes,
  so the master learns of the loss immediately (the connection breaks).
- **Silent VM failure** — same injector, ``mode="silent"``: the node
  stops without the connection breaking. Nothing reports the loss; only
  the heartbeat sweep can detect it (missed beats → declared dead).
- **Link degradation / blackout** — :class:`LinkFaultInjector`: a
  link's capacity drops to a fraction of its provisioned rate (zero =
  blackout) for an interval, then recovers. Transfers crossing it slow
  down or stall; the flow network replans incrementally.
- **Transient transfer fault** — :class:`TransferFaultModel`: an
  individual transfer attempt dies mid-stream after a drawn fraction of
  its bytes (the scp-session-reset class of fault Pilot-Data retries
  around). Consumed by the transfer service's retry loop.

All randomness flows through :func:`repro.util.seeding.make_rng` with
named streams, so every chaos scenario replays byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.cloud.cluster import VirtualCluster
from repro.cloud.network import FlowNetwork
from repro.errors import ConfigurationError
from repro.sim.kernel import Environment
from repro.telemetry.metrics import NULL_METRICS
from repro.util.seeding import make_rng

#: Failure-cause marker for silent (fail-stop without notification)
#: VM deaths. The engine's worker loop checks for this prefix to decide
#: whether the loss is reported immediately (crash) or must be
#: discovered by the heartbeat sweep (silent).
SILENT_CAUSE = "silent"


def is_silent_cause(cause: str) -> bool:
    return str(cause).startswith(SILENT_CAUSE)


@dataclass(frozen=True)
class FailureRecord:
    """One injected failure that actually happened."""

    time: float
    vm_id: str
    cause: str


@dataclass(frozen=True)
class FailureSchedule:
    """Deterministic list of (time, vm_id[, mode]) failures.

    ``mode`` defaults to ``"crash"``; ``"silent"`` kills the VM without
    breaking its connection (detectable only via heartbeats).
    """

    entries: tuple[tuple[float, str, str], ...]

    @classmethod
    def of(cls, *entries: Sequence) -> "FailureSchedule":
        normalized = []
        for entry in entries:
            if len(entry) == 2:
                when, vm_id = entry
                mode = "crash"
            else:
                when, vm_id, mode = entry
            if mode not in ("crash", "silent"):
                raise ConfigurationError(f"unknown failure mode {mode!r}")
            normalized.append((float(when), str(vm_id), mode))
        return cls(tuple(sorted(normalized)))

    @property
    def has_silent(self) -> bool:
        return any(mode == "silent" for _t, _v, mode in self.entries)


class FailureInjector:
    """Drives VM failures into a cluster.

    Exactly one of ``schedule`` or ``mttf_s`` should be provided.
    With ``mttf_s``, each *worker* VM draws an exponential lifetime;
    the master is spared by default because the paper calls the master
    a single point of failure handled separately (§V-A) — pass
    ``spare_master=False`` to include it.

    ``silent_fraction`` (random mode only) makes that fraction of
    failures *silent*: the VM dies without its connection breaking, so
    only the heartbeat sweep can discover the loss.
    """

    def __init__(
        self,
        env: Environment,
        cluster: VirtualCluster,
        *,
        schedule: Optional[FailureSchedule] = None,
        mttf_s: Optional[float] = None,
        max_failures: Optional[int] = None,
        spare_master: bool = True,
        silent_fraction: float = 0.0,
        seed: int = 0,
    ):
        if (schedule is None) == (mttf_s is None):
            raise ValueError("provide exactly one of schedule= or mttf_s=")
        if not 0.0 <= silent_fraction <= 1.0:
            raise ValueError("silent_fraction must be in [0, 1]")
        self.env = env
        self.cluster = cluster
        self.records: list[FailureRecord] = []
        self.max_failures = max_failures
        self._spare_master = spare_master
        self._silent_fraction = float(silent_fraction)
        if schedule is not None:
            self.process = env.process(self._run_schedule(schedule), name="failure-injector")
        else:
            rng = make_rng(seed, "failures", cluster.spec.name)
            self.process = env.process(self._run_random(float(mttf_s), rng), name="failure-injector")

    def _eligible(self) -> list[str]:
        out = []
        for vm_id, vm in self.cluster.vms.items():
            if not vm.is_running:
                continue
            if self._spare_master and vm is self.cluster.master_vm:
                continue
            out.append(vm_id)
        return out

    def _inject(self, vm_id: str, cause: str) -> None:
        vm = self.cluster.vms.get(vm_id)
        if vm is None or not vm.is_running:
            return
        self.cluster.fail_vm(vm_id, cause)
        self.records.append(FailureRecord(self.env.now, vm_id, cause))

    def _run_schedule(self, schedule: FailureSchedule):
        for when, vm_id, mode in schedule.entries:
            delay = when - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            self._inject(vm_id, "silent-scheduled" if mode == "silent" else "scheduled")
            if self.max_failures is not None and len(self.records) >= self.max_failures:
                return

    def _run_random(self, mttf_s: float, rng: np.random.Generator):
        if mttf_s <= 0:
            raise ValueError("mttf_s must be positive")
        while True:
            # Pooled exponential: with k eligible VMs the next failure
            # arrives at rate k/MTTF, then strikes a uniform victim.
            eligible = self._eligible()
            if not eligible:
                return
            gap = float(rng.exponential(mttf_s / len(eligible)))
            yield self.env.timeout(gap)
            eligible = self._eligible()
            if not eligible:
                return
            victim = str(rng.choice(eligible))
            cause = "random"
            if self._silent_fraction > 0 and float(rng.random()) < self._silent_fraction:
                cause = "silent-random"
            self._inject(victim, cause)
            if self.max_failures is not None and len(self.records) >= self.max_failures:
                return


@dataclass(frozen=True)
class LinkFaultRecord:
    """One link degradation window that actually happened."""

    start: float
    link: str
    duration: float
    #: Remaining capacity as a fraction of the provisioned rate
    #: (0.0 = blackout).
    fraction: float


@dataclass(frozen=True)
class LinkFaultSchedule:
    """Deterministic list of (start, link_name, duration, fraction)."""

    entries: tuple[tuple[float, str, float, float], ...]

    @classmethod
    def of(cls, *entries: Sequence) -> "LinkFaultSchedule":
        normalized = []
        for start, link, duration, fraction in entries:
            if duration <= 0:
                raise ConfigurationError(f"link fault on {link!r} needs duration > 0")
            if not 0.0 <= fraction < 1.0:
                raise ConfigurationError(
                    f"link fault fraction must be in [0, 1), got {fraction}"
                )
            normalized.append((float(start), str(link), float(duration), float(fraction)))
        return cls(tuple(sorted(normalized)))


class LinkFaultInjector:
    """Drives link degradation/blackout windows into a flow network.

    Exactly one of ``schedule`` or ``mtbf_s`` should be provided. In
    random mode, faults arrive as a Poisson process with mean gap
    ``mtbf_s``; each strikes a uniform victim among ``links`` that is
    not already degraded, blacks it out with probability
    ``blackout_prob`` (otherwise capacity drops to a fraction drawn
    uniform in ``severity_range``), and heals after an exponential
    outage with mean ``mean_outage_s``. Overlapping scheduled windows
    on an already-degraded link are skipped (recorded faults only).

    Every window emits a ``link.degraded`` span on the network track
    and bumps the ``network.link_faults`` counter.
    """

    def __init__(
        self,
        env: Environment,
        network: FlowNetwork,
        *,
        links: Sequence[str] = (),
        schedule: Optional[LinkFaultSchedule] = None,
        mtbf_s: Optional[float] = None,
        mean_outage_s: float = 30.0,
        blackout_prob: float = 0.25,
        severity_range: tuple[float, float] = (0.05, 0.5),
        max_faults: Optional[int] = None,
        seed: int = 0,
    ):
        if (schedule is None) == (mtbf_s is None):
            raise ValueError("provide exactly one of schedule= or mtbf_s=")
        lo, hi = severity_range
        if not 0.0 <= lo <= hi < 1.0:
            raise ValueError("severity_range must satisfy 0 <= lo <= hi < 1")
        self.env = env
        self.network = network
        self.records: list[LinkFaultRecord] = []
        self.max_faults = max_faults
        self._links = tuple(links)
        self._active: set[str] = set()
        metrics = network.telemetry.metrics if network.telemetry is not None else NULL_METRICS
        self._m_faults = metrics.counter("network.link_faults")
        if schedule is not None:
            self.process = env.process(self._run_schedule(schedule), name="link-fault-injector")
        else:
            if not self._links:
                raise ValueError("random link faults need a candidate links= list")
            rng = make_rng(seed, "link-faults")
            self.process = env.process(
                self._run_random(
                    float(mtbf_s), float(mean_outage_s), float(blackout_prob),
                    (float(lo), float(hi)), rng,
                ),
                name="link-fault-injector",
            )

    @property
    def faults_injected(self) -> int:
        return len(self.records)

    def _begin_window(self, link_name: str, duration: float, fraction: float) -> bool:
        """Start one degradation window (spawns the heal process)."""
        if link_name in self._active:
            return False  # already degraded; don't stack windows
        link = self.network.link(link_name)
        self._active.add(link_name)
        self.records.append(
            LinkFaultRecord(self.env.now, link_name, duration, fraction)
        )
        self._m_faults.inc()
        self.network.set_link_capacity(link_name, fraction * link.base_capacity)
        # frieda: allow[dropped-event] -- heal runs fire-and-forget; the
        # injector never joins it (windows may outlive the injector loop)
        self.env.process(
            self._heal(link_name, duration, fraction), name=f"link-heal-{link_name}"
        )
        return True

    def _heal(self, link_name: str, duration: float, fraction: float):
        start = self.env.now
        yield self.env.timeout(duration)
        self.network.restore_link(link_name)
        self._active.discard(link_name)
        if self.network.telemetry is not None:
            self.network.telemetry.span_complete(
                "link.degraded",
                start,
                self.env.now,
                track="network",
                link=link_name,
                fraction=fraction,
            )

    def _run_schedule(self, schedule: LinkFaultSchedule):
        for start, link_name, duration, fraction in schedule.entries:
            delay = start - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            self._begin_window(link_name, duration, fraction)
            if self.max_faults is not None and len(self.records) >= self.max_faults:
                return

    def _run_random(
        self,
        mtbf_s: float,
        mean_outage_s: float,
        blackout_prob: float,
        severity_range: tuple[float, float],
        rng: np.random.Generator,
    ):
        if mtbf_s <= 0:
            raise ValueError("mtbf_s must be positive")
        while True:
            yield self.env.timeout(float(rng.exponential(mtbf_s)))
            candidates = [l for l in self._links if l not in self._active]
            if not candidates:
                continue
            victim = str(rng.choice(candidates))
            duration = float(rng.exponential(mean_outage_s))
            if float(rng.random()) < blackout_prob:
                fraction = 0.0
            else:
                fraction = float(rng.uniform(*severity_range))
            if duration > 0:
                self._begin_window(victim, duration, fraction)
            if self.max_faults is not None and len(self.records) >= self.max_faults:
                return


class TransferFaultModel:
    """Seeded transient per-transfer faults.

    Each transfer *attempt* independently dies with probability
    ``fault_rate``; a faulted attempt perishes after a drawn fraction of
    its wire bytes has moved (the bytes are really transferred — the
    bandwidth was really spent — but the file never lands). Consumed by
    :class:`~repro.transfer.staging.TransferService`, whose retry policy
    decides what happens next.

    Draw order is the transfer-attempt order, which the simulation makes
    deterministic, so a seeded chaos run replays byte-identically.
    """

    def __init__(self, fault_rate: float, *, seed: int = 0):
        if not 0.0 <= fault_rate < 1.0:
            raise ValueError("fault_rate must be in [0, 1)")
        self.fault_rate = float(fault_rate)
        self._rng = make_rng(seed, "transfer-faults")
        self.faults_drawn = 0

    def draw(self) -> Optional[float]:
        """One attempt's fate: None = clean, else the surviving byte
        fraction in (0, 1) at which the stream dies."""
        if self.fault_rate <= 0.0:
            return None
        if float(self._rng.random()) >= self.fault_rate:
            return None
        self.faults_drawn += 1
        return float(self._rng.uniform(0.05, 0.95))
