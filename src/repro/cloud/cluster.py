"""Virtual cluster assembly and the ORCA-like provisioner.

The cluster wires together VMs, storage volumes and the flow network
into the star topology of the testbed:

- every VM gets an uplink (``vmX.up``) and a downlink (``vmX.down``)
  at its NIC rate through an uncongested core,
- an optional WAN link models cross-site transfers (the Figure 7
  placement experiments: shipping data *to* the compute site crosses
  the WAN; moving computation to the data does not),
- an optional shared :class:`~repro.cloud.storage.NetworkStorage`
  models the iSCSI tier.

:class:`Provisioner` plays the role ORCA/Flukes play in §IV-A: it turns
a :class:`ClusterSpec` into booted VMs, simulating boot latency, and
supports adding VMs later (elasticity, §V-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


from repro.cloud.instance import C1_XLARGE, InstanceType, VirtualMachine
from repro.cloud.network import FlowNetwork
from repro.cloud.storage import LocalDisk, NetworkStorage, StorageVolume
from repro.errors import NetworkError, ProvisioningError
from repro.sim.kernel import Environment, Event
from repro.sim.monitor import Monitor, MonitorSink
from repro.telemetry.spans import Telemetry
from repro.util.seeding import make_rng
from repro.util.units import Mbit


@dataclass(frozen=True)
class ClusterSpec:
    """Declarative description of the virtual cluster to provision."""

    name: str = "cluster"
    instance_type: InstanceType = C1_XLARGE
    num_workers: int = 4
    #: Heterogeneous clusters: when non-empty, worker VM *i* uses
    #: ``worker_instance_types[i % len]`` instead of ``instance_type``.
    worker_instance_types: tuple[InstanceType, ...] = ()
    #: Provisioned per-VM link rate; the paper pins this to 100 Mbps.
    link_bps: float = 100 * Mbit
    link_latency_s: float = 0.001
    #: Master runs on its own VM (data source in the remote strategies).
    master_instance_type: Optional[InstanceType] = None
    #: Mean VM boot delay (exponential); 0 disables boot simulation.
    mean_boot_delay_s: float = 0.0
    #: Shared network-storage tier (None to omit).
    network_storage_bytes: float = 0.0
    network_storage_bps: float = 400 * Mbit
    network_storage_server_bps: float = 400 * Mbit
    #: WAN link between the data-source site and the compute site;
    #: 0 keeps everything on one site.
    wan_bps: float = 0.0
    wan_latency_s: float = 0.03
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_workers < 0:
            raise ProvisioningError("num_workers must be >= 0")
        if self.link_bps <= 0:
            raise ProvisioningError("link_bps must be positive")


class VirtualCluster:
    """The provisioned environment FRIEDA runs in."""

    def __init__(
        self,
        env: Environment,
        spec: ClusterSpec,
        monitor: Monitor | None = None,
        telemetry: Telemetry | None = None,
    ):
        self.env = env
        self.spec = spec
        self.monitor = monitor or Monitor()
        if telemetry is None:
            # Standalone construction: a private hub whose only consumer
            # is this cluster's monitor (the engine passes a shared hub).
            telemetry = Telemetry(clock=lambda: env.now)
            telemetry.bind(monitor=MonitorSink(self.monitor))
        self.telemetry = telemetry
        self.network = FlowNetwork(env, self.monitor, telemetry=telemetry)
        self.vms: dict[str, VirtualMachine] = {}
        self.master_vm: Optional[VirtualMachine] = None
        self.shared_storage: Optional[NetworkStorage] = None
        self.wan_link_name: Optional[str] = None
        self._vm_counter = 0
        if spec.network_storage_bytes > 0:
            self.shared_storage = NetworkStorage(
                self.network,
                f"{spec.name}.nstore",
                spec.network_storage_bytes,
                read_bps=spec.network_storage_bps,
                write_bps=spec.network_storage_bps,
                server_uplink_bps=spec.network_storage_server_bps,
            )
        if spec.wan_bps > 0:
            self.wan_link_name = f"{spec.name}.wan"
            self.network.add_link(self.wan_link_name, spec.wan_bps, spec.wan_latency_s)

    # -- construction -----------------------------------------------------
    def _next_vm_id(self, role: str) -> str:
        vm_id = f"{role}{self._vm_counter}"
        self._vm_counter += 1
        return vm_id

    def create_vm(
        self,
        role: str = "worker",
        itype: InstanceType | None = None,
        *,
        site: str = "compute",
    ) -> VirtualMachine:
        """Create (but do not boot) a VM with its links and local disk.

        ``site`` tags the VM for WAN routing: flows between VMs on
        different sites traverse the WAN link.
        """
        itype = itype or self.spec.instance_type
        vm_id = self._next_vm_id(role)
        vm = VirtualMachine(self.env, vm_id, itype)
        rate = min(self.spec.link_bps, itype.nic_bps)
        self.network.add_link(f"{vm_id}.up", rate, self.spec.link_latency_s)
        self.network.add_link(f"{vm_id}.down", rate, self.spec.link_latency_s)
        vm.local_disk = LocalDisk(
            self.network,
            f"{vm_id}.disk",
            itype.local_disk_bytes,
            read_bps=itype.disk_read_bps,
            write_bps=itype.disk_write_bps,
        )
        vm.site = site  # type: ignore[attr-defined]
        self.vms[vm_id] = vm
        return vm

    # -- queries ----------------------------------------------------------
    @property
    def worker_vms(self) -> list[VirtualMachine]:
        return [vm for vm_id, vm in self.vms.items() if vm is not self.master_vm]

    def running_workers(self) -> list[VirtualMachine]:
        return [vm for vm in self.worker_vms if vm.is_running]

    def vm(self, vm_id: str) -> VirtualMachine:
        try:
            return self.vms[vm_id]
        except KeyError:
            raise ProvisioningError(f"unknown VM {vm_id!r}") from None

    @property
    def total_cores(self) -> int:
        return sum(vm.itype.cores for vm in self.vms.values() if vm.is_running)

    # -- routing ----------------------------------------------------------
    def route_between(self, src_vm: str, dst_vm: str) -> tuple[str, ...]:
        """Network path (link names) from one VM's NIC to another's.

        Adds the WAN hop when the VMs sit on different sites.
        """
        src = self.vm(src_vm)
        dst = self.vm(dst_vm)
        if src_vm == dst_vm:
            return ()
        hops: list[str] = [f"{src_vm}.up"]
        if getattr(src, "site", "compute") != getattr(dst, "site", "compute"):
            if self.wan_link_name is None:
                raise NetworkError(
                    f"{src_vm} and {dst_vm} are on different sites but the "
                    "cluster has no WAN link"
                )
            hops.append(self.wan_link_name)
        hops.append(f"{dst_vm}.down")
        return tuple(hops)

    def disk_to_disk_path(self, src_vm: str, dst_vm: str) -> tuple[str, ...]:
        """Full path: source disk read → network → destination disk write."""
        src_disk: StorageVolume = self.vm(src_vm).local_disk
        dst_disk: StorageVolume = self.vm(dst_vm).local_disk
        return src_disk.read_path() + self.route_between(src_vm, dst_vm) + dst_disk.write_path()

    def storage_read_path(self, dst_vm: str) -> tuple[str, ...]:
        """Path for a VM reading from shared network storage."""
        if self.shared_storage is None:
            raise NetworkError("cluster has no shared network storage")
        return self.shared_storage.read_path() + (f"{dst_vm}.down",)

    def storage_write_path(self, src_vm: str) -> tuple[str, ...]:
        if self.shared_storage is None:
            raise NetworkError("cluster has no shared network storage")
        return (f"{src_vm}.up",) + self.shared_storage.write_path()

    # -- failure hook -------------------------------------------------------
    def fail_vm(self, vm_id: str, cause: str = "injected") -> None:
        vm = self.vm(vm_id)
        vm.fail(cause)
        if vm.local_disk is not None:
            vm.local_disk.clear()  # ephemeral disk dies with the VM
        self.telemetry.event("vm.failed", vm_id, track="control", cause=cause)
        self.telemetry.metrics.counter("cluster.vm_failures").inc()


class Provisioner:
    """Boots a :class:`VirtualCluster` from a :class:`ClusterSpec`.

    Boot delays are exponential with mean ``spec.mean_boot_delay_s``;
    a zero mean boots everything instantaneously (useful in unit tests).
    """

    def __init__(
        self,
        env: Environment,
        monitor: Monitor | None = None,
        telemetry: Telemetry | None = None,
    ):
        self.env = env
        self.monitor = monitor
        self.telemetry = telemetry

    def provision(self, spec: ClusterSpec) -> tuple[VirtualCluster, Event]:
        """Create the cluster; returns (cluster, ready_event)."""
        cluster = VirtualCluster(self.env, spec, self.monitor, self.telemetry)
        rng = make_rng(spec.seed, "provision", spec.name)
        master = cluster.create_vm(
            "master", spec.master_instance_type or spec.instance_type
        )
        cluster.master_vm = master
        workers = []
        for index in range(spec.num_workers):
            if spec.worker_instance_types:
                itype = spec.worker_instance_types[index % len(spec.worker_instance_types)]
            else:
                itype = spec.instance_type
            workers.append(cluster.create_vm("worker", itype))

        def boot(vm: VirtualMachine):
            if spec.mean_boot_delay_s > 0:
                yield self.env.timeout(float(rng.exponential(spec.mean_boot_delay_s)))
            vm.mark_running()
            cluster.telemetry.event("vm.booted", vm.vm_id, track="control")
            cluster.telemetry.metrics.counter("cluster.vms_booted").inc()
            return vm

        boots = [self.env.process(boot(vm), name=f"boot-{vm.vm_id}") for vm in [master, *workers]]
        ready = self.env.all_of(boots)
        return cluster, ready

    def provision_now(self, spec: ClusterSpec) -> VirtualCluster:
        """Provision and run the env until the cluster is fully booted."""
        cluster, ready = self.provision(spec)
        self.env.run(until=ready)
        return cluster

    def add_worker(
        self,
        cluster: VirtualCluster,
        itype: InstanceType | None = None,
        *,
        boot_delay: float | None = None,
    ) -> tuple[VirtualMachine, Event]:
        """Elastically add one worker VM; returns (vm, booted_event)."""
        vm = cluster.create_vm("worker", itype)
        delay = (
            boot_delay
            if boot_delay is not None
            else cluster.spec.mean_boot_delay_s
        )

        def boot():
            if delay > 0:
                yield self.env.timeout(delay)
            vm.mark_running()
            cluster.telemetry.event("vm.booted", vm.vm_id, track="control", elastic=True)
            cluster.telemetry.metrics.counter("cluster.vms_booted").inc()
            return vm

        return vm, self.env.process(boot(), name=f"boot-{vm.vm_id}")
