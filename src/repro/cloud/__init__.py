"""Cloud substrate: VMs, storage tiers, network, provisioning, failures.

This package models the ExoGENI environment of §IV-A — the piece of the
paper we cannot physically reproduce — as a discrete-event system:

- :mod:`repro.cloud.network` — flow-level max-min fair bandwidth
  sharing (the provisioned 100 Mbps links, shared master uplink),
- :mod:`repro.cloud.instance` — instance types (c1.xlarge: 4 cores,
  4 GB) and virtual machines with CPU cores as resources,
- :mod:`repro.cloud.storage` — local disk / block store / network
  (iSCSI-style) storage tiers with distinct bandwidth/latency/capacity
  trade-offs (§III-A),
- :mod:`repro.cloud.cluster` — the virtual cluster and an ORCA-like
  provisioner,
- :mod:`repro.cloud.failures` — failure injection (availability
  fluctuations of §V-A "Robust"),
- :mod:`repro.cloud.billing` — cost accounting for the performance/cost
  trade-off discussion.
"""

from repro.cloud.network import Flow, FlowNetwork, Link, Route
from repro.cloud.instance import InstanceType, VirtualMachine, VmState, C1_XLARGE, M1_SMALL, M1_LARGE
from repro.cloud.storage import (
    BlockStore,
    LocalDisk,
    NetworkStorage,
    StorageTier,
    StorageVolume,
)
from repro.cloud.cluster import ClusterSpec, Provisioner, VirtualCluster
from repro.cloud.failures import FailureInjector, FailureRecord, FailureSchedule
from repro.cloud.billing import BillingModel, CostReport, PriceSheet

__all__ = [
    "Flow",
    "FlowNetwork",
    "Link",
    "Route",
    "InstanceType",
    "VirtualMachine",
    "VmState",
    "C1_XLARGE",
    "M1_SMALL",
    "M1_LARGE",
    "BlockStore",
    "LocalDisk",
    "NetworkStorage",
    "StorageTier",
    "StorageVolume",
    "ClusterSpec",
    "Provisioner",
    "VirtualCluster",
    "FailureInjector",
    "FailureRecord",
    "FailureSchedule",
    "BillingModel",
    "CostReport",
    "PriceSheet",
]
