"""Job records for the multi-tenant control plane.

A *job* is one data-parallel run — the unit the single-run engines call
"the run" — demoted to a handle the service can hold many of: its own
:class:`~repro.core.scheduler.MasterScheduler` (pull discipline), its
own :class:`~repro.core.fault.FaultTracker`, and a prefixed metrics
view (``job.<id>.queue.depth`` …) over the service registry, so two
jobs' gauges can never collide.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional

from repro.core.scheduler import MasterScheduler
from repro.data.files import DataFile
from repro.data.partition import TaskGroup


class JobState(str, Enum):
    """Lifecycle of an admitted job (rejected submissions are never
    stored, so there is no REJECTED state)."""

    #: Admitted but waiting for capacity; holds no workers.
    PARKED = "parked"
    #: Eligible for fair-share leasing.
    RUNNING = "running"
    #: Every task resolved (completed, failed, or lost).
    DONE = "done"
    #: Cancelled by the tenant; outstanding leases drain without effect.
    CANCELLED = "cancelled"


@dataclass(frozen=True)
class JobSpec:
    """What a tenant submits.

    ``kind`` and ``cost`` are advisory: the service core treats them as
    opaque, but drivers use them to model contention (a transfer-heavy
    job's task time scales with bytes; a compute-heavy one's does not).
    """

    tenant: str
    name: str
    groups: tuple[TaskGroup, ...]
    kind: str = "compute"
    cost: float = 1.0

    @staticmethod
    def from_sizes(
        tenant: str,
        name: str,
        sizes: "list[float] | tuple[float, ...]",
        *,
        kind: str = "compute",
        cost: float = 1.0,
    ) -> "JobSpec":
        """Build a spec from per-task byte sizes (one file per task)."""
        groups = tuple(
            TaskGroup(
                index=i,
                files=(DataFile(name=f"{name}.{i}", size=int(size)),),
            )
            for i, size in enumerate(sizes)
        )
        return JobSpec(tenant=tenant, name=name, groups=groups, kind=kind, cost=cost)


@dataclass
class Job:
    """One admitted job's live state inside the service."""

    id: str
    spec: JobSpec
    scheduler: MasterScheduler
    state: JobState
    submitted_at: float
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Workers this job's scheduler knows (registered on first lease).
    workers_seen: set = field(default_factory=set)
    #: Outstanding leases keyed ``(worker_id, task_id)``.
    leases: dict = field(default_factory=dict)
    #: ``(task_id, worker_id, attempt, finished_at)`` per completion,
    #: in completion order — the job's reproducibility witness.
    completions: list = field(default_factory=list)

    @property
    def tenant(self) -> str:
        return self.spec.tenant

    @property
    def active(self) -> bool:
        return self.state in (JobState.PARKED, JobState.RUNNING)

    def status(self) -> dict[str, Any]:
        """Plain-dict view for the status endpoint (JSON-safe)."""
        return {
            "job_id": self.id,
            "tenant": self.tenant,
            "name": self.spec.name,
            "kind": self.spec.kind,
            "state": self.state.value,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "summary": self.scheduler.summary(),
            "leases": len(self.leases),
        }


def outcome_digest(job: Job) -> str:
    """A byte-stable fingerprint of everything that happened to a job.

    Same seed → same digest is the service's determinism contract: the
    digest covers the per-task placement and timing, not just the
    counts, so any divergence in scheduling order is caught.
    """
    payload = {
        "job": job.id,
        "tenant": job.tenant,
        "name": job.spec.name,
        "state": job.state.value,
        "summary": job.scheduler.summary(),
        "started": job.started_at,
        "finished": job.finished_at,
        "completions": job.completions,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()
