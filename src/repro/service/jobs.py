"""Job records for the multi-tenant control plane.

A *job* is one data-parallel run — the unit the single-run engines call
"the run" — demoted to a handle the service can hold many of: its own
:class:`~repro.core.scheduler.MasterScheduler` (pull discipline), its
own :class:`~repro.core.fault.FaultTracker`, and a prefixed metrics
view (``job.<id>.queue.depth`` …) over the service registry, so two
jobs' gauges can never collide.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional

from repro.core.scheduler import MasterScheduler
from repro.data.files import DataFile
from repro.data.partition import TaskGroup


class JobState(str, Enum):
    """Lifecycle of an admitted job (rejected submissions are never
    stored, so there is no REJECTED state)."""

    #: Admitted but waiting for capacity; holds no workers.
    PARKED = "parked"
    #: Eligible for fair-share leasing.
    RUNNING = "running"
    #: Every task resolved (completed, failed, or lost).
    DONE = "done"
    #: Cancelled by the tenant; outstanding leases drain without effect.
    CANCELLED = "cancelled"


@dataclass(frozen=True)
class JobSpec:
    """What a tenant submits.

    ``kind`` and ``cost`` are advisory: the service core treats them as
    opaque, but drivers use them to model contention (a transfer-heavy
    job's task time scales with bytes; a compute-heavy one's does not).
    """

    tenant: str
    name: str
    groups: tuple[TaskGroup, ...]
    kind: str = "compute"
    cost: float = 1.0

    @staticmethod
    def from_sizes(
        tenant: str,
        name: str,
        sizes: "list[float] | tuple[float, ...]",
        *,
        kind: str = "compute",
        cost: float = 1.0,
    ) -> "JobSpec":
        """Build a spec from per-task byte sizes (one file per task)."""
        groups = tuple(
            TaskGroup(
                index=i,
                files=(DataFile(name=f"{name}.{i}", size=int(size)),),
            )
            for i, size in enumerate(sizes)
        )
        return JobSpec(tenant=tenant, name=name, groups=groups, kind=kind, cost=cost)

    # -- durability ---------------------------------------------------------
    def to_state(self) -> dict:
        """JSON-safe form for the write-ahead journal's submit records."""
        return {
            "tenant": self.tenant,
            "name": self.name,
            "kind": self.kind,
            "cost": self.cost,
            "groups": [
                [g.index, [[f.name, f.size] for f in g.files]]
                for g in self.groups
            ],
        }

    @classmethod
    def from_state(cls, state: dict) -> "JobSpec":
        return cls(
            tenant=state["tenant"],
            name=state["name"],
            kind=state["kind"],
            cost=float(state["cost"]),
            groups=tuple(
                TaskGroup(
                    index=int(index),
                    files=tuple(
                        DataFile(name=name, size=int(size)) for name, size in files
                    ),
                )
                for index, files in state["groups"]
            ),
        )


@dataclass
class Job:
    """One admitted job's live state inside the service."""

    id: str
    spec: JobSpec
    scheduler: MasterScheduler
    state: JobState
    submitted_at: float
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Workers this job's scheduler knows (registered on first lease).
    workers_seen: set = field(default_factory=set)
    #: Outstanding leases keyed ``(worker_id, task_id)``.
    leases: dict = field(default_factory=dict)
    #: ``(task_id, worker_id, attempt, finished_at)`` per completion,
    #: in completion order — the job's reproducibility witness.
    completions: list = field(default_factory=list)

    @property
    def tenant(self) -> str:
        return self.spec.tenant

    @property
    def active(self) -> bool:
        return self.state in (JobState.PARKED, JobState.RUNNING)

    def status(self) -> dict[str, Any]:
        """Plain-dict view for the status endpoint (JSON-safe)."""
        return {
            "job_id": self.id,
            "tenant": self.tenant,
            "name": self.spec.name,
            "kind": self.spec.kind,
            "state": self.state.value,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "summary": self.scheduler.summary(),
            "leases": len(self.leases),
        }


def job_state_to_dict(job: Job) -> dict:
    """JSON-safe snapshot of a job's live state (minus its leases,
    which the service serializes itself — lease objects are shared
    between the job and the worker pool and must restore to one object,
    not two)."""
    return {
        "id": job.id,
        "spec": job.spec.to_state(),
        "state": job.state.value,
        "submitted_at": job.submitted_at,
        "started_at": job.started_at,
        "finished_at": job.finished_at,
        "workers_seen": sorted(job.workers_seen),
        "scheduler": job.scheduler.to_state(),
        "completions": [list(row) for row in job.completions],
    }


def outcome_digest(job: Job) -> str:
    """A byte-stable fingerprint of everything that happened to a job.

    Same seed → same digest is the service's determinism contract: the
    digest covers the per-task placement and timing, not just the
    counts, so any divergence in scheduling order is caught.
    """
    payload = {
        "job": job.id,
        "tenant": job.tenant,
        "name": job.spec.name,
        "state": job.state.value,
        "summary": job.scheduler.summary(),
        "started": job.started_at,
        "finished": job.finished_at,
        "completions": job.completions,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def task_outcome_digest(job: Job) -> str:
    """A fingerprint of *what* the job produced, not *when* or *where*.

    :func:`outcome_digest` covers placement and timing — the right
    contract for "same seed, same schedule" determinism, but a master
    crash legitimately reshuffles both: a fenced in-flight task reruns
    later, possibly on a different worker.  What a crash must **never**
    change is the outcome itself — which tasks completed, which failed,
    which were lost, and how the job ended.  This digest covers exactly
    that, so the kill-the-master harness can assert a crashed-and-
    recovered run byte-identical to an uninterrupted one.
    """
    scheduler = job.scheduler
    payload = {
        "job": job.id,
        "tenant": job.tenant,
        "name": job.spec.name,
        "state": job.state.value,
        "total": len(job.spec.groups),
        "completed": sorted(scheduler.completed),
        "failed": sorted({a.task_id for a in scheduler.failed_tasks}),
        "lost": sorted({a.task_id for a in scheduler.lost_tasks}),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()
