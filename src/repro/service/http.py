"""Async HTTP/JSON front end for the control-plane service.

Stdlib-only (``asyncio`` streams + hand-rolled HTTP/1.1 framing — no
new dependencies), exposing the tenant workflow:

- ``POST /jobs``              submit ``{"tenant", "name", "tasks": [...]}``
- ``GET  /jobs``              list every job
- ``GET  /jobs/<id>``         one job's status (live metrics included)
- ``POST /jobs/<id>/cancel``  cancel a running or parked job

Responses are always JSON.  Submission maps the admission verdict onto
status codes: 202 for admit/park (the ticket says which), 429 for
reject — the back-off signal load shedding wants tenants to see.

The surface is hardened against abusive clients: an optional shared
bearer token gates every route (401, constant-time compare), each
request gets one read deadline (408 on a slow-loris drip), and header
count and line length are capped (431) — a connection can no longer
pin the server by trickling an unbounded header stream.
"""

from __future__ import annotations

import asyncio
import hmac
import json
from typing import Any, Optional

from repro.service.aio import AsyncServiceRuntime
from repro.service.jobs import JobSpec
from repro.telemetry.metrics import MetricsRegistry, NULL_METRICS

_MAX_BODY = 4 * 1024 * 1024
_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
}


class _RequestOverflow(Exception):
    """A header stream broke the caps (count or line length)."""


def spec_from_json(body: dict[str, Any]) -> JobSpec:
    """Build a :class:`JobSpec` from the submit payload.

    ``tasks`` is a list of byte sizes, or of ``{"size": n}`` objects —
    one task group per entry.
    """
    tenant = body.get("tenant")
    name = body.get("name")
    tasks = body.get("tasks")
    if not isinstance(tenant, str) or not tenant:
        raise ValueError("'tenant' must be a non-empty string")
    if not isinstance(name, str) or not name:
        raise ValueError("'name' must be a non-empty string")
    if not isinstance(tasks, list) or not tasks:
        raise ValueError("'tasks' must be a non-empty list")
    sizes: list[float] = []
    for i, task in enumerate(tasks):
        if isinstance(task, (int, float)) and task >= 0:
            sizes.append(float(task))
        elif isinstance(task, dict) and isinstance(task.get("size"), (int, float)):
            sizes.append(float(task["size"]))
        else:
            raise ValueError(f"task {i} must be a size or {{'size': n}}")
    kind = body.get("kind", "compute")
    if kind not in ("compute", "transfer"):
        raise ValueError("'kind' must be 'compute' or 'transfer'")
    cost = body.get("cost", 1.0)
    if not isinstance(cost, (int, float)) or cost <= 0:
        raise ValueError("'cost' must be a positive number")
    return JobSpec.from_sizes(tenant, name, sizes, kind=kind, cost=float(cost))


class ServiceHttpServer:
    """Minimal HTTP/1.1 server over an :class:`AsyncServiceRuntime`.

    ``auth_token`` (optional) turns on bearer authentication: every
    request must carry ``Authorization: Bearer <token>`` or is refused
    with 401 and counted in ``service.http.unauthorized``.  The
    comparison is constant-time (:func:`hmac.compare_digest`), so the
    surface leaks no prefix-timing oracle.

    ``read_timeout`` bounds how long one request may take to arrive in
    full — request line, headers, and body share a single deadline
    (408, ``service.http.timeouts``).  ``max_header_lines`` and
    ``max_line_bytes`` cap the header stream (431,
    ``service.http.overflows``); the previous implementation read
    header lines in an unbounded loop, so one drip-feeding client
    could grow buffers forever.
    """

    def __init__(
        self,
        runtime: AsyncServiceRuntime,
        *,
        auth_token: Optional[str] = None,
        read_timeout: float = 5.0,
        max_header_lines: int = 64,
        max_line_bytes: int = 8192,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if read_timeout <= 0:
            raise ValueError("read_timeout must be positive")
        if max_header_lines < 1 or max_line_bytes < 64:
            raise ValueError("header caps are too small to parse any request")
        self.runtime = runtime
        self._auth_token = auth_token
        self._read_timeout = read_timeout
        self._max_header_lines = max_header_lines
        self._max_line_bytes = max_line_bytes
        metrics = metrics if metrics is not None else NULL_METRICS
        self._m_unauthorized = metrics.counter("service.http.unauthorized")
        self._m_timeouts = metrics.counter("service.http.timeouts")
        self._m_overflows = metrics.counter("service.http.overflows")
        self._server: Optional[asyncio.AbstractServer] = None
        self.port: Optional[int] = None

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        # The stream limit backstops the per-line cap: a client sending
        # one endless line without a newline trips it inside readline.
        self._server = await asyncio.start_server(
            self._handle, host, port, limit=2 * self._max_line_bytes
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await self._serve_one(reader)
        except asyncio.TimeoutError:
            self._m_timeouts.inc()
            status, payload = 408, {"error": "request read timed out"}
        except _RequestOverflow as exc:
            self._m_overflows.inc()
            status, payload = 431, {"error": str(exc)}
        except (asyncio.IncompleteReadError, ConnectionError, ValueError):
            # ValueError: the stream limit tripped mid-line — the
            # connection is unframed garbage; drop it.
            writer.close()
            return
        body = json.dumps(payload).encode()
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode() + body)
        await writer.drain()
        writer.close()

    async def _read_line(
        self, reader: asyncio.StreamReader, deadline: float
    ) -> bytes:
        remaining = deadline - asyncio.get_running_loop().time()
        if remaining <= 0:
            raise asyncio.TimeoutError
        line = await asyncio.wait_for(reader.readline(), timeout=remaining)
        if len(line) > self._max_line_bytes:
            raise _RequestOverflow("header line too long")
        return line

    def _authorized(self, headers: dict[str, str]) -> bool:
        if self._auth_token is None:
            return True
        value = headers.get("authorization", "")
        scheme, _, presented = value.partition(" ")
        return scheme.lower() == "bearer" and hmac.compare_digest(
            presented.strip(), self._auth_token
        )

    async def _serve_one(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, dict[str, Any]]:
        deadline = asyncio.get_running_loop().time() + self._read_timeout
        request_line = (await self._read_line(reader, deadline)).decode("latin-1").strip()
        parts = request_line.split(" ")
        if len(parts) != 3:
            return 400, {"error": "malformed request line"}
        method, path, _version = parts
        headers: dict[str, str] = {}
        for _ in range(self._max_header_lines):
            line = (await self._read_line(reader, deadline)).decode("latin-1").strip()
            if not line:
                break
            key, _, value = line.partition(":")
            headers[key.strip().lower()] = value.strip()
        else:
            raise _RequestOverflow("too many header lines")
        try:
            content_length = int(headers.get("content-length", "0"))
        except ValueError:
            return 400, {"error": "bad content-length"}
        if content_length < 0:
            return 400, {"error": "bad content-length"}
        if not self._authorized(headers):
            self._m_unauthorized.inc()
            return 401, {"error": "missing or invalid bearer token"}
        if content_length > _MAX_BODY:
            return 413, {"error": "body too large"}
        raw = b""
        if content_length:
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                raise asyncio.TimeoutError
            raw = await asyncio.wait_for(
                reader.readexactly(content_length), timeout=remaining
            )
        return self._route(method, path, raw)

    def _route(
        self, method: str, path: str, raw: bytes
    ) -> tuple[int, dict[str, Any]]:
        if path == "/jobs" and method == "POST":
            try:
                body = json.loads(raw or b"{}")
                spec = spec_from_json(body)
            except (ValueError, TypeError) as exc:
                return 400, {"error": str(exc)}
            ticket = self.runtime.submit(spec)
            return (429 if ticket["verdict"] == "reject" else 202), ticket
        if path == "/jobs" and method == "GET":
            return 200, {"jobs": self.runtime.list_jobs()}
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/") :]
            if rest.endswith("/cancel") and method == "POST":
                job_id = rest[: -len("/cancel")]
                if self.runtime.status(job_id) is None:
                    return 404, {"error": f"no such job {job_id!r}"}
                return 200, {
                    "job_id": job_id,
                    "cancelled": self.runtime.cancel(job_id),
                }
            if method == "GET":
                status = self.runtime.status(rest)
                if status is None:
                    return 404, {"error": f"no such job {rest!r}"}
                return 200, status
        return 405, {"error": f"unsupported {method} {path}"}
