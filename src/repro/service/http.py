"""Async HTTP/JSON front end for the control-plane service.

Stdlib-only (``asyncio`` streams + hand-rolled HTTP/1.1 framing — no
new dependencies), exposing the tenant workflow:

- ``POST /jobs``              submit ``{"tenant", "name", "tasks": [...]}``
- ``GET  /jobs``              list every job
- ``GET  /jobs/<id>``         one job's status (live metrics included)
- ``POST /jobs/<id>/cancel``  cancel a running or parked job

Responses are always JSON.  Submission maps the admission verdict onto
status codes: 202 for admit/park (the ticket says which), 429 for
reject — the back-off signal load shedding wants tenants to see.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Optional

from repro.service.aio import AsyncServiceRuntime
from repro.service.jobs import JobSpec

_MAX_BODY = 4 * 1024 * 1024
_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
}


def spec_from_json(body: dict[str, Any]) -> JobSpec:
    """Build a :class:`JobSpec` from the submit payload.

    ``tasks`` is a list of byte sizes, or of ``{"size": n}`` objects —
    one task group per entry.
    """
    tenant = body.get("tenant")
    name = body.get("name")
    tasks = body.get("tasks")
    if not isinstance(tenant, str) or not tenant:
        raise ValueError("'tenant' must be a non-empty string")
    if not isinstance(name, str) or not name:
        raise ValueError("'name' must be a non-empty string")
    if not isinstance(tasks, list) or not tasks:
        raise ValueError("'tasks' must be a non-empty list")
    sizes: list[float] = []
    for i, task in enumerate(tasks):
        if isinstance(task, (int, float)) and task >= 0:
            sizes.append(float(task))
        elif isinstance(task, dict) and isinstance(task.get("size"), (int, float)):
            sizes.append(float(task["size"]))
        else:
            raise ValueError(f"task {i} must be a size or {{'size': n}}")
    kind = body.get("kind", "compute")
    if kind not in ("compute", "transfer"):
        raise ValueError("'kind' must be 'compute' or 'transfer'")
    cost = body.get("cost", 1.0)
    if not isinstance(cost, (int, float)) or cost <= 0:
        raise ValueError("'cost' must be a positive number")
    return JobSpec.from_sizes(tenant, name, sizes, kind=kind, cost=float(cost))


class ServiceHttpServer:
    """Minimal HTTP/1.1 server over an :class:`AsyncServiceRuntime`."""

    def __init__(self, runtime: AsyncServiceRuntime) -> None:
        self.runtime = runtime
        self._server: Optional[asyncio.AbstractServer] = None
        self.port: Optional[int] = None

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        self._server = await asyncio.start_server(self._handle, host, port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await self._serve_one(reader)
        except (asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        body = json.dumps(payload).encode()
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode() + body)
        await writer.drain()
        writer.close()

    async def _serve_one(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, dict[str, Any]]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split(" ")
        if len(parts) != 3:
            return 400, {"error": "malformed request line"}
        method, path, _version = parts
        content_length = 0
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            key, _, value = line.partition(":")
            if key.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return 400, {"error": "bad content-length"}
        if content_length > _MAX_BODY:
            return 413, {"error": "body too large"}
        raw = await reader.readexactly(content_length) if content_length else b""
        return self._route(method, path, raw)

    def _route(
        self, method: str, path: str, raw: bytes
    ) -> tuple[int, dict[str, Any]]:
        if path == "/jobs" and method == "POST":
            try:
                body = json.loads(raw or b"{}")
                spec = spec_from_json(body)
            except (ValueError, TypeError) as exc:
                return 400, {"error": str(exc)}
            ticket = self.runtime.submit(spec)
            return (429 if ticket["verdict"] == "reject" else 202), ticket
        if path == "/jobs" and method == "GET":
            return 200, {"jobs": self.runtime.list_jobs()}
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/") :]
            if rest.endswith("/cancel") and method == "POST":
                job_id = rest[: -len("/cancel")]
                if self.runtime.status(job_id) is None:
                    return 404, {"error": f"no such job {job_id!r}"}
                return 200, {
                    "job_id": job_id,
                    "cancelled": self.runtime.cancel(job_id),
                }
            if method == "GET":
                status = self.runtime.status(rest)
                if status is None:
                    return 404, {"error": f"no such job {rest!r}"}
                return 200, status
        return 405, {"error": f"unsupported {method} {path}"}
