"""Write-ahead journal for the control plane: records, stores, reader.

The multi-tenant service (:mod:`repro.service.core`) is a pure state
machine; its entire state is a deterministic function of the sequence
of mutating calls it has served.  The journal makes that sequence
durable: every state-changing event — submission verdicts, lease
grants, completions (which release the lease and charge fair-share
usage), cancellations, worker crashes with their minted replacement
ids, and fenced stale-epoch reports — is appended as one CRC-guarded
record *with* the outcome the live service computed, so replay can both
rebuild the state and verify it rebuilt the *same* state.

Layout::

    FRJL <u16 version> | record | record | ...
    record := <u32 body length> <u32 crc32(body)> <body>
    body   := canonical JSON {"k": kind, "t": virtual time, ...}

Damage never crashes recovery: a truncated tail or a bit-flipped CRC
stops the reader cleanly at the last valid record (the damage is
reported and counted; the store is truncated back to the valid prefix
before the next incarnation appends).  Compaction replaces the whole
store with a single ``snapshot`` record carrying the service's full
captured state; subsequent records append after it, so recovery is
"restore last snapshot, replay the tail".

This module is pure mechanism — bytes in, records out, no clock reads,
no file I/O (stores are injected; the file-backed one lives in
:mod:`repro.service.journalfs` so this module can serve as a
frieda-audit taint root).  Policy — what to record, how to replay —
lives in :mod:`repro.service.core`.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Optional, Protocol

from repro.errors import JournalError
from repro.telemetry.metrics import MetricsRegistry, NULL_METRICS

MAGIC = b"FRJL"
VERSION = 1
HEADER = MAGIC + struct.pack("<H", VERSION)
_FRAME = struct.Struct("<II")

# -- record kinds ------------------------------------------------------------
#: New incarnation (epoch bump) with the pool membership at open time.
OPEN = "open"
#: A submission and its verdict (admit/park ticket or reject).
SUBMIT = "submit"
#: A lease grant: (worker, job, task, attempt).
LEASE = "lease"
#: A lease release: completion or task error, with the usage charged.
COMPLETE = "complete"
#: A tenant cancellation.
CANCEL = "cancel"
#: A worker crash with the replacement id the rejoin policy minted.
CRASH = "crash"
#: A stale-epoch report: the lease it fenced and whether its task
#: requeued into the owning job.
FENCED = "fenced"
#: A full captured service state (compaction writes exactly one, first).
SNAPSHOT = "snapshot"

RECORD_KINDS = (OPEN, SUBMIT, LEASE, COMPLETE, CANCEL, CRASH, FENCED, SNAPSHOT)


class JournalStore(Protocol):
    """Where journal bytes live.  ``append`` must be atomic from the
    service's point of view; ``replace`` swaps the whole content (used
    by compaction and damage truncation)."""

    def read(self) -> bytes: ...

    def append(self, data: bytes) -> None: ...

    def replace(self, data: bytes) -> None: ...


class MemoryJournalStore:
    """In-memory store: the deterministic harness's journal, and the
    reference semantics for :class:`~repro.service.journalfs.FileJournalStore`."""

    def __init__(self, data: bytes = b"") -> None:
        self._data = bytearray(data)

    def read(self) -> bytes:
        return bytes(self._data)

    def append(self, data: bytes) -> None:
        self._data.extend(data)

    def replace(self, data: bytes) -> None:
        self._data = bytearray(data)

    @property
    def size(self) -> int:
        return len(self._data)


# -- codec -------------------------------------------------------------------
def encode_record(payload: dict[str, Any]) -> bytes:
    """One length-prefixed, CRC-guarded record from a JSON-safe dict."""
    kind = payload.get("k")
    if kind not in RECORD_KINDS:
        raise JournalError(f"unknown journal record kind {kind!r}")
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    return _FRAME.pack(len(body), zlib.crc32(body)) + body


@dataclass(frozen=True)
class JournalDamage:
    """Why decoding stopped before the end of the store."""

    offset: int
    reason: str
    records_read: int


@dataclass(frozen=True)
class JournalImage:
    """A decoded journal: the last snapshot (if any) plus the tail.

    ``valid_bytes`` is the length of the longest cleanly-decodable
    prefix — recovery truncates the store back to it before appending,
    so a damaged tail can never be appended after.
    """

    snapshot: Optional[dict[str, Any]]
    records: list[dict[str, Any]] = field(default_factory=list)
    damage: Optional[JournalDamage] = None
    valid_bytes: int = 0

    @property
    def epoch(self) -> int:
        """The highest epoch the journal recorded (1 when none did)."""
        epoch = 1
        if self.snapshot is not None:
            epoch = int(self.snapshot.get("epoch", 1))
        for record in self.records:
            if record["k"] == OPEN:
                epoch = max(epoch, int(record["epoch"]))
        return epoch


def decode_records(
    data: bytes,
) -> tuple[list[dict[str, Any]], Optional[JournalDamage], int]:
    """Decode every clean record; stop (never raise) at the first
    damaged one.

    A missing or foreign header is a :class:`JournalError` — there is
    nothing to recover from a file that was never a journal.  Returns
    ``(records, damage_or_None, valid_bytes)``.
    """
    if len(data) < len(HEADER) or data[: len(MAGIC)] != MAGIC:
        raise JournalError("not a FRIEDA journal (bad magic)")
    (version,) = struct.unpack_from("<H", data, len(MAGIC))
    if version != VERSION:
        raise JournalError(f"unsupported journal version {version}")
    records: list[dict[str, Any]] = []
    offset = len(HEADER)
    while offset < len(data):
        if offset + _FRAME.size > len(data):
            return records, JournalDamage(offset, "truncated frame", len(records)), offset
        length, crc = _FRAME.unpack_from(data, offset)
        body_start = offset + _FRAME.size
        body = data[body_start : body_start + length]
        if len(body) < length:
            return records, JournalDamage(offset, "truncated record", len(records)), offset
        if zlib.crc32(body) != crc:
            return records, JournalDamage(offset, "crc mismatch", len(records)), offset
        try:
            payload = json.loads(body)
        except ValueError:
            return records, JournalDamage(offset, "unparsable body", len(records)), offset
        if not isinstance(payload, dict) or payload.get("k") not in RECORD_KINDS:
            return records, JournalDamage(offset, "unknown record kind", len(records)), offset
        records.append(payload)
        offset = body_start + length
    return records, None, offset


def read_journal(data: bytes) -> JournalImage:
    """The recovery view: the latest snapshot plus everything after it."""
    records, damage, valid_bytes = decode_records(data)
    snapshot: Optional[dict[str, Any]] = None
    tail_start = 0
    for i, record in enumerate(records):
        if record["k"] == SNAPSHOT:
            snapshot = record["state"]
            tail_start = i + 1
    return JournalImage(
        snapshot=snapshot,
        records=records[tail_start:],
        damage=damage,
        valid_bytes=valid_bytes,
    )


class JournalWriter:
    """Appends records to a store and tracks compaction debt.

    ``snapshot_every`` is the compaction period in records: once that
    many records follow the last snapshot, :attr:`compaction_due` turns
    true and the owner is expected to call :meth:`compact` with its
    captured state.  The ``service.journal.lag_records`` gauge exports
    the same debt for SLO probes — a growing lag means recovery replay
    is getting slower.
    """

    def __init__(
        self,
        store: JournalStore,
        *,
        snapshot_every: Optional[int] = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if snapshot_every is not None and snapshot_every < 1:
            raise JournalError("snapshot_every must be >= 1")
        self.store = store
        self.snapshot_every = snapshot_every
        metrics = metrics if metrics is not None else NULL_METRICS
        self._m_records = metrics.counter("service.journal.records")
        self._m_snapshots = metrics.counter("service.journal.snapshots")
        self._g_lag = metrics.gauge("service.journal.lag_records")
        existing = store.read()
        if not existing:
            store.append(HEADER)
            self._lag = 0
        else:
            # Attaching to a journal with history: the lag is whatever
            # follows the last snapshot (recovery already truncated any
            # damaged tail).
            image = read_journal(existing)
            if image.damage is not None:
                raise JournalError(
                    f"cannot append to a damaged journal "
                    f"({image.damage.reason} at byte {image.damage.offset}); "
                    f"truncate to the valid prefix first"
                )
            self._lag = len(image.records)
        self._g_lag.set(self._lag)

    @property
    def lag_records(self) -> int:
        """Records appended since the last snapshot."""
        return self._lag

    @property
    def compaction_due(self) -> bool:
        return self.snapshot_every is not None and self._lag >= self.snapshot_every

    def append(self, kind: str, t: float, **fields: Any) -> None:
        payload: dict[str, Any] = {"k": kind, "t": t}
        payload.update(fields)
        self.store.append(encode_record(payload))
        self._lag += 1
        self._m_records.inc()
        self._g_lag.set(self._lag)

    def compact(self, state: dict[str, Any], *, epoch: int, t: float) -> None:
        """Replace the whole store with one snapshot of ``state``.

        Everything the tail records expressed is already folded into
        the captured state, so the snapshot is the new truth and the
        log restarts empty behind it.
        """
        record = encode_record(
            {"k": SNAPSHOT, "t": t, "epoch": epoch, "state": state}
        )
        self.store.replace(HEADER + record)
        self._lag = 0
        self._m_snapshots.inc()
        self._g_lag.set(self._lag)
