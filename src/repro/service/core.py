"""The multi-tenant control plane: many jobs over one worker pool.

``ControlPlaneService`` is a pure state machine, like the scheduler it
multiplexes: the clock is injected and every decision is deterministic
given the call sequence, so the simulated driver can replay a load of
hundreds of tenants to byte-identical per-job digests, while the
asyncio driver runs the same logic on the real clock.

Division of labour per submission:

- :class:`~repro.service.admission.AdmissionController` decides
  admit/park/reject against pool and tenant quotas;
- each admitted job gets its own
  :class:`~repro.core.scheduler.MasterScheduler` (pull discipline),
  its own :class:`~repro.core.fault.FaultTracker`, and a
  ``job.<id>.``-prefixed metrics view — per-job signals without any
  cross-job gauge collisions;
- :class:`~repro.service.fairshare.FairShareScheduler` picks which
  job's queue the next free worker serves;
- :class:`~repro.service.pool.WorkerPool` tracks leases, so a worker
  crash touches exactly the owning job's tasks and nothing else.

Drivers call :meth:`lease` / :meth:`complete` / :meth:`worker_crashed`;
tenants (via HTTP or directly) call :meth:`submit` / :meth:`status` /
:meth:`cancel` / :meth:`list_jobs`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional, Sequence

from repro.core.fault import FaultTracker, RetryPolicy
from repro.core.scheduler import MasterScheduler
from repro.core.strategies import StrategyKind, strategy_for
from repro.service.admission import AdmissionController, Decision, TenantQuota, Verdict
from repro.service.fairshare import FairShareScheduler
from repro.service.jobs import Job, JobSpec, JobState, outcome_digest
from repro.service.pool import Lease, WorkerPool
from repro.telemetry.metrics import MetricsRegistry, NULL_METRICS


class _TenantState:
    """Live per-tenant accounting the quotas are enforced against."""

    __slots__ = ("inflight_tasks", "inflight_bytes", "running_jobs", "parked_jobs")

    def __init__(self) -> None:
        self.inflight_tasks = 0
        self.inflight_bytes = 0.0
        self.running_jobs = 0
        self.parked_jobs = 0


class ControlPlaneService:
    """Admission + fair-share + quotas over a shared worker pool."""

    def __init__(
        self,
        worker_ids: Sequence[str],
        *,
        clock: Callable[[], float],
        metrics: MetricsRegistry | None = None,
        weights: dict[str, float] | None = None,
        quotas: dict[str, TenantQuota] | None = None,
        default_quota: TenantQuota | None = None,
        max_running_jobs: int = 16,
        max_parked_jobs: int = 64,
        retry_policy: RetryPolicy | None = None,
        isolate_after: int = 2,
    ) -> None:
        self._clock = clock
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.pool = WorkerPool(list(worker_ids), metrics=self.metrics)
        self.fair = FairShareScheduler(weights, metrics=self.metrics)
        self.admission = AdmissionController(
            max_running_jobs=max_running_jobs,
            max_parked_jobs=max_parked_jobs,
            default_quota=default_quota,
            quotas=quotas,
            metrics=self.metrics,
        )
        self.retry_policy = retry_policy or RetryPolicy.resilient()
        self.isolate_after = isolate_after
        self._jobs: dict[str, Job] = {}
        self._parked: deque[str] = deque()
        self._tenants: dict[str, _TenantState] = {}
        self._next_id = 1
        self._running = 0
        self._m_submitted = self.metrics.counter("service.jobs.submitted")
        self._m_completed = self.metrics.counter("service.jobs.completed")
        self._m_cancelled = self.metrics.counter("service.jobs.cancelled")
        self._m_leases = self.metrics.counter("service.leases.granted")
        self._m_stale = self.metrics.counter("service.leases.stale_reports")
        self._g_running = self.metrics.gauge("service.jobs.running")
        self._g_parked = self.metrics.gauge("service.jobs.parked")

    # -- tenant bookkeeping --------------------------------------------------
    def _tenant(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            state = self._tenants[tenant] = _TenantState()
        return state

    def _refresh_job_gauges(self) -> None:
        self._g_running.set(self._running)
        self._g_parked.set(len(self._parked))

    # -- submission ----------------------------------------------------------
    def submit(self, spec: JobSpec) -> dict[str, Any]:
        """Admit, park, or reject a submission.

        Returns a JSON-safe ticket: ``{"job_id", "verdict", "reason"}``
        with ``job_id`` ``None`` on rejection.
        """
        self._m_submitted.inc()
        tenant = self._tenant(spec.tenant)
        decision: Decision = self.admission.decide(
            spec,
            running_jobs=self._running,
            parked_jobs=len(self._parked),
            tenant_running=tenant.running_jobs,
            tenant_parked=tenant.parked_jobs,
        )
        if decision.verdict is Verdict.REJECT:
            return {
                "job_id": None,
                "verdict": decision.verdict.value,
                "reason": decision.reason,
            }
        job_id = str(self._next_id)
        self._next_id += 1
        view = self.metrics.view(f"job.{job_id}.")
        scheduler = MasterScheduler(
            spec.groups,
            strategy_for(StrategyKind.REAL_TIME),
            retry_policy=self.retry_policy,
            fault_tracker=FaultTracker(isolate_after=self.isolate_after),
            metrics=view,
            clock=self._clock,
        )
        scheduler.partition_among([])  # pull: marks everything ready
        now = self._clock()
        job = Job(
            id=job_id,
            spec=spec,
            scheduler=scheduler,
            state=JobState.PARKED,
            submitted_at=now,
        )
        self._jobs[job_id] = job
        if decision.verdict is Verdict.ADMIT:
            self._start(job)
        else:
            tenant.parked_jobs += 1
            self._parked.append(job_id)
        self._refresh_job_gauges()
        return {
            "job_id": job_id,
            "verdict": decision.verdict.value,
            "reason": decision.reason,
        }

    def _start(self, job: Job) -> None:
        job.state = JobState.RUNNING
        job.started_at = self._clock()
        self._tenant(job.tenant).running_jobs += 1
        self._running += 1
        if job.scheduler.done:
            # Empty workload: trivially complete, never holds a worker.
            self._finish(job)

    def _finish(self, job: Job) -> None:
        job.state = JobState.DONE
        job.finished_at = self._clock()
        self._tenant(job.tenant).running_jobs -= 1
        self._running -= 1
        self._m_completed.inc()
        self._promote_parked()
        self._refresh_job_gauges()

    def _promote_parked(self) -> None:
        """Start parked jobs that now fit, oldest first.

        A tenant at its own quota is skipped rather than blocking the
        head of the line; the scan repeats until a full pass promotes
        nothing, so one freed slot can start several small tenants.
        """
        while True:
            promoted = False
            for job_id in list(self._parked):
                job = self._jobs[job_id]
                tenant = self._tenant(job.tenant)
                if self.admission.may_promote(
                    job.tenant,
                    running_jobs=self._running,
                    tenant_running=tenant.running_jobs,
                ):
                    self._parked.remove(job_id)
                    tenant.parked_jobs -= 1
                    self._start(job)
                    promoted = True
                    break
            if not promoted:
                return

    # -- introspection -------------------------------------------------------
    def status(self, job_id: str) -> Optional[dict[str, Any]]:
        job = self._jobs.get(job_id)
        if job is None:
            return None
        status = job.status()
        status["fair_share_usage"] = self.fair.usage(job.tenant)
        if job.state in (JobState.DONE, JobState.CANCELLED):
            status["digest"] = outcome_digest(job)
        return status

    def list_jobs(self) -> list[dict[str, Any]]:
        return [
            {
                "job_id": job.id,
                "tenant": job.tenant,
                "name": job.spec.name,
                "state": job.state.value,
            }
            for job in self._jobs.values()
        ]

    def job(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    @property
    def idle(self) -> bool:
        """No runnable work and no outstanding leases."""
        if any(job.leases for job in self._jobs.values()):
            return False
        return not any(
            job.state is JobState.RUNNING and job.scheduler.has_queued_work
            for job in self._jobs.values()
        )

    # -- cancellation --------------------------------------------------------
    def cancel(self, job_id: str) -> bool:
        """Cancel a job; True if it was still active.

        Pending tasks are abandoned immediately.  Leases already out
        with workers drain normally — their reports are discarded, but
        the worker-seconds are still charged to the tenant (the
        capacity was consumed either way).
        """
        job = self._jobs.get(job_id)
        if job is None or not job.active:
            return False
        was_parked = job.state is JobState.PARKED
        job.scheduler.abandon_outstanding("cancelled by tenant")
        job.state = JobState.CANCELLED
        job.finished_at = self._clock()
        tenant = self._tenant(job.tenant)
        if was_parked:
            self._parked.remove(job_id)
            tenant.parked_jobs -= 1
        else:
            tenant.running_jobs -= 1
            self._running -= 1
        self._m_cancelled.inc()
        self._promote_parked()
        self._refresh_job_gauges()
        return True

    # -- the lease cycle -----------------------------------------------------
    def _candidates(self) -> list[tuple[str, str]]:
        """Jobs a worker could serve right now: running, work queued,
        tenant within task-count and byte quotas."""
        out: list[tuple[str, str]] = []
        for job in self._jobs.values():
            if job.state is not JobState.RUNNING:
                continue
            head = job.scheduler.peek_pending()
            if head is None:
                continue
            tenant = self._tenant(job.tenant)
            quota = self.admission.quota(job.tenant)
            if tenant.inflight_tasks >= quota.max_concurrent_tasks:
                continue
            if tenant.inflight_bytes + head.total_size > quota.max_inflight_bytes:
                continue
            out.append((job.tenant, job.id))
        return out

    def lease(self, worker_id: str) -> Optional[Lease]:
        """Lease one task of the fair-share winner to a free worker.

        ``None`` when nothing is runnable (every queue empty or every
        tenant quota-bound).
        """
        candidates = [
            (tenant, job_id)
            for tenant, job_id in self._candidates()
            # A worker error-isolated by one job is only dead *to that
            # job*; it must stay leasable to every other tenant.
            if not self._jobs[job_id].scheduler.faults.is_isolated(worker_id)
        ]
        picked = self.fair.pick(candidates)
        if picked is None:
            return None
        _tenant_name, job_id = picked
        job = self._jobs[job_id]
        if worker_id not in job.workers_seen:
            job.scheduler.register_worker(worker_id)
            job.workers_seen.add(worker_id)
        assignment = job.scheduler.next_for(worker_id)
        if assignment is None:
            return None
        lease = Lease(
            worker_id=worker_id,
            job_id=job_id,
            tenant=job.tenant,
            task_id=assignment.task_id,
            attempt=assignment.attempt,
            group=assignment.group,
            leased_at=self._clock(),
        )
        self.pool.acquire(lease)
        job.leases[(worker_id, lease.task_id)] = lease
        tenant = self._tenant(job.tenant)
        tenant.inflight_tasks += 1
        tenant.inflight_bytes += lease.size
        self._m_leases.inc()
        return lease

    def lease_free_workers(self) -> list[Lease]:
        """One assignment pass: lease every free worker that can serve
        something, in sorted worker order (deterministic)."""
        leases = []
        for worker_id in self.pool.free_workers():
            lease = self.lease(worker_id)
            if lease is not None:
                leases.append(lease)
        return leases

    def _release(self, lease: Lease, *, charge: bool) -> None:
        tenant = self._tenant(lease.tenant)
        tenant.inflight_tasks -= 1
        tenant.inflight_bytes -= lease.size
        if charge:
            self.fair.charge(lease.tenant, self._clock() - lease.leased_at)

    def complete(self, lease: Lease, *, ok: bool = True, error: str = "") -> bool:
        """A worker finished its leased task.

        Returns False (and counts a stale report) when the lease is no
        longer live — the worker was declared crashed first, the usual
        race in any distributed plane.  Cancelled jobs' leases release
        the worker and charge usage but never touch the scheduler: its
        accounting was already closed by :meth:`cancel`.
        """
        job = self._jobs[lease.job_id]
        if job.leases.get((lease.worker_id, lease.task_id)) is not lease:
            self._m_stale.inc()
            return False
        del job.leases[(lease.worker_id, lease.task_id)]
        self.pool.release(lease.worker_id)
        self._release(lease, charge=True)
        if job.state is JobState.RUNNING:
            if ok:
                job.scheduler.report_success(lease.worker_id, lease.task_id)
                job.completions.append(
                    [lease.task_id, lease.worker_id, lease.attempt, self._clock()]
                )
            else:
                job.scheduler.report_error(lease.worker_id, lease.task_id, error)
            if job.scheduler.done and not job.leases:
                self._finish(job)
        return True

    def worker_crashed(self, worker_id: str) -> dict[str, Any]:
        """A worker died.  Requeues its leased tasks into the owning
        jobs only, records the loss in every job that knew the worker
        (their fault trackers must reflect reality), and returns the
        replacement worker id minted by the shared rejoin policy.
        """
        lease, replacement = self.pool.crash(worker_id)
        requeued: list[int] = []
        if lease is not None:
            job = self._jobs[lease.job_id]
            del job.leases[(worker_id, lease.task_id)]
            # The tenant consumed the capacity until the crash.
            self._release(lease, charge=True)
        for job in self._jobs.values():
            if worker_id not in job.workers_seen:
                continue
            for assignment in job.scheduler.worker_lost(worker_id, "worker crashed"):
                requeued.append(assignment.task_id)
            if (
                job.state is JobState.RUNNING
                and job.scheduler.done
                and not job.leases
            ):
                # Retries exhausted by the loss: the job just resolved.
                self._finish(job)
        return {
            "worker_id": worker_id,
            "replacement": replacement,
            "owning_job": lease.job_id if lease is not None else None,
            "requeued_tasks": requeued,
        }
