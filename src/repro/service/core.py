"""The multi-tenant control plane: many jobs over one worker pool.

``ControlPlaneService`` is a pure state machine, like the scheduler it
multiplexes: the clock is injected and every decision is deterministic
given the call sequence, so the simulated driver can replay a load of
hundreds of tenants to byte-identical per-job digests, while the
asyncio driver runs the same logic on the real clock.

Division of labour per submission:

- :class:`~repro.service.admission.AdmissionController` decides
  admit/park/reject against pool and tenant quotas;
- each admitted job gets its own
  :class:`~repro.core.scheduler.MasterScheduler` (pull discipline),
  its own :class:`~repro.core.fault.FaultTracker`, and a
  ``job.<id>.``-prefixed metrics view — per-job signals without any
  cross-job gauge collisions;
- :class:`~repro.service.fairshare.FairShareScheduler` picks which
  job's queue the next free worker serves;
- :class:`~repro.service.pool.WorkerPool` tracks leases, so a worker
  crash touches exactly the owning job's tasks and nothing else.

Drivers call :meth:`lease` / :meth:`complete` / :meth:`worker_crashed`;
tenants (via HTTP or directly) call :meth:`submit` / :meth:`status` /
:meth:`cancel` / :meth:`list_jobs`.

Durability (§"kill the master"): with a journal attached, every
mutating call appends one CRC-guarded record — input *and* computed
outcome — to a write-ahead log (:mod:`repro.service.journal`).
:meth:`ControlPlaneService.recover` rebuilds a dead incarnation from
that log (latest snapshot + tail replay through the very same code
paths, under a clock that returns the recorded timestamps), bumps the
**service epoch**, and fences everything in flight: leases carry the
epoch that granted them, and a report bearing a stale epoch is dropped,
counted (``service.fenced_reports``), and its task requeued into the
owning job without consuming a retry attempt.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.core.fault import FaultTracker, RetryPolicy
from repro.core.scheduler import MasterScheduler
from repro.core.strategies import StrategyKind, strategy_for
from repro.errors import JournalError
from repro.service import journal as jrn
from repro.service.admission import AdmissionController, Decision, TenantQuota, Verdict
from repro.service.fairshare import FairShareScheduler
from repro.service.jobs import (
    Job,
    JobSpec,
    JobState,
    job_state_to_dict,
    outcome_digest,
)
from repro.service.pool import Lease, WorkerPool
from repro.telemetry.metrics import MetricsRegistry, NULL_METRICS


class _ReplayClock:
    """The recovery clock: returns whatever timestamp the journal
    record being replayed carried, so every rebuilt decision sees the
    same "now" the live service saw."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


@dataclass(frozen=True)
class RecoveryReport:
    """What one :meth:`ControlPlaneService.recover` call did."""

    epoch: int
    records_replayed: int
    snapshot_used: bool
    damage: Optional[jrn.JournalDamage]


class _TenantState:
    """Live per-tenant accounting the quotas are enforced against."""

    __slots__ = ("inflight_tasks", "inflight_bytes", "running_jobs", "parked_jobs")

    def __init__(self) -> None:
        self.inflight_tasks = 0
        self.inflight_bytes = 0.0
        self.running_jobs = 0
        self.parked_jobs = 0


class ControlPlaneService:
    """Admission + fair-share + quotas over a shared worker pool."""

    def __init__(
        self,
        worker_ids: Sequence[str],
        *,
        clock: Callable[[], float],
        metrics: MetricsRegistry | None = None,
        weights: dict[str, float] | None = None,
        quotas: dict[str, TenantQuota] | None = None,
        default_quota: TenantQuota | None = None,
        max_running_jobs: int = 16,
        max_parked_jobs: int = 64,
        retry_policy: RetryPolicy | None = None,
        isolate_after: int = 2,
        epoch: int = 1,
        journal: "jrn.JournalWriter | None" = None,
    ) -> None:
        self._clock = clock
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.pool = WorkerPool(list(worker_ids), metrics=self.metrics)
        self.fair = FairShareScheduler(weights, metrics=self.metrics)
        self.admission = AdmissionController(
            max_running_jobs=max_running_jobs,
            max_parked_jobs=max_parked_jobs,
            default_quota=default_quota,
            quotas=quotas,
            metrics=self.metrics,
        )
        self.retry_policy = retry_policy or RetryPolicy.resilient()
        self.isolate_after = isolate_after
        self._jobs: dict[str, Job] = {}
        self._parked: deque[str] = deque()
        self._tenants: dict[str, _TenantState] = {}
        self._next_id = 1
        self._running = 0
        self._m_submitted = self.metrics.counter("service.jobs.submitted")
        self._m_completed = self.metrics.counter("service.jobs.completed")
        self._m_cancelled = self.metrics.counter("service.jobs.cancelled")
        self._m_leases = self.metrics.counter("service.leases.granted")
        self._m_stale = self.metrics.counter("service.leases.stale_reports")
        self._g_running = self.metrics.gauge("service.jobs.running")
        self._g_parked = self.metrics.gauge("service.jobs.parked")
        self._m_fenced = self.metrics.counter("service.fenced_reports")
        self._m_recoveries = self.metrics.counter("service.recoveries")
        self._g_epoch = self.metrics.gauge("service.epoch")
        self.epoch = int(epoch)
        self._g_epoch.set(self.epoch)
        self.last_recovery: Optional[RecoveryReport] = None
        self._journal = journal
        if journal is not None:
            self._journal_append(
                jrn.OPEN, epoch=self.epoch, workers=sorted(worker_ids)
            )

    # -- clock & journal -----------------------------------------------------
    def _now(self) -> float:
        # Indirection (not a bound alias) so recover() can swap
        # ``_clock`` from the replay clock to the live one after the
        # schedulers have already captured ``self._now``.
        return self._clock()

    def _journal_append(self, kind: str, **fields: Any) -> None:
        """Record one state-changing event; compact when the tail since
        the last snapshot has grown past the writer's threshold."""
        if self._journal is None:
            return
        self._journal.append(kind, self._now(), **fields)
        if self._journal.compaction_due:
            self._journal.compact(
                self.capture_state(), epoch=self.epoch, t=self._now()
            )

    # -- tenant bookkeeping --------------------------------------------------
    def _tenant(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            state = self._tenants[tenant] = _TenantState()
        return state

    def _refresh_job_gauges(self) -> None:
        self._g_running.set(self._running)
        self._g_parked.set(len(self._parked))

    # -- submission ----------------------------------------------------------
    def submit(self, spec: JobSpec) -> dict[str, Any]:
        """Admit, park, or reject a submission.

        Returns a JSON-safe ticket: ``{"job_id", "verdict", "reason"}``
        with ``job_id`` ``None`` on rejection.
        """
        self._m_submitted.inc()
        tenant = self._tenant(spec.tenant)
        decision: Decision = self.admission.decide(
            spec,
            running_jobs=self._running,
            parked_jobs=len(self._parked),
            tenant_running=tenant.running_jobs,
            tenant_parked=tenant.parked_jobs,
        )
        if decision.verdict is Verdict.REJECT:
            self._journal_append(
                jrn.SUBMIT,
                spec=spec.to_state(),
                job=None,
                verdict=decision.verdict.value,
            )
            return {
                "job_id": None,
                "verdict": decision.verdict.value,
                "reason": decision.reason,
            }
        job_id = str(self._next_id)
        self._next_id += 1
        view = self.metrics.view(f"job.{job_id}.")
        scheduler = MasterScheduler(
            spec.groups,
            strategy_for(StrategyKind.REAL_TIME),
            retry_policy=self.retry_policy,
            fault_tracker=FaultTracker(isolate_after=self.isolate_after),
            metrics=view,
            clock=self._now,
        )
        scheduler.partition_among([])  # pull: marks everything ready
        now = self._now()
        job = Job(
            id=job_id,
            spec=spec,
            scheduler=scheduler,
            state=JobState.PARKED,
            submitted_at=now,
        )
        self._jobs[job_id] = job
        if decision.verdict is Verdict.ADMIT:
            self._start(job)
        else:
            tenant.parked_jobs += 1
            self._parked.append(job_id)
        self._refresh_job_gauges()
        self._journal_append(
            jrn.SUBMIT,
            spec=spec.to_state(),
            job=job_id,
            verdict=decision.verdict.value,
        )
        return {
            "job_id": job_id,
            "verdict": decision.verdict.value,
            "reason": decision.reason,
        }

    def _start(self, job: Job) -> None:
        job.state = JobState.RUNNING
        job.started_at = self._now()
        self._tenant(job.tenant).running_jobs += 1
        self._running += 1
        if job.scheduler.done:
            # Empty workload: trivially complete, never holds a worker.
            self._finish(job)

    def _finish(self, job: Job) -> None:
        job.state = JobState.DONE
        job.finished_at = self._now()
        self._tenant(job.tenant).running_jobs -= 1
        self._running -= 1
        self._m_completed.inc()
        self._promote_parked()
        self._refresh_job_gauges()

    def _promote_parked(self) -> None:
        """Start parked jobs that now fit, oldest first.

        A tenant at its own quota is skipped rather than blocking the
        head of the line; the scan repeats until a full pass promotes
        nothing, so one freed slot can start several small tenants.
        """
        while True:
            promoted = False
            for job_id in list(self._parked):
                job = self._jobs[job_id]
                tenant = self._tenant(job.tenant)
                if self.admission.may_promote(
                    job.tenant,
                    running_jobs=self._running,
                    tenant_running=tenant.running_jobs,
                ):
                    self._parked.remove(job_id)
                    tenant.parked_jobs -= 1
                    self._start(job)
                    promoted = True
                    break
            if not promoted:
                return

    # -- introspection -------------------------------------------------------
    def status(self, job_id: str) -> Optional[dict[str, Any]]:
        job = self._jobs.get(job_id)
        if job is None:
            return None
        status = job.status()
        status["fair_share_usage"] = self.fair.usage(job.tenant)
        if job.state in (JobState.DONE, JobState.CANCELLED):
            status["digest"] = outcome_digest(job)
        return status

    def list_jobs(self) -> list[dict[str, Any]]:
        return [
            {
                "job_id": job.id,
                "tenant": job.tenant,
                "name": job.spec.name,
                "state": job.state.value,
            }
            for job in self._jobs.values()
        ]

    def job(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    @property
    def idle(self) -> bool:
        """No runnable work and no outstanding leases."""
        if any(job.leases for job in self._jobs.values()):
            return False
        return not any(
            job.state is JobState.RUNNING and job.scheduler.has_queued_work
            for job in self._jobs.values()
        )

    # -- cancellation --------------------------------------------------------
    def cancel(self, job_id: str) -> bool:
        """Cancel a job; True if it was still active.

        Pending tasks are abandoned immediately.  Leases already out
        with workers drain normally — their reports are discarded, but
        the worker-seconds are still charged to the tenant (the
        capacity was consumed either way).
        """
        job = self._jobs.get(job_id)
        if job is None or not job.active:
            return False
        was_parked = job.state is JobState.PARKED
        job.scheduler.abandon_outstanding("cancelled by tenant")
        job.state = JobState.CANCELLED
        job.finished_at = self._now()
        tenant = self._tenant(job.tenant)
        if was_parked:
            self._parked.remove(job_id)
            tenant.parked_jobs -= 1
        else:
            tenant.running_jobs -= 1
            self._running -= 1
        self._m_cancelled.inc()
        self._promote_parked()
        self._refresh_job_gauges()
        self._journal_append(jrn.CANCEL, job=job_id)
        return True

    # -- the lease cycle -----------------------------------------------------
    def _candidates(self) -> list[tuple[str, str]]:
        """Jobs a worker could serve right now: running, work queued,
        tenant within task-count and byte quotas."""
        out: list[tuple[str, str]] = []
        for job in self._jobs.values():
            if job.state is not JobState.RUNNING:
                continue
            head = job.scheduler.peek_pending()
            if head is None:
                continue
            tenant = self._tenant(job.tenant)
            quota = self.admission.quota(job.tenant)
            if tenant.inflight_tasks >= quota.max_concurrent_tasks:
                continue
            if tenant.inflight_bytes + head.total_size > quota.max_inflight_bytes:
                continue
            out.append((job.tenant, job.id))
        return out

    def lease(self, worker_id: str) -> Optional[Lease]:
        """Lease one task of the fair-share winner to a free worker.

        ``None`` when nothing is runnable (every queue empty or every
        tenant quota-bound).
        """
        candidates = [
            (tenant, job_id)
            for tenant, job_id in self._candidates()
            # A worker error-isolated by one job is only dead *to that
            # job*; it must stay leasable to every other tenant.
            if not self._jobs[job_id].scheduler.faults.is_isolated(worker_id)
        ]
        picked = self.fair.pick(candidates)
        if picked is None:
            return None
        _tenant_name, job_id = picked
        job = self._jobs[job_id]
        if worker_id not in job.workers_seen:
            job.scheduler.register_worker(worker_id)
            job.workers_seen.add(worker_id)
        assignment = job.scheduler.next_for(worker_id)
        if assignment is None:
            return None
        lease = Lease(
            worker_id=worker_id,
            job_id=job_id,
            tenant=job.tenant,
            task_id=assignment.task_id,
            attempt=assignment.attempt,
            group=assignment.group,
            leased_at=self._now(),
            epoch=self.epoch,
        )
        self.pool.acquire(lease)
        job.leases[(worker_id, lease.task_id)] = lease
        tenant = self._tenant(job.tenant)
        tenant.inflight_tasks += 1
        tenant.inflight_bytes += lease.size
        self._m_leases.inc()
        self._journal_append(
            jrn.LEASE,
            worker=worker_id,
            job=job_id,
            task=lease.task_id,
            attempt=lease.attempt,
        )
        return lease

    def lease_free_workers(self) -> list[Lease]:
        """One assignment pass: lease every free worker that can serve
        something, in sorted worker order (deterministic)."""
        leases = []
        for worker_id in self.pool.free_workers():
            lease = self.lease(worker_id)
            if lease is not None:
                leases.append(lease)
        return leases

    def _release(self, lease: Lease, *, charge: bool) -> None:
        tenant = self._tenant(lease.tenant)
        tenant.inflight_tasks -= 1
        tenant.inflight_bytes -= lease.size
        if charge:
            # Clamped: a recovered incarnation's clock only promises
            # monotonicity within itself, so a fenced lease from a
            # previous life can carry a timestamp past "now".
            self.fair.charge(
                lease.tenant, max(0.0, self._now() - lease.leased_at)
            )

    def complete(self, lease: Lease, *, ok: bool = True, error: str = "") -> bool:
        """A worker finished its leased task.

        Returns False (and counts a stale report) when the lease is no
        longer live — the worker was declared crashed first, the usual
        race in any distributed plane.  Cancelled jobs' leases release
        the worker and charge usage but never touch the scheduler: its
        accounting was already closed by :meth:`cancel`.

        A lease minted by a *previous incarnation* (stale epoch) is
        fenced instead: dropped, counted, and its task requeued into
        the owning job — see :meth:`_fence_report`.
        """
        if lease.epoch != self.epoch:
            self._fence_report(
                lease.worker_id, lease.job_id, lease.task_id, lease.attempt
            )
            return False
        job = self._jobs[lease.job_id]
        if job.leases.get((lease.worker_id, lease.task_id)) is not lease:
            self._m_stale.inc()
            return False
        del job.leases[(lease.worker_id, lease.task_id)]
        self.pool.release(lease.worker_id)
        self._release(lease, charge=True)
        if job.state is JobState.RUNNING:
            if ok:
                job.scheduler.report_success(lease.worker_id, lease.task_id)
                job.completions.append(
                    [lease.task_id, lease.worker_id, lease.attempt, self._now()]
                )
            else:
                job.scheduler.report_error(lease.worker_id, lease.task_id, error)
            if job.scheduler.done and not job.leases:
                self._finish(job)
        self._journal_append(
            jrn.COMPLETE,
            worker=lease.worker_id,
            job=lease.job_id,
            task=lease.task_id,
            attempt=lease.attempt,
            ok=ok,
            error=error,
        )
        return True

    def _fence_report(
        self, worker_id: str, job_id: str, task_id: int, attempt: int
    ) -> bool:
        """Handle a report carrying a previous incarnation's lease.

        The stale lease object itself is worthless (its incarnation is
        dead), but recovery rebuilt a *live* twin of it from the
        journal.  Fencing releases that twin — worker back to the pool,
        tenant in-flight accounting closed, worker-seconds charged —
        and requeues the task into the owning job **without consuming a
        retry attempt** (the master failed, not the task).  Returns
        True when a live twin existed; False when there was nothing on
        the books (already fenced, or the worker was declared crashed
        in the meantime), which is dropped like any stale report.
        """
        self._m_fenced.inc()
        job = self._jobs.get(job_id)
        if job is None:
            return False
        live = job.leases.get((worker_id, task_id))
        if live is None or live.epoch == self.epoch:
            return False
        del job.leases[(worker_id, task_id)]
        self.pool.release(worker_id)
        self._release(live, charge=True)
        if job.state is JobState.RUNNING and job.scheduler.has_in_flight(
            worker_id, task_id
        ):
            job.scheduler.rescind(worker_id, task_id)
        if job.state is JobState.RUNNING and job.scheduler.done and not job.leases:
            self._finish(job)
        self._journal_append(
            jrn.FENCED,
            worker=worker_id,
            job=job_id,
            task=task_id,
            attempt=attempt,
        )
        return True

    def worker_crashed(self, worker_id: str) -> dict[str, Any]:
        """A worker died.  Requeues its leased tasks into the owning
        jobs only, records the loss in every job that knew the worker
        (their fault trackers must reflect reality), and returns the
        replacement worker id minted by the shared rejoin policy.
        """
        lease, replacement = self.pool.crash(worker_id)
        requeued: list[int] = []
        if lease is not None:
            job = self._jobs[lease.job_id]
            del job.leases[(worker_id, lease.task_id)]
            # The tenant consumed the capacity until the crash.
            self._release(lease, charge=True)
        for job in self._jobs.values():
            if worker_id not in job.workers_seen:
                continue
            for assignment in job.scheduler.worker_lost(worker_id, "worker crashed"):
                requeued.append(assignment.task_id)
            if (
                job.state is JobState.RUNNING
                and job.scheduler.done
                and not job.leases
            ):
                # Retries exhausted by the loss: the job just resolved.
                self._finish(job)
        self._journal_append(
            jrn.CRASH,
            worker=worker_id,
            replacement=replacement,
            owning=lease.job_id if lease is not None else None,
            requeued=requeued,
        )
        return {
            "worker_id": worker_id,
            "replacement": replacement,
            "owning_job": lease.job_id if lease is not None else None,
            "requeued_tasks": requeued,
        }

    # -- durability: snapshot, restore, replay -------------------------------
    def capture_state(self) -> dict[str, Any]:
        """The full JSON-safe service state, as written into journal
        snapshots.  Ordered containers serialize as lists — canonical
        JSON sorts object keys, and job ids sort "10" < "2" as strings.

        Metrics are deliberately absent: counters describe one
        incarnation's observed traffic, not durable state, and restart
        from zero in a recovered service.
        """
        jobs = []
        for job in self._jobs.values():
            jstate = job_state_to_dict(job)
            jstate["faults"] = job.scheduler.faults.to_state()
            jstate["leases"] = [
                lease.to_state() for lease in job.leases.values()
            ]
            jobs.append(jstate)
        return {
            "v": 1,
            "epoch": self.epoch,
            "next_id": self._next_id,
            "running": self._running,
            "parked": list(self._parked),
            "tenants": [
                {
                    "tenant": name,
                    "inflight_tasks": t.inflight_tasks,
                    "inflight_bytes": t.inflight_bytes,
                    "running_jobs": t.running_jobs,
                    "parked_jobs": t.parked_jobs,
                }
                for name, t in self._tenants.items()
            ],
            "fair": self.fair.to_state(),
            "pool": self.pool.to_state(),
            "jobs": jobs,
        }

    def _restore_job(
        self, jstate: dict, leases: dict[tuple[str, str, int], Lease]
    ) -> Job:
        spec = JobSpec.from_state(jstate["spec"])
        job_id = str(jstate["id"])
        scheduler = MasterScheduler.from_state(
            jstate["scheduler"],
            spec.groups,
            strategy_for(StrategyKind.REAL_TIME),
            retry_policy=self.retry_policy,
            fault_tracker=FaultTracker.from_state(jstate["faults"]),
            metrics=self.metrics.view(f"job.{job_id}."),
            clock=self._now,
        )
        job = Job(
            id=job_id,
            spec=spec,
            scheduler=scheduler,
            state=JobState(jstate["state"]),
            submitted_at=jstate["submitted_at"],
            started_at=jstate["started_at"],
            finished_at=jstate["finished_at"],
            workers_seen=set(jstate["workers_seen"]),
            completions=[list(row) for row in jstate["completions"]],
        )
        by_index = {g.index: g for g in spec.groups}
        for lstate in jstate["leases"]:
            lease = Lease.from_state(lstate, by_index[int(lstate["task"])])
            job.leases[(lease.worker_id, lease.task_id)] = lease
            leases[(lease.worker_id, lease.job_id, lease.task_id)] = lease
        return job

    def _restore_state(self, state: dict) -> None:
        if state.get("v") != 1:
            raise JournalError(f"unsupported snapshot version {state.get('v')!r}")
        self.epoch = int(state["epoch"])
        self._g_epoch.set(self.epoch)
        self._next_id = int(state["next_id"])
        self._running = int(state["running"])
        self._parked = deque(str(j) for j in state["parked"])
        self._tenants = {}
        for entry in state["tenants"]:
            tenant = self._tenant(entry["tenant"])
            tenant.inflight_tasks = int(entry["inflight_tasks"])
            tenant.inflight_bytes = float(entry["inflight_bytes"])
            tenant.running_jobs = int(entry["running_jobs"])
            tenant.parked_jobs = int(entry["parked_jobs"])
        self.fair.restore_state(state["fair"])
        leases: dict[tuple[str, str, int], Lease] = {}
        self._jobs = {}
        for jstate in state["jobs"]:
            job = self._restore_job(jstate, leases)
            self._jobs[job.id] = job
        self.pool.restore_state(state["pool"], leases)
        self._refresh_job_gauges()

    def _replay_record(self, rec: dict) -> None:
        """Re-execute one journal record through the live code paths
        and verify the recorded outcome — replay is not a second
        implementation of the state machine, it *is* the state machine,
        so any divergence means the journal and the code disagree and
        recovery must not pretend otherwise.
        """
        kind = rec["k"]
        if kind == jrn.OPEN:
            self.epoch = int(rec["epoch"])
            self._g_epoch.set(self.epoch)
            return
        if kind == jrn.SUBMIT:
            ticket = self.submit(JobSpec.from_state(rec["spec"]))
            if ticket["job_id"] != rec["job"] or ticket["verdict"] != rec["verdict"]:
                raise JournalError(
                    f"replay divergence: submit produced {ticket['job_id']!r}/"
                    f"{ticket['verdict']} but journal says {rec['job']!r}/{rec['verdict']}"
                )
            return
        if kind == jrn.LEASE:
            lease = self.lease(rec["worker"])
            if (
                lease is None
                or lease.job_id != rec["job"]
                or lease.task_id != int(rec["task"])
                or lease.attempt != int(rec["attempt"])
            ):
                raise JournalError(
                    f"replay divergence: lease for {rec['worker']!r} produced "
                    f"{lease!r} but journal says job {rec['job']!r} task "
                    f"{rec['task']} attempt {rec['attempt']}"
                )
            return
        if kind == jrn.COMPLETE:
            job = self._jobs.get(rec["job"])
            live = (
                job.leases.get((rec["worker"], int(rec["task"])))
                if job is not None
                else None
            )
            if live is None or live.attempt != int(rec["attempt"]):
                raise JournalError(
                    f"replay divergence: no live lease for completion of "
                    f"job {rec['job']!r} task {rec['task']} on {rec['worker']!r}"
                )
            self.complete(live, ok=bool(rec["ok"]), error=rec["error"])
            return
        if kind == jrn.CANCEL:
            if not self.cancel(rec["job"]):
                raise JournalError(
                    f"replay divergence: cancel of job {rec['job']!r} was a no-op"
                )
            return
        if kind == jrn.CRASH:
            report = self.worker_crashed(rec["worker"])
            if report["replacement"] != rec["replacement"]:
                raise JournalError(
                    f"replay divergence: crash of {rec['worker']!r} minted "
                    f"{report['replacement']!r}, journal says {rec['replacement']!r}"
                )
            return
        if kind == jrn.FENCED:
            self._fence_report(
                rec["worker"], rec["job"], int(rec["task"]), int(rec["attempt"])
            )
            return
        if kind == jrn.SNAPSHOT:
            raise JournalError("snapshot record in replay tail")
        raise JournalError(f"unknown record kind {kind!r} in replay")

    @classmethod
    def recover(
        cls,
        store: "jrn.JournalStore",
        *,
        clock: Callable[[], float],
        metrics: MetricsRegistry | None = None,
        snapshot_every: Optional[int] = None,
        **config: Any,
    ) -> "ControlPlaneService":
        """Rebuild a dead incarnation from its journal and fence it.

        ``config`` takes the same deployment keywords as the
        constructor (weights, quotas, retry policy, …) — configuration
        is the operator's to re-supply; the journal holds only state.
        The recovered service runs at ``max journal epoch + 1``, so
        every lease the previous incarnation left in flight is stale on
        arrival and gets fenced by :meth:`complete`.

        A damaged tail (torn write, bit flip) is truncated at the last
        valid record — counted in ``service.journal.records_dropped`` —
        and recovery proceeds from what survived.
        """
        data = store.read()
        image = jrn.read_journal(data)
        reg = metrics if metrics is not None else NULL_METRICS
        if image.damage is not None:
            store.replace(data[: image.valid_bytes])
            reg.counter("service.journal.records_dropped").inc()
        replay_clock = _ReplayClock()
        records = list(image.records)
        if image.snapshot is not None:
            svc = cls._from_snapshot(
                image.snapshot, clock=replay_clock, metrics=metrics, **config
            )
        else:
            if not records or records[0]["k"] != jrn.OPEN:
                raise JournalError("journal holds no snapshot and no open record")
            first = records[0]
            replay_clock.now = first["t"]
            svc = cls(
                list(first["workers"]),
                clock=replay_clock,
                metrics=metrics,
                epoch=int(first["epoch"]),
                **config,
            )
            records = records[1:]
        for rec in records:
            replay_clock.now = rec["t"]
            svc._replay_record(rec)
        # Fence: the new incarnation outranks every lease in the log.
        svc._clock = clock
        svc.epoch = image.epoch + 1
        svc._g_epoch.set(svc.epoch)
        svc._journal = jrn.JournalWriter(
            store, snapshot_every=snapshot_every, metrics=reg
        )
        svc._journal_append(
            jrn.OPEN, epoch=svc.epoch, workers=sorted(svc.pool.free_workers())
        )
        svc._m_recoveries.inc()
        svc.last_recovery = RecoveryReport(
            epoch=svc.epoch,
            records_replayed=len(records),
            snapshot_used=image.snapshot is not None,
            damage=image.damage,
        )
        return svc

    @classmethod
    def _from_snapshot(
        cls,
        state: dict,
        *,
        clock: Callable[[], float],
        metrics: MetricsRegistry | None = None,
        **config: Any,
    ) -> "ControlPlaneService":
        pool_state = state["pool"]
        worker_ids = list(pool_state["free"]) + [
            w for w, _job, _task in pool_state["busy"]
        ]
        svc = cls(worker_ids, clock=clock, metrics=metrics, **config)
        svc._restore_state(state)
        return svc
