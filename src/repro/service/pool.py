"""The shared worker pool: leases, returns, and crash replacement.

Workers belong to the *service*, not to any job — the inversion that
turns the single-run engines into a multi-tenant plane.  A job only
ever holds a worker through a :class:`Lease` (one task, one worker),
so time-slicing across tenants falls out of lease granularity, and a
crash's blast radius is exactly the leases the dead worker held.

Crash replacement mints a fresh id through the shared rejoin policy
(:mod:`repro.core.identity`), so the replacement can register cleanly
into every job's scheduler — including jobs that knew the dead worker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.identity import RejoinIdMinter
from repro.data.partition import TaskGroup
from repro.errors import ProtocolError
from repro.telemetry.metrics import MetricsRegistry, NULL_METRICS


@dataclass(frozen=True)
class Lease:
    """One worker executing one task of one job.

    ``epoch`` is the service incarnation that granted the lease.  A
    recovered control plane bumps its epoch, so any lease minted by a
    previous incarnation identifies itself as stale the moment its
    holder reports — the fencing token of classic lease-based designs.
    """

    worker_id: str
    job_id: str
    tenant: str
    task_id: int
    attempt: int
    group: TaskGroup
    leased_at: float
    epoch: int = 1

    @property
    def size(self) -> float:
        return float(self.group.total_size)

    def to_state(self) -> dict:
        """JSON-safe form (the group rebinds by task id on restore)."""
        return {
            "worker": self.worker_id,
            "job": self.job_id,
            "tenant": self.tenant,
            "task": self.task_id,
            "attempt": self.attempt,
            "leased_at": self.leased_at,
            "epoch": self.epoch,
        }

    @classmethod
    def from_state(cls, state: dict, group: TaskGroup) -> "Lease":
        return cls(
            worker_id=state["worker"],
            job_id=state["job"],
            tenant=state["tenant"],
            task_id=int(state["task"]),
            attempt=int(state["attempt"]),
            group=group,
            leased_at=float(state["leased_at"]),
            epoch=int(state["epoch"]),
        )


class WorkerPool:
    """Free/busy bookkeeping over the service's workers.

    Free workers are kept in sorted order so "first free worker" is a
    deterministic choice for the simulated plane.
    """

    def __init__(
        self,
        worker_ids: "list[str] | tuple[str, ...]",
        *,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if not worker_ids:
            raise ProtocolError("worker pool needs at least one worker")
        if len(set(worker_ids)) != len(worker_ids):
            raise ProtocolError("duplicate worker ids in pool")
        self._free: list[str] = sorted(worker_ids)
        self._busy: dict[str, Lease] = {}
        self._minter = RejoinIdMinter()
        metrics = metrics if metrics is not None else NULL_METRICS
        self._g_free = metrics.gauge("service.pool.free")
        self._g_busy = metrics.gauge("service.pool.busy")
        self._m_crashed = metrics.counter("service.pool.crashed")
        self._refresh()

    def _refresh(self) -> None:
        self._g_free.set(len(self._free))
        self._g_busy.set(len(self._busy))

    @property
    def size(self) -> int:
        return len(self._free) + len(self._busy)

    def free_workers(self) -> tuple[str, ...]:
        return tuple(self._free)

    def lease_of(self, worker_id: str) -> Optional[Lease]:
        return self._busy.get(worker_id)

    def acquire(self, lease: Lease) -> None:
        if lease.worker_id not in self._free:
            raise ProtocolError(f"worker {lease.worker_id!r} is not free")
        self._free.remove(lease.worker_id)
        self._busy[lease.worker_id] = lease
        self._refresh()

    def release(self, worker_id: str) -> Lease:
        try:
            lease = self._busy.pop(worker_id)
        except KeyError:
            raise ProtocolError(f"worker {worker_id!r} holds no lease") from None
        # Insert keeping sorted order (pool sizes are small; clarity
        # over a bisect here).
        self._free.append(worker_id)
        self._free.sort()
        self._refresh()
        return lease

    def crash(self, worker_id: str) -> tuple[Optional[Lease], str]:
        """Remove a dead worker; return its lease (if any) and the
        freshly minted replacement id, already registered as free."""
        lease = self._busy.pop(worker_id, None)
        if lease is None:
            if worker_id not in self._free:
                raise ProtocolError(f"unknown worker {worker_id!r}")
            self._free.remove(worker_id)
        replacement = self._minter.mint(worker_id)
        self._free.append(replacement)
        self._free.sort()
        self._m_crashed.inc()
        self._refresh()
        return lease, replacement

    # -- durability ---------------------------------------------------------
    def to_state(self) -> dict:
        """JSON-safe snapshot.  Busy leases serialize as references —
        the service re-links them to the very lease objects it restores
        into the owning jobs, so pool and job keep sharing one object
        per lease, exactly as in a live service."""
        return {
            "free": list(self._free),
            "busy": [[w, lease.job_id, lease.task_id] for w, lease in self._busy.items()],
            "generations": self._minter.to_state(),
        }

    def restore_state(self, state: dict, leases: dict[tuple[str, str, int], Lease]) -> None:
        """Rebuild free/busy/minter from a snapshot.

        ``leases`` maps ``(worker, job, task)`` to the restored lease
        objects (built by the service while restoring its jobs).
        """
        self._free = list(state["free"])
        self._busy = {
            w: leases[(w, job_id, int(task_id))]
            for w, job_id, task_id in state["busy"]
        }
        self._minter = RejoinIdMinter.from_state(state["generations"])
        self._refresh()
