"""File-backed journal store (the real drivers' durability).

Kept out of :mod:`repro.service.journal` on purpose: the journal codec
and replay path are a frieda-audit taint root (they run under the
deterministic harness), while this module is unapologetically real
I/O — append-with-fsync for records, write-temp-then-rename for
compaction so a crash mid-compact leaves either the old journal or the
new one, never a torn file.
"""

from __future__ import annotations

import os


class FileJournalStore:
    """Durable :class:`~repro.service.journal.JournalStore` on one file.

    ``sync=True`` (default) fsyncs every append — the write-ahead
    guarantee that an acknowledged event survives a process kill.
    Turning it off trades that for throughput (the OS flushes when it
    pleases), which is only appropriate for tests and demos.
    """

    def __init__(self, path: str, *, sync: bool = True) -> None:
        self.path = str(path)
        self._sync = sync

    def read(self) -> bytes:
        try:
            with open(self.path, "rb") as fh:
                return fh.read()
        except FileNotFoundError:
            return b""

    def append(self, data: bytes) -> None:
        with open(self.path, "ab") as fh:
            fh.write(data)
            fh.flush()
            if self._sync:
                os.fsync(fh.fileno())

    def replace(self, data: bytes) -> None:
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            if self._sync:
                os.fsync(fh.fileno())
        os.replace(tmp, self.path)

    @property
    def size(self) -> int:
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0
