"""Asyncio driver: the service core on the real clock.

The same :class:`~repro.service.core.ControlPlaneService` state machine
the simulated harness replays deterministically, driven here by real
elapsed time: each lease becomes an asyncio task that sleeps for the
job's (scaled) cost and then reports completion.  This is what the
HTTP front end runs on.  Everything touches the service from the one
event loop, so no locking is needed — the single-threaded twin of the
TCP master's design.
"""

from __future__ import annotations

# frieda: allow-file[wall-clock] -- real execution driver: the service
# clock is genuinely elapsed time here, mirroring runtime/local.py.

import asyncio
import time
from typing import Any, Callable, Optional

from repro.service.admission import TenantQuota
from repro.service.core import ControlPlaneService
from repro.service.jobs import JobSpec
from repro.service.journal import JournalStore, JournalWriter
from repro.service.pool import Lease
from repro.telemetry.metrics import MetricsRegistry


class AsyncServiceRuntime:
    """Owns a service instance plus the asyncio tasks executing leases.

    ``time_scale`` compresses job cost into wall time (cost 1.0 with
    scale 0.01 → a 10 ms sleep); ``duration_fn`` overrides the model
    entirely.  Workers here are logical slots — the execution "work"
    is the scaled sleep, standing in for a real engine adapter.

    ``journal_store`` attaches a write-ahead journal (typically a
    :class:`~repro.service.journalfs.FileJournalStore`), making the
    runtime crash-consistent: :meth:`recovered` rebuilds a new runtime
    from the store after a kill, fencing whatever the dead incarnation
    left in flight.
    """

    def __init__(
        self,
        num_workers: int = 4,
        *,
        time_scale: float = 0.01,
        duration_fn: Optional[Callable[[Lease, JobSpec], float]] = None,
        metrics: MetricsRegistry | None = None,
        weights: dict[str, float] | None = None,
        quotas: dict[str, TenantQuota] | None = None,
        default_quota: TenantQuota | None = None,
        max_running_jobs: int = 16,
        max_parked_jobs: int = 64,
        journal_store: JournalStore | None = None,
        snapshot_every: Optional[int] = None,
        _service: Optional[ControlPlaneService] = None,
    ) -> None:
        if _service is not None:
            self.service = _service
        else:
            journal = None
            if journal_store is not None:
                journal = JournalWriter(
                    journal_store, snapshot_every=snapshot_every, metrics=metrics
                )
            t0 = time.monotonic()
            self.service = ControlPlaneService(
                [f"aio:{i}" for i in range(num_workers)],
                clock=lambda: time.monotonic() - t0,
                metrics=metrics,
                weights=weights,
                quotas=quotas,
                default_quota=default_quota,
                max_running_jobs=max_running_jobs,
                max_parked_jobs=max_parked_jobs,
                journal=journal,
            )
        self._time_scale = time_scale
        self._duration_fn = duration_fn
        self._specs: dict[str, JobSpec] = {}
        self._tasks: set[asyncio.Task] = set()

    @classmethod
    def recovered(
        cls,
        journal_store: JournalStore,
        *,
        time_scale: float = 0.01,
        duration_fn: Optional[Callable[[Lease, JobSpec], float]] = None,
        metrics: MetricsRegistry | None = None,
        snapshot_every: Optional[int] = None,
        **config: Any,
    ) -> "AsyncServiceRuntime":
        """A new incarnation rebuilt from a dead one's journal.

        The recovered clock restarts at zero — virtual time only has
        to be monotonic within an incarnation, and replay drove the
        rebuild on the journal's recorded timestamps.
        """
        t0 = time.monotonic()
        service = ControlPlaneService.recover(
            journal_store,
            clock=lambda: time.monotonic() - t0,
            metrics=metrics,
            snapshot_every=snapshot_every,
            **config,
        )
        runtime = cls(
            time_scale=time_scale,
            duration_fn=duration_fn,
            _service=service,
        )
        for row in service.list_jobs():
            job = service.job(row["job_id"])
            runtime._specs[job.id] = job.spec
        return runtime

    def _duration(self, lease: Lease) -> float:
        spec = self._specs[lease.job_id]
        if self._duration_fn is not None:
            return self._duration_fn(lease, spec)
        if spec.kind == "transfer":
            return self._time_scale * spec.cost * (lease.size / (1024.0 * 1024.0))
        return self._time_scale * spec.cost

    def _pump(self) -> None:
        """Assign every free worker; each lease runs as its own task."""
        for lease in self.service.lease_free_workers():
            task = asyncio.get_running_loop().create_task(self._run_lease(lease))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def _run_lease(self, lease: Lease) -> None:
        await asyncio.sleep(self._duration(lease))
        self.service.complete(lease)
        self._pump()

    # -- tenant-facing surface ----------------------------------------------
    def submit(self, spec: JobSpec) -> dict[str, Any]:
        ticket = self.service.submit(spec)
        if ticket["job_id"] is not None:
            self._specs[ticket["job_id"]] = spec
        self._pump()
        return ticket

    def cancel(self, job_id: str) -> bool:
        cancelled = self.service.cancel(job_id)
        if cancelled:
            self._pump()
        return cancelled

    def status(self, job_id: str) -> Optional[dict[str, Any]]:
        return self.service.status(job_id)

    def list_jobs(self) -> list[dict[str, Any]]:
        return self.service.list_jobs()

    async def drain(self) -> None:
        """Wait until every outstanding lease has resolved."""
        while self._tasks:
            await asyncio.gather(*list(self._tasks))
