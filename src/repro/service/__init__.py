"""Multi-tenant control plane: many jobs over one shared worker pool.

The pure state machine lives in :mod:`repro.service.core`
(:class:`ControlPlaneService` — admission, weighted fair-share,
per-tenant quotas, worker leases).  Drivers: the deterministic
discrete-event harness in :mod:`repro.service.sim` (the CI acceptance
path), and the asyncio runtime in :mod:`repro.service.aio` backing the
HTTP/JSON front end in :mod:`repro.service.http`.

Import note: :mod:`~repro.service.core`, :mod:`~repro.service.sim`,
and this package root stay wall-clock free; only the drivers under
``aio``/``http`` touch real time, and nothing here imports them —
that is what keeps the simulated path taint-clean under frieda-audit.
"""

from repro.service.admission import AdmissionController, Decision, TenantQuota, Verdict
from repro.service.core import ControlPlaneService
from repro.service.fairshare import FairShareScheduler
from repro.service.jobs import Job, JobSpec, JobState, outcome_digest
from repro.service.pool import Lease, WorkerPool
from repro.service.sim import (
    ServiceLoadResult,
    ServiceSimulation,
    run_service_load,
    synthetic_tenants,
)

__all__ = [
    "AdmissionController",
    "ControlPlaneService",
    "Decision",
    "FairShareScheduler",
    "Job",
    "JobSpec",
    "JobState",
    "Lease",
    "ServiceLoadResult",
    "ServiceSimulation",
    "TenantQuota",
    "Verdict",
    "WorkerPool",
    "outcome_digest",
    "run_service_load",
    "synthetic_tenants",
]
