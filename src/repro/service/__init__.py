"""Multi-tenant control plane: many jobs over one shared worker pool.

The pure state machine lives in :mod:`repro.service.core`
(:class:`ControlPlaneService` — admission, weighted fair-share,
per-tenant quotas, worker leases).  Drivers: the deterministic
discrete-event harness in :mod:`repro.service.sim` (the CI acceptance
path), and the asyncio runtime in :mod:`repro.service.aio` backing the
HTTP/JSON front end in :mod:`repro.service.http`.

Import note: :mod:`~repro.service.core`, :mod:`~repro.service.sim`,
and this package root stay wall-clock free; only the drivers under
``aio``/``http`` touch real time, and nothing here imports them —
that is what keeps the simulated path taint-clean under frieda-audit.

Durability: every state-changing service event appends to a
write-ahead journal (:mod:`repro.service.journal`, pure codec;
:mod:`repro.service.journalfs`, the file-backed store), and
:meth:`ControlPlaneService.recover` rebuilds a killed control plane
from it — replaying through the live code paths and fencing the dead
incarnation's leases via the service epoch.
"""

from repro.service.admission import AdmissionController, Decision, TenantQuota, Verdict
from repro.service.core import ControlPlaneService, RecoveryReport
from repro.service.fairshare import FairShareScheduler
from repro.service.jobs import Job, JobSpec, JobState, outcome_digest, task_outcome_digest
from repro.service.journal import (
    JournalDamage,
    JournalImage,
    JournalStore,
    JournalWriter,
    MemoryJournalStore,
    read_journal,
)
from repro.service.pool import Lease, WorkerPool
from repro.service.sim import (
    ServiceLoadResult,
    ServiceSimulation,
    run_service_load,
    synthetic_tenants,
)

__all__ = [
    "AdmissionController",
    "ControlPlaneService",
    "Decision",
    "FairShareScheduler",
    "Job",
    "JobSpec",
    "JobState",
    "JournalDamage",
    "JournalImage",
    "JournalStore",
    "JournalWriter",
    "Lease",
    "MemoryJournalStore",
    "RecoveryReport",
    "ServiceLoadResult",
    "ServiceSimulation",
    "TenantQuota",
    "Verdict",
    "WorkerPool",
    "outcome_digest",
    "read_journal",
    "run_service_load",
    "synthetic_tenants",
    "task_outcome_digest",
]
