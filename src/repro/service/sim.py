"""Deterministic service-mode harness on the simulated plane.

Drives a :class:`~repro.service.core.ControlPlaneService` with a
discrete-event loop on virtual time: hundreds of synthetic tenants
submit jobs, free workers are leased through fair-share, completions
and scripted worker crashes fire as events.  Everything is derived
from one root seed (:mod:`repro.util.seeding` streams — no global
RNG, no wall clock), so the same seed replays to byte-identical
per-job outcome digests — the service's CI acceptance contract.
"""

from __future__ import annotations

import hashlib
import heapq
import json
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.service.admission import TenantQuota
from repro.service.core import ControlPlaneService
from repro.service.jobs import JobSpec, outcome_digest, task_outcome_digest
from repro.service.journal import JournalStore, JournalWriter, MemoryJournalStore
from repro.service.pool import Lease
from repro.telemetry.metrics import MetricsRegistry
from repro.util.seeding import make_rng


def synthetic_tenants(
    count: int,
    *,
    seed: int,
    tasks_per_job: tuple[int, int] = (2, 4),
    task_bytes: tuple[int, int] = (64 * 1024, 1024 * 1024),
) -> list[JobSpec]:
    """One job per synthetic tenant, alternating compute- and
    transfer-heavy profiles, sizes drawn from seeded streams."""
    specs: list[JobSpec] = []
    for i in range(count):
        rng = make_rng(seed, "service.tenant", i)
        n_tasks = int(rng.integers(tasks_per_job[0], tasks_per_job[1] + 1))
        sizes = [
            int(rng.integers(task_bytes[0], task_bytes[1] + 1))
            for _ in range(n_tasks)
        ]
        kind = "compute" if i % 2 == 0 else "transfer"
        cost = float(0.5 + rng.random())
        specs.append(
            JobSpec.from_sizes(
                f"tenant-{i:03d}", f"load-{i:03d}", sizes, kind=kind, cost=cost
            )
        )
    return specs


def task_duration(lease: Lease, spec: JobSpec, *, seed: int) -> float:
    """Virtual seconds one leased task takes.

    Compute-heavy tasks cost ``spec.cost`` regardless of input size;
    transfer-heavy tasks scale with bytes (1 MiB ≈ ``spec.cost``
    seconds).  A ±20% jitter stream keyed by (job, task, attempt)
    keeps durations varied but exactly reproducible.
    """
    rng = make_rng(
        seed, "service.duration", lease.job_id, lease.task_id, lease.attempt
    )
    if spec.kind == "transfer":
        base = spec.cost * (lease.size / (1024.0 * 1024.0))
    else:
        base = spec.cost
    return max(1e-6, base * (0.8 + 0.4 * float(rng.random())))


@dataclass
class ServiceLoadResult:
    """What one simulated service run produced."""

    tickets: list[dict[str, Any]]
    admitted: int
    parked: int
    rejected: int
    makespan: float
    #: job_id → {tenant, state, summary, makespan, digest}
    per_job: dict[str, dict[str, Any]]
    #: sha256 over every per-job digest — the one-line reproducibility
    #: witness for the whole load.
    digest: str = ""
    #: sha256 over every per-job *task outcome* digest: what each job
    #: produced, independent of placement and timing.  This is the
    #: crash-transparency witness — a killed-and-recovered run must
    #: match the uninterrupted same-seed run byte for byte here, even
    #: though fenced reruns legitimately shift the timing digest.
    outcome_digest: str = ""
    crash_reports: list[dict[str, Any]] = field(default_factory=list)
    #: Scripted master kills the run survived (each one a journal
    #: recovery and an epoch bump).
    recoveries: int = 0

    def __post_init__(self) -> None:
        canonical = json.dumps(
            {job_id: info["digest"] for job_id, info in self.per_job.items()},
            sort_keys=True,
            separators=(",", ":"),
        )
        self.digest = hashlib.sha256(canonical.encode()).hexdigest()
        outcomes = json.dumps(
            {job_id: info["outcome"] for job_id, info in self.per_job.items()},
            sort_keys=True,
            separators=(",", ":"),
        )
        self.outcome_digest = hashlib.sha256(outcomes.encode()).hexdigest()


class ServiceSimulation:
    """Discrete-event driver: submit events, completions, crashes.

    ``crash_script`` is a sequence of ``(virtual_time, worker_id)``
    pairs; each kills that worker at that instant — its leases requeue
    into their owning jobs and a minted replacement joins the pool.

    ``master_kill_script`` is a sequence of virtual times at which the
    *control plane itself* dies: the service object is discarded and a
    new incarnation is rebuilt from the write-ahead journal
    (``journal_store``, a :class:`MemoryJournalStore` by default when
    kills are scripted).  Completion events already in the heap still
    carry the dead incarnation's leases — exactly the late reports a
    real recovered master receives — and get fenced by the epoch
    check, requeued, and rerun on the same attempt number, so the
    per-job task outcomes stay byte-identical to an uninterrupted run.
    """

    _SUBMIT, _CRASH, _COMPLETE, _KILL = 0, 1, 2, 3

    def __init__(
        self,
        specs: Sequence[JobSpec],
        *,
        num_workers: int = 8,
        seed: int = 0,
        arrival_spacing: float = 0.0,
        crash_script: Sequence[tuple[float, str]] = (),
        master_kill_script: Sequence[float] = (),
        journal_store: JournalStore | None = None,
        snapshot_every: Optional[int] = None,
        weights: dict[str, float] | None = None,
        quotas: dict[str, TenantQuota] | None = None,
        default_quota: TenantQuota | None = None,
        max_running_jobs: int = 16,
        max_parked_jobs: int = 10_000,
        metrics: MetricsRegistry | None = None,
        fail_tasks: frozenset[tuple[str, int]] = frozenset(),
        trace_usage: bool = False,
    ) -> None:
        self._specs = list(specs)
        self._seed = seed
        self._now = 0.0
        self._seq = 0
        self._events: list[tuple[float, int, int, Any]] = []
        self._metrics = metrics
        if journal_store is None and master_kill_script:
            journal_store = MemoryJournalStore()
        self._store = journal_store
        self._snapshot_every = snapshot_every
        # Deployment configuration the operator re-supplies at every
        # recovery (the journal holds state, never config).
        self._service_config = dict(
            weights=weights,
            quotas=quotas,
            default_quota=default_quota,
            max_running_jobs=max_running_jobs,
            max_parked_jobs=max_parked_jobs,
        )
        journal = None
        if journal_store is not None:
            journal = JournalWriter(
                journal_store, snapshot_every=snapshot_every, metrics=metrics
            )
        self.service = ControlPlaneService(
            [f"sim:{i:03d}" for i in range(num_workers)],
            clock=lambda: self._now,
            metrics=metrics,
            journal=journal,
            **self._service_config,
        )
        self.recoveries = 0
        self._spec_of: dict[str, JobSpec] = {}
        self._fail_tasks = fail_tasks
        self._trace_usage = trace_usage
        #: ``(virtual_time, {tenant: worker_seconds})`` after each
        #: completion, when ``trace_usage`` — how the fair-share tests
        #: observe delivered shares *during* contention (the end state
        #: always equals total demand, which proves nothing).
        self.usage_trace: list[tuple[float, dict[str, float]]] = []
        for i, spec in enumerate(self._specs):
            self._push(i * arrival_spacing, self._SUBMIT, spec)
        for when, worker_id in crash_script:
            self._push(when, self._CRASH, worker_id)
        for when in master_kill_script:
            if self._store is None:
                raise ValueError("master_kill_script requires a journal_store")
            self._push(when, self._KILL, None)

    def _kill_master(self) -> None:
        """Drop the service on the floor and recover from the journal.

        Nothing is flushed or handed over — the old object is simply
        abandoned mid-load, which is the whole point of the chaos
        harness.  The recovered incarnation re-learns the job specs
        from its own rebuilt jobs.
        """
        self.service = ControlPlaneService.recover(
            self._store,
            clock=lambda: self._now,
            metrics=self._metrics,
            snapshot_every=self._snapshot_every,
            **self._service_config,
        )
        self._spec_of = {
            job.id: job.spec
            for row in self.service.list_jobs()
            for job in (self.service.job(row["job_id"]),)
        }
        self.recoveries += 1

    def _push(self, when: float, kind: int, payload: Any) -> None:
        heapq.heappush(self._events, (when, self._seq, kind, payload))
        self._seq += 1

    def _assign(self) -> None:
        for lease in self.service.lease_free_workers():
            spec = self._spec_of[lease.job_id]
            duration = task_duration(lease, spec, seed=self._seed)
            self._push(self._now + duration, self._COMPLETE, lease)

    def run(self) -> ServiceLoadResult:
        tickets: list[dict[str, Any]] = []
        crash_reports: list[dict[str, Any]] = []
        while self._events:
            when, _seq, kind, payload = heapq.heappop(self._events)
            self._now = when
            if kind == self._SUBMIT:
                ticket = self.service.submit(payload)
                tickets.append(ticket)
                if ticket["job_id"] is not None:
                    self._spec_of[ticket["job_id"]] = payload
            elif kind == self._CRASH:
                lease = self.service.pool.lease_of(payload)
                if lease is not None or payload in self.service.pool.free_workers():
                    crash_reports.append(self.service.worker_crashed(payload))
            elif kind == self._KILL:
                self._kill_master()
            else:
                lease = payload
                ok = (lease.job_id, lease.task_id) not in self._fail_tasks or (
                    lease.attempt > 1
                )
                self.service.complete(
                    lease, ok=ok, error="" if ok else "injected task failure"
                )
                if self._trace_usage:
                    tenants = sorted({s.tenant for s in self._specs})
                    self.usage_trace.append(
                        (
                            self._now,
                            {t: self.service.fair.usage(t) for t in tenants},
                        )
                    )
            self._assign()
        per_job: dict[str, dict[str, Any]] = {}
        for row in self.service.list_jobs():
            job = self.service.job(row["job_id"])
            makespan: Optional[float] = None
            if job.started_at is not None and job.finished_at is not None:
                makespan = job.finished_at - job.started_at
            per_job[job.id] = {
                "tenant": job.tenant,
                "state": job.state.value,
                "summary": job.scheduler.summary(),
                "makespan": makespan,
                "digest": outcome_digest(job),
                "outcome": task_outcome_digest(job),
            }
        return ServiceLoadResult(
            tickets=tickets,
            admitted=sum(1 for t in tickets if t["verdict"] == "admit"),
            parked=sum(1 for t in tickets if t["verdict"] == "park"),
            rejected=sum(1 for t in tickets if t["verdict"] == "reject"),
            makespan=self._now,
            per_job=per_job,
            crash_reports=crash_reports,
            recoveries=self.recoveries,
        )


def run_service_load(
    num_tenants: int = 120,
    *,
    seed: int = 0,
    num_workers: int = 12,
    **kwargs: Any,
) -> ServiceLoadResult:
    """The acceptance experiment: ``num_tenants`` synthetic tenants
    through one service on the simulated plane."""
    specs = synthetic_tenants(num_tenants, seed=seed)
    sim = ServiceSimulation(
        specs, num_workers=num_workers, seed=seed, **kwargs
    )
    return sim.run()
