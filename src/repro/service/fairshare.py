"""Weighted fair-share across tenants.

Classic max-min-style fair sharing on one accumulated quantity: each
tenant's *usage* is the worker-seconds its leases have consumed, and
the scheduler always serves the runnable job whose tenant has the
smallest ``usage / weight``.  A tenant with weight 2 therefore
converges to twice the delivered worker-seconds of a weight-1 tenant
under contention — regardless of whether it spends them on compute or
on transfer — and an idle tenant's first lease always wins (usage 0).

Ties break on ``(tenant, job key)`` so the choice is deterministic for
the simulated plane's digest contract.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional

from repro.telemetry.metrics import MetricsRegistry, NULL_METRICS


class FairShareScheduler:
    """Tracks per-tenant usage and picks the next job to serve."""

    def __init__(
        self,
        weights: dict[str, float] | None = None,
        *,
        default_weight: float = 1.0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if default_weight <= 0:
            raise ValueError("default_weight must be positive")
        for tenant, weight in (weights or {}).items():
            if weight <= 0:
                raise ValueError(f"weight for tenant {tenant!r} must be positive")
        self._weights = dict(weights or {})
        self._default_weight = default_weight
        self._usage: dict[str, float] = {}
        self._metrics = metrics if metrics is not None else NULL_METRICS

    def weight(self, tenant: str) -> float:
        return self._weights.get(tenant, self._default_weight)

    def usage(self, tenant: str) -> float:
        """Accumulated worker-seconds charged to a tenant."""
        return self._usage.get(tenant, 0.0)

    def normalized(self, tenant: str) -> float:
        return self.usage(tenant) / self.weight(tenant)

    def charge(self, tenant: str, seconds: float) -> None:
        """Account worker-seconds to a tenant (lease release/crash)."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative seconds ({seconds})")
        self._usage[tenant] = self._usage.get(tenant, 0.0) + seconds
        self._metrics.gauge("service.share.usage_seconds", tenant=tenant).set(
            self._usage[tenant]
        )

    # -- durability ---------------------------------------------------------
    def to_state(self) -> dict:
        """JSON-safe snapshot: usage only (weights are deployment
        configuration the owner re-supplies at recovery)."""
        return {"usage": dict(self._usage)}

    def restore_state(self, state: dict) -> None:
        self._usage = {str(t): float(s) for t, s in state["usage"].items()}
        for tenant, seconds in self._usage.items():
            self._metrics.gauge(
                "service.share.usage_seconds", tenant=tenant
            ).set(seconds)

    def pick(
        self, candidates: Iterable[tuple[str, Hashable]]
    ) -> Optional[tuple[str, Hashable]]:
        """The ``(tenant, job_key)`` with the least normalized usage.

        ``candidates`` are jobs that could be served right now (have
        pending work and are within quota); ``None`` when empty.
        """
        best = None
        best_rank = None
        for tenant, key in candidates:
            rank = (self.normalized(tenant), tenant, key)
            if best_rank is None or rank < best_rank:
                best_rank = rank
                best = (tenant, key)
        return best
