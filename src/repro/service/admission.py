"""Admission control: decide a submission's fate before it holds state.

Three verdicts, in the spirit of classic admission-controlled queueing
systems: ADMIT (run now), PARK (hold in the backlog until capacity
frees), REJECT (never runnable, or the backlog itself is full — the
caller should back off).  Rejection is deliberate load shedding: a
bounded backlog keeps the service's memory and the tenants' latency
promises honest under overload.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.service.jobs import JobSpec
from repro.telemetry.metrics import MetricsRegistry, NULL_METRICS


class Verdict(str, Enum):
    ADMIT = "admit"
    PARK = "park"
    REJECT = "reject"


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant resource limits, enforced at admission and lease time.

    ``max_concurrent_tasks`` bounds how many workers a tenant can hold
    at once (across all its jobs); ``max_inflight_bytes`` bounds the
    bytes those leases may cover; the job-count limits bound how many
    jobs a tenant may have running or parked.
    """

    max_concurrent_tasks: int = 8
    max_inflight_bytes: float = float("inf")
    max_running_jobs: int = 4
    max_parked_jobs: int = 16


@dataclass(frozen=True)
class Decision:
    verdict: Verdict
    reason: str


class AdmissionController:
    """Stateless policy over the service's live counts.

    The service asks on every submit and whenever capacity frees (to
    promote parked jobs); the controller never mutates anything except
    its verdict counters.
    """

    def __init__(
        self,
        *,
        max_running_jobs: int = 16,
        max_parked_jobs: int = 64,
        default_quota: TenantQuota | None = None,
        quotas: dict[str, TenantQuota] | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.max_running_jobs = max_running_jobs
        self.max_parked_jobs = max_parked_jobs
        self.default_quota = default_quota or TenantQuota()
        self._quotas = dict(quotas or {})
        metrics = metrics if metrics is not None else NULL_METRICS
        self._m_admitted = metrics.counter("service.admission.admitted")
        self._m_parked = metrics.counter("service.admission.parked")
        self._m_rejected = metrics.counter("service.admission.rejected")

    def quota(self, tenant: str) -> TenantQuota:
        return self._quotas.get(tenant, self.default_quota)

    def decide(
        self,
        spec: JobSpec,
        *,
        running_jobs: int,
        parked_jobs: int,
        tenant_running: int,
        tenant_parked: int,
    ) -> Decision:
        """Verdict for one submission given the service's live counts."""
        quota = self.quota(spec.tenant)
        oversized = [
            g.index for g in spec.groups if g.total_size > quota.max_inflight_bytes
        ]
        if oversized:
            # No lease could ever cover this task: parking it would
            # wedge the backlog, so shed it now with a precise reason.
            self._m_rejected.inc()
            return Decision(
                Verdict.REJECT,
                f"task {oversized[0]} exceeds tenant byte quota "
                f"({quota.max_inflight_bytes:g})",
            )
        if (
            running_jobs < self.max_running_jobs
            and tenant_running < quota.max_running_jobs
        ):
            self._m_admitted.inc()
            return Decision(Verdict.ADMIT, "capacity available")
        if parked_jobs >= self.max_parked_jobs:
            self._m_rejected.inc()
            return Decision(
                Verdict.REJECT, f"service backlog full ({self.max_parked_jobs} parked)"
            )
        if tenant_parked >= quota.max_parked_jobs:
            self._m_rejected.inc()
            return Decision(
                Verdict.REJECT,
                f"tenant backlog full ({quota.max_parked_jobs} parked)",
            )
        self._m_parked.inc()
        if tenant_running >= quota.max_running_jobs:
            return Decision(
                Verdict.PARK,
                f"tenant at max running jobs ({quota.max_running_jobs})",
            )
        return Decision(
            Verdict.PARK, f"service at max running jobs ({self.max_running_jobs})"
        )

    def may_promote(
        self, tenant: str, *, running_jobs: int, tenant_running: int
    ) -> bool:
        """Whether a parked job of ``tenant`` could start right now."""
        quota = self.quota(tenant)
        return (
            running_jobs < self.max_running_jobs
            and tenant_running < quota.max_running_jobs
        )
