"""Compute-cost models for simulated task execution.

A compute model answers: *how many CPU-seconds does this task group
cost on one core?* Costs are deterministic per task index (derived
RNG streams), so strategies are compared on identical workloads — the
same task costs the same seconds under pre-partitioned and real-time
scheduling, only the schedule differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.data.partition import TaskGroup
from repro.util.seeding import derive_seed


class ComputeModel(Protocol):
    """Anything that prices a task group in single-core seconds."""

    def cost(self, group: TaskGroup) -> float:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class FixedComputeModel:
    """Every task costs the same (the idealized homogeneous workload)."""

    seconds_per_task: float

    def cost(self, group: TaskGroup) -> float:
        return self.seconds_per_task


@dataclass(frozen=True)
class PerByteComputeModel:
    """Cost scales with input bytes plus fixed startup overhead.

    Models the ALS image comparison: similarity over two images is
    linear in pixels.
    """

    seconds_per_byte: float
    startup_seconds: float = 0.0

    def cost(self, group: TaskGroup) -> float:
        return self.startup_seconds + self.seconds_per_byte * group.total_size


@dataclass(frozen=True)
class StochasticComputeModel:
    """Lognormal per-task cost with a given mean and CV.

    Models BLAST: §IV-B — "every task might have different computation
    cost than the other based on the match of the search". The draw is
    keyed on the task index, so every strategy sees the same costs.
    """

    mean_seconds: float
    cv: float
    seed: int = 0

    def cost(self, group: TaskGroup) -> float:
        if self.cv <= 0:
            return self.mean_seconds
        rng = np.random.default_rng(derive_seed(self.seed, "task-cost", group.index))
        sigma2 = np.log(1.0 + self.cv**2)
        mu = np.log(self.mean_seconds) - sigma2 / 2.0
        return float(rng.lognormal(mu, np.sqrt(sigma2)))
