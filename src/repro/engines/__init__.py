"""Execution engines that drive the FRIEDA core logic.

- :mod:`repro.engines.simulated` — runs controller/master/workers on
  the discrete-event cloud substrate; all experiment reproductions use
  this engine.
- The *real* engines (threads, asyncio TCP) live in
  :mod:`repro.runtime` since they execute actual programs.
"""

from repro.engines.compute import (
    ComputeModel,
    FixedComputeModel,
    PerByteComputeModel,
    StochasticComputeModel,
)
from repro.engines.simulated import SimulatedEngine, SimulationOptions

__all__ = [
    "ComputeModel",
    "FixedComputeModel",
    "PerByteComputeModel",
    "StochasticComputeModel",
    "SimulatedEngine",
    "SimulationOptions",
]
