"""FRIEDA on the simulated cloud: the engine behind every experiment.

This engine wires the core logic (controller → master scheduler →
worker loops) to the substrate (:mod:`repro.cloud`): control messages
cost link round-trips, file movement is flow-network transfers under a
protocol model, task execution occupies VM cores for the compute
model's seconds, failures interrupt worker processes mid-task.

Faithfulness notes (what maps to what in the paper):

- Fig 4 sequence: controller "starts" the master (START_MASTER latency),
  plans workers, workers register (RTT), then request data / receive
  data / execute / report in a loop until NO_MORE_DATA.
- §II-C phase separation: staged strategies run a *data transfer phase*
  (a :class:`~repro.transfer.staging.StagingPlan` of scp sessions) to
  completion before any execution; real-time interleaves them.
- §II-F laziness: in real-time mode the master "doesn't transfer a file
  until a worker asks for it" — transfers happen inside the worker's
  request cycle.
- §V-A isolation: a failed worker's clones report loss; the scheduler
  stops handing that node data; without the retry extension its tasks
  are recorded as lost, not rerun.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.cloud.billing import BillingModel, PriceSheet
from repro.cloud.cluster import ClusterSpec, Provisioner, VirtualCluster
from repro.cloud.failures import (
    FailureInjector,
    FailureSchedule,
    LinkFaultInjector,
    LinkFaultSchedule,
    TransferFaultModel,
    is_silent_cause,
)
from repro.cloud.instance import InstanceType, VirtualMachine
from repro.cloud.storage import StorageTier
from repro.core.controller import ControllerLogic
from repro.core.elasticity import AutoScalePolicy, ElasticityManager
from repro.core.commands import CommandTemplate
from repro.core.fault import RetryPolicy
from repro.core.monitoring import HeartbeatConfig, HeartbeatMonitor, Liveness
from repro.core.framework import RunOutcome, TaskRecord
from repro.core.messages import WorkerFailed
from repro.core.scheduler import Assignment, MasterScheduler
from repro.core.strategies import StrategyKind
from repro.core.worker import WorkerLogic
from repro.data.files import DataFile, Dataset
from repro.data.partition import PartitionScheme
from repro.engines.compute import ComputeModel
from repro.errors import ConfigurationError, SimulationError
from repro.runtime.faults import ANY_TASK
from repro.sim.kernel import Environment, Event, Interrupt
from repro.sim.monitor import Monitor, MonitorSink
from repro.telemetry.slo import SloEvaluator, SloProbe
from repro.telemetry.spans import SpanHandle, Telemetry
from repro.transfer.base import TransferProtocol, TransferRequest, TransferResult
from repro.transfer.retry import TransferRetryPolicy
from repro.transfer.scp import ScpModel
from repro.transfer.staging import StagingPlan, TransferService


@dataclass(frozen=True)
class ElasticAction:
    """One scripted elasticity step: add or remove a node at a time.

    ``snapshot`` (remove only) captures the node's task outputs to the
    master before the VM disappears — §V-A: "if resources are going to
    disappear, snapshots of the data need to be captured".
    """

    time: float
    action: str  # "add" | "remove"
    node_id: str = ""  # for remove; ignored for add
    instance_type: Optional[InstanceType] = None
    boot_delay: float = 0.0
    snapshot: bool = False


@dataclass(frozen=True)
class SimulationOptions:
    """Engine-level knobs shared across runs."""

    protocol: TransferProtocol = field(default_factory=ScpModel)
    #: Control-plane round-trip (request/assign, register, status).
    control_rtt: float = 0.002
    #: Concurrent scp sessions during an up-front staging phase.
    staging_concurrency: int = 4
    #: Charge local-disk reads of the inputs before each execution.
    include_disk_io: bool = True
    enable_billing: bool = True
    #: Custom prices (None = PriceSheet defaults: hourly billing).
    price_sheet: Optional["PriceSheet"] = None
    #: Real-time pipelining depth (extension): with depth 1 a worker
    #: clone requests and transfers its next task's inputs while the
    #: current task computes (double buffering). 0 is paper-faithful —
    #: "the master sends the data and asks the workers to execute" with
    #: the next request only after completion.
    prefetch_depth: int = 0
    #: Speculative execution (extension): an idle worker whose queue is
    #: empty re-runs an in-flight task from another worker; the first
    #: completion wins. MapReduce-style straggler mitigation, only
    #: meaningful for the pull-based (real-time) strategy.
    speculative: bool = False
    #: Liveness layer (extension, §V-A future work): > 0 makes every
    #: worker node emit a heartbeat at this period and the master run a
    #: sweep at the same period, so *silent* node deaths are detected
    #: (declared dead after ``heartbeat_config.dead_after`` of silence)
    #: and their in-flight tasks requeued/recorded. 0 disables the layer
    #: entirely (paper-faithful: only broken connections report loss).
    heartbeat_interval: float = 0.0
    heartbeat_config: Optional[HeartbeatConfig] = None
    #: Auto-scale recommendations (extension): consulted when fault
    #: isolation shrinks the cluster, so the run's event log records
    #: what a transparent-elasticity controller would have done.
    autoscale_policy: Optional[AutoScalePolicy] = None
    #: Data-movement retry (extension; default paper-faithful: one
    #: attempt, no timeout, a lost transfer costs the whole task).
    transfer_retry: TransferRetryPolicy = field(
        default_factory=TransferRetryPolicy.paper_faithful
    )
    #: Declarative SLO probes evaluated over the live metrics registry
    #: at ``sample_interval`` ticks (edge-triggered ``slo.breach`` /
    #: ``slo.recovered`` events) plus once when the run resolves.
    slo_probes: tuple["SloProbe", ...] = ()
    #: Queue-depth / SLO sampling period in sim seconds. 0 picks a
    #: default: the heartbeat interval when liveness is on, else 1.0.
    #: Sampling runs only when probes are set or telemetry records.
    sample_interval: float = 0.0
    seed: int = 0


class _FetchFailed(Exception):
    """Internal: a task's input transfers exhausted their retries."""

    def __init__(self, files: Sequence[str]):
        super().__init__(f"missing inputs: {', '.join(files)}")
        self.files = tuple(files)


class SimulatedEngine:
    """Runs FRIEDA workloads on a simulated virtual cluster."""

    def __init__(self, cluster_spec: ClusterSpec | None = None, options: SimulationOptions | None = None):
        self.spec = cluster_spec or ClusterSpec()
        self.options = options or SimulationOptions()

    # ------------------------------------------------------------------
    def run(
        self,
        dataset: Dataset,
        *,
        compute_model: ComputeModel,
        command: CommandTemplate | None = None,
        strategy: StrategyKind | str = StrategyKind.REAL_TIME,
        grouping: PartitionScheme | str = PartitionScheme.SINGLE,
        grouping_options: dict | None = None,
        common_files: Sequence[DataFile] = (),
        multicore: bool = True,
        retry_policy: RetryPolicy | None = None,
        isolate_after: int = 1,
        failure_schedule: FailureSchedule | None = None,
        failure_mttf: float | None = None,
        failure_silent_fraction: float = 0.0,
        crash_worker_on_task: dict[str, int] | None = None,
        hang_worker_on_task: dict[str, int] | None = None,
        link_fault_schedule: LinkFaultSchedule | None = None,
        link_fault_mtbf: float | None = None,
        link_fault_outage: float = 30.0,
        transfer_fault_rate: float = 0.0,
        elasticity: Sequence[ElasticAction] = (),
        static_chunking: str = "contiguous",
        master_failure_at: float | None = None,
        master_recovery_time: float | None = None,
        output_bytes_per_task: float = 0.0,
        data_source: str = "master",
        max_sim_time: float = 10_000_000.0,
        telemetry: Telemetry | None = None,
    ) -> RunOutcome:
        """Execute one workload; returns the :class:`RunOutcome`.

        ``common_files`` are staged to every worker node before
        execution under every non-local strategy (the BLAST database
        pattern); under pre-partitioned-local they start on the nodes.

        Extensions (all default to the paper-faithful behaviour):

        - ``static_chunking``: ``"contiguous"`` | ``"lpt_size"`` |
          ``"lpt_cost"`` (see :meth:`MasterScheduler.partition_among`),
        - ``master_failure_at`` (+ optional ``master_recovery_time``):
          the §V-A single-point-of-failure scenario — the master dies at
          the given time; with a recovery time the controller restarts
          it and data service resumes, without one the run terminates
          with whatever completed,
        - ``output_bytes_per_task``: task outputs left on worker disks
          (§II-D "left behind on the workers"), snapshot-able on
          elastic removal,
        - ``data_source``: ``"master"`` (default — the master sits
          "close to the source of the input data", §II-B) or
          ``"network_storage"`` — inputs live on the shared iSCSI-style
          tier and workers pull through its contended server uplink
          (the networked-disk configuration of §III-A; requires
          ``ClusterSpec.network_storage_bytes > 0``),
        - ``failure_silent_fraction``: with ``failure_mttf``, that
          fraction of VM deaths are *silent* (no broken connection —
          only the heartbeat sweep can detect them; requires
          ``SimulationOptions.heartbeat_interval > 0``),
        - ``link_fault_schedule`` / ``link_fault_mtbf`` (+
          ``link_fault_outage`` mean seconds): link degradation and
          blackout windows on the worker/master NIC links,
        - ``transfer_fault_rate``: probability each transfer attempt
          dies mid-stream (retried or surfaced per
          ``SimulationOptions.transfer_retry``).

        ``telemetry`` plugs a :class:`~repro.telemetry.Telemetry` hub
        into the run: the engine binds it to the sim clock and routes
        the same span/event stream into this run's monitor, so one hub
        shared across a sweep records every run (the ``--trace`` path).
        Without it the engine builds a private hub whose only consumer
        is the monitor, which keeps disabled-telemetry runs at the old
        cost.
        """
        env = Environment()
        monitor = Monitor()
        run = _SimulatedRun(
            env=env,
            monitor=monitor,
            engine=self,
            dataset=dataset,
            compute_model=compute_model,
            command=command,
            strategy=strategy,
            grouping=grouping,
            grouping_options=grouping_options or {},
            common_files=tuple(common_files),
            multicore=multicore,
            retry_policy=retry_policy,
            isolate_after=isolate_after,
            failure_schedule=failure_schedule,
            failure_mttf=failure_mttf,
            failure_silent_fraction=failure_silent_fraction,
            crash_worker_on_task=crash_worker_on_task,
            hang_worker_on_task=hang_worker_on_task,
            link_fault_schedule=link_fault_schedule,
            link_fault_mtbf=link_fault_mtbf,
            link_fault_outage=link_fault_outage,
            transfer_fault_rate=transfer_fault_rate,
            elasticity=tuple(elasticity),
            static_chunking=static_chunking,
            master_failure_at=master_failure_at,
            master_recovery_time=master_recovery_time,
            output_bytes_per_task=output_bytes_per_task,
            data_source=data_source,
            telemetry=telemetry,
        )
        done = env.process(run.main(), name="frieda-run")
        env.run(until=done)
        if env.now > max_sim_time:
            raise SimulationError(f"simulation exceeded {max_sim_time} simulated seconds")
        return run.outcome()


class _SimulatedRun:
    """One run's mutable state and processes (internal)."""

    def __init__(
        self,
        *,
        env: Environment,
        monitor: Monitor,
        engine: SimulatedEngine,
        dataset: Dataset,
        compute_model: ComputeModel,
        command: CommandTemplate | None,
        strategy: StrategyKind | str,
        grouping: PartitionScheme | str,
        grouping_options: dict,
        common_files: tuple[DataFile, ...],
        multicore: bool,
        retry_policy: RetryPolicy | None,
        isolate_after: int,
        failure_schedule: FailureSchedule | None,
        failure_mttf: float | None,
        failure_silent_fraction: float = 0.0,
        crash_worker_on_task: dict[str, int] | None = None,
        hang_worker_on_task: dict[str, int] | None = None,
        link_fault_schedule: LinkFaultSchedule | None = None,
        link_fault_mtbf: float | None = None,
        link_fault_outage: float = 30.0,
        transfer_fault_rate: float = 0.0,
        elasticity: tuple[ElasticAction, ...] = (),
        static_chunking: str = "contiguous",
        master_failure_at: float | None = None,
        master_recovery_time: float | None = None,
        output_bytes_per_task: float = 0.0,
        data_source: str = "master",
        telemetry: Telemetry | None = None,
    ):
        self.env = env
        self.monitor = monitor
        self.engine = engine
        self.options = engine.options
        self.dataset = dataset
        self.compute_model = compute_model
        self.common_files = common_files
        self.controller = ControllerLogic(
            strategy=strategy,
            grouping=grouping,
            grouping_options=grouping_options,
            command=command,
            multicore=multicore,
            retry_policy=retry_policy,
            isolate_after=isolate_after,
        )
        self.retry_policy = retry_policy or RetryPolicy.paper_faithful()
        self.elasticity = elasticity
        self.failure_schedule = failure_schedule
        self.failure_mttf = failure_mttf
        self.failure_silent_fraction = float(failure_silent_fraction)
        #: Per-worker scripted deaths (chaos-parity twins of the real
        #: engines' hooks): consumed on first match, delivered through
        #: ``fail_vm`` so the ordinary interrupt path does bookkeeping.
        self.crash_on_task = dict(crash_worker_on_task or {})
        self.hang_on_task = dict(hang_worker_on_task or {})
        self.link_fault_schedule = link_fault_schedule
        self.link_fault_mtbf = link_fault_mtbf
        self.link_fault_outage = float(link_fault_outage)
        self.transfer_fault_rate = float(transfer_fault_rate)
        silent_possible = (
            self.failure_silent_fraction > 0
            or bool(self.hang_on_task)
            or (failure_schedule is not None and failure_schedule.has_silent)
        )
        if silent_possible and self.options.heartbeat_interval <= 0:
            raise ConfigurationError(
                "silent failures are undetectable without heartbeats: "
                "set SimulationOptions.heartbeat_interval > 0"
            )
        self.heartbeats: Optional[HeartbeatMonitor] = None
        self.link_injector: Optional[LinkFaultInjector] = None
        #: Nodes the heartbeat sweep has already declared dead (the
        #: declaration fans out to every clone exactly once).
        self._nodes_declared_dead: set[str] = set()
        self.static_chunking = static_chunking
        self.master_failure_at = master_failure_at
        self.master_recovery_time = master_recovery_time
        self.output_bytes_per_task = float(output_bytes_per_task)
        if data_source not in ("master", "network_storage"):
            raise ConfigurationError(
                f"data_source must be 'master' or 'network_storage', got {data_source!r}"
            )
        self.data_source = data_source
        #: [start, end) of the master outage; end is +inf when the
        #: master never recovers.
        self.master_outage: Optional[tuple[float, float]] = None
        if master_failure_at is not None:
            end = (
                master_failure_at + master_recovery_time
                if master_recovery_time is not None
                else float("inf")
            )
            self.master_outage = (master_failure_at, end)
        self.outputs_snapshotted = 0.0

        # The telemetry hub: a shared one (--trace) is re-bound to this
        # run's clock/monitor; otherwise a private hub makes the monitor
        # the sole consumer of the span stream.
        tel = telemetry if telemetry is not None else Telemetry(clock=lambda: env.now)
        tel.bind(
            clock=lambda: env.now,
            run=f"{dataset.name}:{self.controller.strategy.kind.value}",
            monitor=MonitorSink(monitor),
        )
        self.telemetry = tel
        self._run_span: Optional[SpanHandle] = None
        self._h_exec = tel.metrics.histogram("task.exec_seconds")
        self.slo = (
            SloEvaluator(self.options.slo_probes, tel)
            if self.options.slo_probes
            else None
        )
        self.elasticity_mgr = ElasticityManager(
            policy=self.options.autoscale_policy, metrics=tel.metrics
        )

        self.cluster: Optional[VirtualCluster] = None
        self.scheduler: Optional[MasterScheduler] = None
        self.transfers: Optional[TransferService] = None
        self.billing = (
            BillingModel(self.options.price_sheet, metrics=tel.metrics)
            if self.options.enable_billing
            else None
        )
        self.worker_logics: dict[str, WorkerLogic] = {}
        self.task_records: list[TaskRecord] = []
        self.run_done: Event = Event(env)
        #: (node_id, file_name) → completion event for a transfer that
        #: is already in flight (the master coalesces duplicate pulls
        #: of the same file to the same node).
        self._inflight_transfers: dict[tuple[str, str], Event] = {}
        self.start_time = 0.0
        self.end_time = 0.0
        self._file_index: dict[str, DataFile] = {}

    # -- helpers -----------------------------------------------------------
    def _rtt(self):
        return self.env.timeout(self.options.control_rtt)

    def _master_available(self) -> bool:
        if self.master_outage is None:
            return True
        start, end = self.master_outage
        return not (start <= self.env.now < end)

    def _await_master(self):
        """Process fragment: block while the master is down (§V-A).

        A permanent outage (no recovery) parks the caller forever; the
        run is ended separately by the outage watchdog.
        """
        while not self._master_available():
            _start, end = self.master_outage
            if end == float("inf"):
                # Master never comes back; wait on an event that never
                # fires (the watchdog terminates the run).
                yield Event(self.env)
                return
            yield self.env.timeout(end - self.env.now)

    def _master_watchdog(self):
        """Ends the run when the master dies without recovery."""
        start, end = self.master_outage
        delay = start - self.env.now
        if delay > 0:
            yield self.env.timeout(delay)
        self.controller.log(self.env.now, "MASTER_FAILED", "single point of failure")
        self.telemetry.event("master.failed", track="control")
        if end == float("inf") and not self.run_done.triggered:
            self.run_done.succeed()
        elif end != float("inf"):
            yield self.env.timeout(end - self.env.now)
            self.controller.log(self.env.now, "MASTER_RECOVERED", "controller restart")
            self.telemetry.event("master.recovered", track="control")

    def _file(self, name: str) -> DataFile:
        return self._file_index[name]

    def _maybe_finish(self) -> None:
        if self.scheduler is not None and self.scheduler.done and not self.run_done.triggered:
            self.run_done.succeed()

    def _record_wan(self, path: Sequence[str], nbytes: float) -> None:
        if self.billing is not None and self.cluster is not None:
            wan = self.cluster.wan_link_name
            if wan is not None and wan in path:
                self.billing.record_wan_bytes(nbytes)

    def _note_source_read(self, nbytes: float) -> None:
        """Attribute a source-side read to its storage tier's metrics."""
        cluster = self.cluster
        if cluster is None:
            return
        if self.data_source == "network_storage" and cluster.shared_storage is not None:
            cluster.shared_storage.note_read(nbytes)
        elif cluster.master_vm is not None and cluster.master_vm.local_disk is not None:
            cluster.master_vm.local_disk.note_read(nbytes)

    def _source_path_to(self, node_id: str) -> tuple[str, ...]:
        """Link path from the data source to a node's local disk."""
        cluster = self.cluster
        if self.data_source == "network_storage":
            return (
                cluster.storage_read_path(node_id)
                + cluster.vm(node_id).local_disk.write_path()
            )
        return cluster.disk_to_disk_path(cluster.master_vm.vm_id, node_id)

    def _transfer_to_node(
        self,
        file: DataFile,
        node_id: str,
        tag: str,
        parent: SpanHandle | None = None,
    ):
        """Process: ship one file source → node-disk.

        Dedupes against files already on the node's disk *and*
        coalesces with transfers currently in flight to that node —
        several clones asking for the same common file trigger exactly
        one network transfer (multicore BLAST's database pull).
        """
        cluster = self.cluster
        disk = cluster.vm(node_id).local_disk
        if disk.has_file(file.name):
            return None
        key = (node_id, file.name)
        existing = self._inflight_transfers.get(key)
        if existing is not None:
            yield existing
            return None
        completion = Event(self.env)
        self._inflight_transfers[key] = completion
        try:
            yield from self._await_master()
            path = self._source_path_to(node_id)
            request = TransferRequest(file.name, file.size, path, tag=tag)
            self._record_wan(path, file.size)
            self._note_source_read(file.size)
            result = yield self.env.process(
                self.transfers.transfer(request, parent=parent)
            )
            # The transfer may have exhausted its retries, and the VM
            # may have died while the bytes were in flight.
            vm = cluster.vm(node_id)
            if result.ok and vm.is_running:
                disk.store_file(file.name, file.size)
            return result
        finally:
            del self._inflight_transfers[key]
            if not completion.triggered:
                completion.succeed()

    # -- main orchestration ---------------------------------------------------
    def main(self):
        env = self.env
        tel = self.telemetry
        self._run_span = tel.start_span(
            "run",
            track="control",
            dataset=self.dataset.name,
            strategy=self.controller.strategy.kind.value,
        )
        # 1. Provision the virtual cluster (ORCA/Flukes role).
        provision_span = tel.start_span(
            "provision", parent=self._run_span, track="control"
        )
        provisioner = Provisioner(env, self.monitor, tel)
        cluster, ready = provisioner.provision(self.engine.spec)
        self.cluster = cluster
        self.provisioner = provisioner
        yield ready
        provision_span.end(vms=len(cluster.vms))
        # The measured run starts once the cluster is up: Table I /
        # Fig 6 totals include data transfer + execution, not VM
        # provisioning.
        self.start_time = env.now
        strategy = self.controller.strategy

        # 2. Control phase (Fig 4): partition generation + master start.
        groups = self.controller.generate_partitions(self.dataset, env.now)
        for f in self.dataset:
            self._file_index[f.name] = f
        for f in self.common_files:
            self._file_index[f.name] = f
        yield self._rtt()  # START_MASTER
        fault_model = (
            TransferFaultModel(self.transfer_fault_rate, seed=self.options.seed)
            if self.transfer_fault_rate > 0
            else None
        )
        self.transfers = TransferService(
            env, cluster.network, self.options.protocol, self.monitor,
            telemetry=tel,
            retry_policy=self.options.transfer_retry,
            fault_model=fault_model,
            seed=self.options.seed,
        )
        self.scheduler = MasterScheduler(
            groups,
            strategy,
            retry_policy=self.retry_policy,
            fault_tracker=self.controller.fault_tracker,
            metrics=tel.metrics,
            clock=lambda: env.now,
        )
        # Detection → rescale: the moment fault isolation empties a
        # node, the elasticity manager learns true capacity.
        self.controller.fault_tracker.on_isolate = self._on_worker_isolated

        # Source data lands on the master's disk (the master "runs close
        # to the source of the input data", §II-B) or on the shared
        # network-storage tier (§III-A's networked-disk configuration).
        if self.data_source == "network_storage":
            if cluster.shared_storage is None:
                raise ConfigurationError(
                    "data_source='network_storage' needs "
                    "ClusterSpec.network_storage_bytes > 0"
                )
            source_volume = cluster.shared_storage
        else:
            source_volume = cluster.master_vm.local_disk
        if not strategy.data_local_to_workers:
            for f in self.dataset:
                source_volume.store_file(f.name, f.size)
        for f in self.common_files:
            source_volume.store_file(f.name, f.size)

        # 3. Fork remote workers (multicore cloning, §II-C).
        worker_nodes = [vm for vm in cluster.worker_vms if vm.is_running]
        if not worker_nodes:
            raise ConfigurationError("no running worker VMs")
        plans = self.controller.plan_workers(
            [(vm.vm_id, vm.itype.cores) for vm in worker_nodes], env.now
        )
        for plan in plans:
            for wid in plan.worker_ids:
                self.scheduler.register_worker(wid)
                self.worker_logics[wid] = WorkerLogic(
                    wid, plan.node_id, self.controller.command
                )
        self.scheduler.partition_among(
            chunking=self.static_chunking,
            cost_hint=(
                self.compute_model.cost if self.static_chunking == "lpt_cost" else None
            ),
        )
        yield self._rtt()  # worker init + register round

        # 4. Pre-place / stage data according to the strategy.
        if strategy.data_local_to_workers:
            self._preplace_local(worker_nodes)
        staging_reqs = self._staging_requests(worker_nodes)
        if staging_reqs:
            staging_span = tel.start_span(
                "staging", parent=self._run_span, track="control",
                files=len(staging_reqs),
            )
            plan = StagingPlan(staging_reqs, concurrency=self.options.staging_concurrency)
            results = yield env.process(plan.execute(self.transfers, parent=staging_span))
            staging_span.end()
            self._mark_staged(results)

        # 5. Execution phase: spawn worker clones; watch for failures;
        #    apply scripted elasticity.
        self.elasticity_mgr.active_nodes.update(vm.vm_id for vm in worker_nodes)
        if self.options.heartbeat_interval > 0:
            self.heartbeats = HeartbeatMonitor(
                self.options.heartbeat_config, metrics=tel.metrics
            )
            # frieda: allow[dropped-event] -- fire-and-forget daemon; joined via run_done
            env.process(self._heartbeat_sweep(), name="heartbeat-sweep")
        if self.slo is not None or tel.record:
            # frieda: allow[dropped-event] -- fire-and-forget daemon; joined via run_done
            env.process(self._observe_loop(), name="observe")
        if self.failure_schedule is not None or self.failure_mttf is not None:
            FailureInjector(
                env,
                cluster,
                schedule=self.failure_schedule,
                mttf_s=self.failure_mttf,
                silent_fraction=self.failure_silent_fraction,
                seed=self.options.seed,
            )
        if self.link_fault_schedule is not None or self.link_fault_mtbf is not None:
            nic_links = [
                name
                for vm_id in sorted(cluster.vms)
                for name in (f"{vm_id}.up", f"{vm_id}.down")
            ]
            self.link_injector = LinkFaultInjector(
                env,
                cluster.network,
                links=nic_links,
                schedule=self.link_fault_schedule,
                mtbf_s=self.link_fault_mtbf,
                mean_outage_s=self.link_fault_outage,
                seed=self.options.seed,
            )
        for vm in worker_nodes:
            self._spawn_node_workers(vm)
        for action in self.elasticity:
            # frieda: allow[dropped-event] -- fire-and-forget daemon; joined via run_done
            env.process(self._elastic(action), name=f"elastic-{action.action}")
        if self.master_outage is not None:
            # frieda: allow[dropped-event] -- fire-and-forget daemon; joined via run_done
            env.process(self._master_watchdog(), name="master-watchdog")
        self._maybe_finish()
        yield self.run_done
        self.end_time = env.now
        if self.slo is not None:
            # Final look at the fully settled registry.
            self.slo.evaluate(env.now)
        for vm in cluster.vms.values():
            vm.terminate()
        self._run_span.end(tasks=len(self.scheduler.completed))

    # -- staging -----------------------------------------------------------
    def _node_file_needs(self, worker_nodes: Sequence[VirtualMachine]) -> dict[str, list[DataFile]]:
        """Which files each node must hold before execution starts."""
        strategy = self.controller.strategy
        needs: dict[str, list[DataFile]] = {vm.vm_id: [] for vm in worker_nodes}
        for vm in worker_nodes:
            seen: set[str] = set()
            for f in self.common_files:
                if f.name not in seen:
                    needs[vm.vm_id].append(f)
                    seen.add(f.name)
            if strategy.replicate_all:
                for f in self.dataset:
                    if f.name not in seen:
                        needs[vm.vm_id].append(f)
                        seen.add(f.name)
            elif strategy.static_assignment and strategy.staged_before_execution:
                for plan in self.controller.plans_for(vm.vm_id):
                    for wid in plan.worker_ids:
                        for group in self.scheduler.planned_chunk(wid):
                            for f in group.files:
                                if f.name not in seen:
                                    needs[vm.vm_id].append(f)
                                    seen.add(f.name)
        return needs

    def _staging_requests(self, worker_nodes: Sequence[VirtualMachine]) -> list[TransferRequest]:
        strategy = self.controller.strategy
        if strategy.data_local_to_workers:
            return []
        requests: list[TransferRequest] = []
        for node_id, files in self._node_file_needs(worker_nodes).items():
            if not files:
                continue
            path = self._source_path_to(node_id)
            for f in files:
                self._record_wan(path, f.size)
                self._note_source_read(f.size)
                requests.append(
                    TransferRequest(f.name, f.size, path, tag=f"stage:{node_id}")
                )
        return requests

    def _mark_staged(self, results: Sequence[TransferResult]) -> None:
        """Land successful staging transfers on their node disks. A
        failed transfer leaves its file missing — the lazy fetch path
        gets one more chance at task time, and if that fails too the
        task degrades to a fetch error."""
        cluster = self.cluster
        for result in results:
            if not result.ok:
                continue
            node_id = result.tag.split(":", 1)[1]
            vm = cluster.vm(node_id)
            if vm.is_running:
                vm.local_disk.store_file(result.file_name, result.nbytes)
        for wid, logic in self.worker_logics.items():
            disk = cluster.vm(logic.node_id).local_disk
            for name in disk.file_names():
                logic.receive_file(name)

    def _preplace_local(self, worker_nodes: Sequence[VirtualMachine]) -> None:
        """Pre-partitioned local: data begins on the workers' disks
        (e.g. baked into the VM image, §IV-B) — no transfer cost."""
        for node_id, files in self._node_file_needs(worker_nodes).items():
            disk = self.cluster.vm(node_id).local_disk
            for f in files:
                disk.store_file(f.name, f.size)
        # Local strategies never stage chunks through _node_file_needs
        # (staged_before_execution is False), so place chunk data here.
        for wid, logic in self.worker_logics.items():
            disk = self.cluster.vm(logic.node_id).local_disk
            for group in self.scheduler.planned_chunk(wid):
                for f in group.files:
                    disk.store_file(f.name, f.size)
            for name in disk.file_names():
                logic.receive_file(name)

    # -- workers ----------------------------------------------------------
    def _spawn_node_workers(self, vm: VirtualMachine) -> None:
        for plan in self.controller.plans_for(vm.vm_id):
            for wid in plan.worker_ids:
                logic = self.worker_logics[wid]
                proc = self.env.process(
                    self._worker_loop(vm, logic), name=f"worker-{wid}"
                )
                vm.register_process(proc)
        if self.heartbeats is not None:
            beat = self.env.process(
                self._heartbeat_beat(vm), name=f"heartbeat-{vm.vm_id}"
            )
            # Registered so any VM death — crash or silent — stops the
            # beats; for silent deaths that silence IS the only signal.
            vm.register_process(beat)

    # -- liveness (detection → recovery, extension) ------------------------
    def _heartbeat_beat(self, vm: VirtualMachine):
        interval = self.options.heartbeat_interval
        try:
            while vm.is_running and not self.run_done.triggered:
                self.heartbeats.beat(vm.vm_id, self.env.now)
                yield self.env.timeout(interval)
        except Interrupt:
            return

    def _heartbeat_sweep(self):
        """Master-side sweep: declare silent nodes dead and recover.

        This closes the loop the injector's ``fail_vm`` cannot: a
        silently-dead node never reports, so its in-flight tasks would
        stay on the master's books forever. The sweep notices the
        missed beats, declares the node dead, and fires the same
        ``worker_lost`` path a broken connection would have.
        """
        interval = self.options.heartbeat_interval
        while not self.run_done.triggered:
            yield self.env.timeout(interval)
            if self.run_done.triggered:
                return
            states = self.heartbeats.sweep(self.env.now)
            for node_id, state in states.items():
                if state is not Liveness.DEAD or node_id in self._nodes_declared_dead:
                    continue
                if self._node_connection_lost(node_id):
                    # A crashed node stops beating too, but its death was
                    # already reported over the broken connection; drop it
                    # from monitoring instead of double-declaring.
                    self.heartbeats.forget(node_id)
                    continue
                self._nodes_declared_dead.add(node_id)
                self._declare_node_dead(node_id)
            self._maybe_finish()

    def _observe_loop(self):
        """Time-sampled observability: queue-depth gauge events and SLO
        probe evaluation at a fixed sim-time cadence. Deterministic —
        samples land at ``start + k * interval`` in simulated time (no
        wall-clock reads), so same-seed runs produce byte-identical
        merged traces."""
        interval = self.options.sample_interval
        if interval <= 0:
            interval = (
                self.options.heartbeat_interval
                if self.options.heartbeat_interval > 0
                else 1.0
            )
        tel = self.telemetry
        while not self.run_done.triggered:
            yield self.env.timeout(interval)
            if self.run_done.triggered:
                return
            if tel.record:
                tel.event(
                    "queue.depth", self.scheduler.pending_count, track="control"
                )
            if self.slo is not None:
                self.slo.evaluate(self.env.now)

    def _node_connection_lost(self, node_id: str) -> bool:
        """Every clone on the node already reported loss (crash path)."""
        faults = self.controller.fault_tracker
        clones = [
            w for w, logic in self.worker_logics.items() if logic.node_id == node_id
        ]
        return bool(clones) and all(faults.is_lost(w) for w in clones)

    def _declare_node_dead(self, node_id: str) -> None:
        now = self.env.now
        self.telemetry.event("node.declared_dead", node_id, track="control")
        self.controller.log(now, "NODE_DECLARED_DEAD", f"{node_id}: missed heartbeats")
        faults = self.controller.fault_tracker
        for wid, logic in self.worker_logics.items():
            if logic.node_id != node_id or faults.is_lost(wid):
                continue
            requeued = self.scheduler.worker_lost(wid, "heartbeat: declared dead")
            self.controller.on_worker_failed(
                WorkerFailed(
                    worker_id=wid,
                    node_id=node_id,
                    error="heartbeat: declared dead",
                    tasks_in_flight=tuple(a.task_id for a in requeued),
                ),
                now,
            )

    def _on_worker_isolated(self, worker_id: str, health) -> None:
        """FaultTracker callback: once every clone on a node is
        isolated, tell the elasticity manager the node is gone and let
        the auto-scale policy (if any) recommend a replacement."""
        logic = self.worker_logics.get(worker_id)
        if logic is None:
            return
        node_id = logic.node_id
        faults = self.controller.fault_tracker
        clones = [w for w, l in self.worker_logics.items() if l.node_id == node_id]
        if not all(faults.is_isolated(w) for w in clones):
            return
        if node_id not in self.elasticity_mgr.active_nodes:
            return  # scripted removal already accounted for it
        self.elasticity_mgr.node_removed(self.env.now, node_id, reason="fault-isolation")
        self.telemetry.event("elastic.node_lost", node_id, track="control")
        if self.elasticity_mgr.policy is not None and self.scheduler is not None:
            queued = max(
                0, self.scheduler.outstanding - self.scheduler.in_flight_count
            )
            self.elasticity_mgr.evaluate(self.env.now, queued)

    def _worker_loop(self, vm: VirtualMachine, logic: WorkerLogic):
        env = self.env
        sched = self.scheduler
        strategy = self.controller.strategy
        wid = logic.worker_id
        prefetching = self.options.prefetch_depth > 0 and strategy.lazy
        try:
            yield self._rtt()  # register + connection ack
            if not prefetching:
                while True:
                    if sched.done:
                        break
                    request_start = env.now
                    yield self._rtt()  # REQUEST_DATA round trip
                    assignment = sched.next_for(wid)
                    if assignment is None and self.options.speculative and strategy.lazy:
                        assignment = sched.speculate_for(wid)
                    if assignment is None:
                        if sched.done or not self.retry_policy.retry_on_worker_loss:
                            break  # NO_MORE_DATA
                        # Retry extension: work may reappear; poll briefly.
                        yield env.timeout(max(self.options.control_rtt * 25, 0.05))
                        continue
                    if self._maybe_inject_death(vm, wid, assignment.task_id):
                        # The interrupt we just scheduled is delivered at
                        # this yield; the except block below (or silence,
                        # for hangs) takes over — twin of a real worker
                        # dying upon receiving FILE_METADATA.
                        yield env.timeout(0)
                    task_span = self._open_task_span(vm, assignment, request_start)
                    yield from self._execute_assignment(
                        vm, logic, assignment, span=task_span
                    )
                    self._maybe_finish()
            else:
                # Double buffering (extension): fetch task N+1's inputs
                # while task N computes.
                pending = yield from self._fetch(vm, logic)
                while pending is not None:
                    assignment, fetch_start, transfer_seconds, task_span = pending
                    prefetch = env.process(
                        self._fetch(vm, logic), name=f"prefetch-{wid}"
                    )
                    vm.register_process(prefetch)
                    yield from self._run_task(
                        vm, logic, assignment, fetch_start, transfer_seconds,
                        span=task_span,
                    )
                    self._maybe_finish()
                    pending = yield prefetch
        except Interrupt as interrupt:
            now = env.now
            aborted = logic.abort_task(now, f"vm failure: {interrupt.cause}")
            cause = (
                interrupt.cause[1]
                if isinstance(interrupt.cause, tuple) and len(interrupt.cause) == 2
                else str(interrupt.cause)
            )
            if aborted is not None:
                self.task_records.append(
                    TaskRecord(
                        task_id=aborted.task_id,
                        worker_id=wid,
                        node_id=vm.vm_id,
                        start=aborted.started,
                        end=now,
                        ok=False,
                        error=aborted.error,
                    )
                )
            if is_silent_cause(cause):
                # Silent death: the connection did not break, so nothing
                # reports the loss. The task stays on the master's books
                # until the heartbeat sweep declares this node dead.
                return
            requeued = sched.worker_lost(wid, str(interrupt.cause))
            self.telemetry.event(
                "worker.failed", wid, track=f"worker:{wid}",
                node=vm.vm_id, cause=str(interrupt.cause),
            )
            self.controller.on_worker_failed(
                WorkerFailed(
                    worker_id=wid,
                    node_id=vm.vm_id,
                    error=str(interrupt.cause),
                    tasks_in_flight=tuple(a.task_id for a in requeued),
                ),
                now,
            )
            self._maybe_finish()

    def _maybe_inject_death(self, vm: VirtualMachine, wid: str, task_id: int) -> bool:
        """Scripted chaos hook: kill/wedge this VM upon drawing a task.

        Returns True after scheduling the failure; the caller must then
        yield once so the kernel delivers the interrupt. A *crash* uses
        an ordinary cause (broken-connection bookkeeping in the
        interrupt handler); a *hang* uses a silent cause, so only the
        heartbeat sweep can recover it — exactly the two failure modes
        the real engines inject.
        """
        crash = self.crash_on_task.get(wid)
        if crash is not None and crash in (task_id, ANY_TASK):
            del self.crash_on_task[wid]
            self.cluster.fail_vm(vm.vm_id, cause=f"injected crash on task {task_id}")
            return True
        hang = self.hang_on_task.get(wid)
        if hang is not None and hang in (task_id, ANY_TASK):
            del self.hang_on_task[wid]
            self.cluster.fail_vm(
                vm.vm_id, cause=f"silent: injected hang on task {task_id}"
            )
            return True
        return False

    def _open_task_span(
        self, vm: VirtualMachine, assignment: Assignment, request_start: float
    ) -> SpanHandle:
        """Root span of one task's lifecycle tree, opened at the
        REQUEST_DATA instant; the dispatch round-trip is its first
        child, fetch/transfer/exec follow."""
        wid = assignment.worker_id
        span = self.telemetry.start_span(
            "task",
            parent=self._run_span,
            track=f"worker:{wid}",
            start=request_start,
            task=assignment.task_id,
            worker=wid,
            node=vm.vm_id,
            attempt=assignment.attempt,
        )
        self.telemetry.span_complete(
            "dispatch",
            request_start,
            self.env.now,
            parent=span,
            track=f"worker:{wid}",
            worker=wid,
            task=assignment.task_id,
        )
        return span

    def _fetch(self, vm: VirtualMachine, logic: WorkerLogic):
        """Process: request the next assignment and stage its inputs.

        Returns ``(assignment, fetch_start, transfer_seconds, span)``
        or ``None`` when the worker is drained. Used by the prefetching
        loop; safe to interrupt (returns None on VM failure — the
        worker's own interrupt handler does the loss bookkeeping).
        """
        env = self.env
        sched = self.scheduler
        wid = logic.worker_id
        try:
            while True:
                if sched.done:
                    return None
                fetch_start = env.now
                yield self._rtt()  # REQUEST_DATA round trip
                assignment = sched.next_for(wid)
                if assignment is None and self.options.speculative:
                    assignment = sched.speculate_for(wid)
                if assignment is None:
                    if sched.done or not self.retry_policy.retry_on_worker_loss:
                        return None
                    yield env.timeout(max(self.options.control_rtt * 25, 0.05))
                    continue
                if self._maybe_inject_death(vm, wid, assignment.task_id):
                    yield env.timeout(0)  # deliver the scheduled interrupt
                task_span = self._open_task_span(vm, assignment, fetch_start)
                try:
                    transfer_seconds = yield from self._stage_inputs(
                        vm, logic, assignment, parent=task_span
                    )
                except _FetchFailed as failure:
                    self._report_fetch_failure(
                        vm, logic, assignment, failure, fetch_start, task_span
                    )
                    continue
                return assignment, fetch_start, transfer_seconds, task_span
        except Interrupt:
            return None

    def _stage_inputs(
        self,
        vm: VirtualMachine,
        logic: WorkerLogic,
        assignment: Assignment,
        parent: SpanHandle | None = None,
    ):
        """Process fragment: lazily transfer the assignment's missing
        inputs; returns the seconds spent waiting on transfers."""
        env = self.env
        wid = logic.worker_id
        missing = logic.missing_files(assignment.group.file_names)
        if not missing:
            return 0.0
        t0 = env.now
        fetch_span = self.telemetry.start_span(
            "fetch",
            parent=parent,
            track=f"worker:{wid}",
            worker=wid,
            task=assignment.task_id,
            files=len(missing),
        )
        procs = [
            env.process(
                self._transfer_to_node(
                    self._file(name), vm.vm_id, tag=f"rt:{wid}", parent=fetch_span
                )
            )
            for name in missing
        ]
        yield env.all_of(procs)
        if not vm.is_running:
            raise Interrupt((vm.vm_id, "vm died during transfer"))
        # A transfer that exhausted its retries never landed on disk;
        # the task cannot run without its inputs.
        still_missing = [
            name for name in missing if not vm.local_disk.has_file(name)
        ]
        if still_missing:
            fetch_span.end(ok=False, missing=len(still_missing))
            raise _FetchFailed(still_missing)
        for name in missing:
            logic.receive_file(name)
        fetch_span.end()
        return env.now - t0

    def _execute_assignment(
        self,
        vm: VirtualMachine,
        logic: WorkerLogic,
        assignment: Assignment,
        span: SpanHandle | None = None,
    ):
        task_start = self.env.now
        try:
            transfer_seconds = yield from self._stage_inputs(
                vm, logic, assignment, parent=span
            )
        except _FetchFailed as failure:
            self._report_fetch_failure(
                vm, logic, assignment, failure, task_start, span
            )
            return
        yield from self._run_task(
            vm, logic, assignment, task_start, transfer_seconds, span=span
        )

    def _report_fetch_failure(
        self,
        vm: VirtualMachine,
        logic: WorkerLogic,
        assignment: Assignment,
        failure: _FetchFailed,
        task_start: float,
        span: SpanHandle | None,
    ) -> None:
        """Exhausted input transfers degrade to a task error: the master
        hears a normal error report and the existing FaultTracker /
        retry machinery decides what happens next."""
        now = self.env.now
        wid = logic.worker_id
        message = "fetch failed: " + ", ".join(failure.files)
        retried = self.scheduler.report_error(wid, assignment.task_id, message)
        self.telemetry.event(
            "task.fetch_failed", assignment.task_id,
            track=f"worker:{wid}", worker=wid, retried=retried,
        )
        if span is not None:
            span.end(ok=False, error="fetch-failed")
        self.task_records.append(
            TaskRecord(
                task_id=assignment.task_id,
                worker_id=wid,
                node_id=vm.vm_id,
                start=task_start,
                end=now,
                ok=False,
                error=message,
                attempt=assignment.attempt,
            )
        )
        self._maybe_finish()

    def _run_task(
        self,
        vm: VirtualMachine,
        logic: WorkerLogic,
        assignment: Assignment,
        task_start: float,
        transfer_seconds: float,
        span: SpanHandle | None = None,
    ):
        env = self.env
        group = assignment.group
        wid = logic.worker_id
        # Execute: take a core, charge disk reads + compute seconds.
        with vm.cpu.request() as slot:
            yield slot
            exec_start = env.now
            record = logic.begin_task(group.index, group.file_names, exec_start)
            if self.options.include_disk_io and group.total_size > 0:
                read = self.cluster.network.start_flow(
                    vm.local_disk.read_path(), group.total_size, tag=f"read:{wid}"
                )
                yield read.done
            # Heterogeneous hardware: slower cores stretch the task
            # (costs are quoted in reference-core seconds).
            cost = float(self.compute_model.cost(group)) / vm.itype.core_speed
            if cost > 0:
                yield env.timeout(cost)
            logic.finish_task(env.now, ok=True)
        if self.output_bytes_per_task > 0:
            # §II-D: results "left behind on the workers" — written to
            # the ephemeral local disk (lost with the VM unless
            # snapshotted on scale-down).
            write = self.cluster.network.start_flow(
                vm.local_disk.write_path(),
                self.output_bytes_per_task,
                tag=f"out:{wid}",
            )
            yield write.done
            if vm.is_running:
                vm.local_disk.store_file(
                    f"out-task{group.index:06d}", int(self.output_bytes_per_task)
                )
        self.scheduler.report_success(wid, group.index)
        self.telemetry.span_complete(
            "exec",
            exec_start,
            env.now,
            parent=span,
            track=f"worker:{wid}",
            worker=wid,
            node=vm.vm_id,
            task=group.index,
        )
        self._h_exec.observe(env.now - exec_start)
        self.telemetry.event(
            "task.report", group.index, track=f"worker:{wid}", worker=wid
        )
        if span is not None:
            span.end(ok=True)
        self.task_records.append(
            TaskRecord(
                task_id=group.index,
                worker_id=wid,
                node_id=vm.vm_id,
                start=task_start,
                end=env.now,
                ok=True,
                attempt=assignment.attempt,
                transfer_seconds=transfer_seconds,
            )
        )

    # -- elasticity -----------------------------------------------------------
    def _elastic(self, action: ElasticAction):
        env = self.env
        delay = action.time - env.now
        if delay > 0:
            yield env.timeout(delay)
        if self.run_done.triggered:
            return
        if action.action == "add":
            vm, booted = self.provisioner.add_worker(
                self.cluster, action.instance_type, boot_delay=action.boot_delay
            )
            yield booted
            if self.run_done.triggered:
                return
            self.telemetry.event(
                "elastic.add", vm.vm_id, track="control", itype=action.instance_type
            )
            self.elasticity_mgr.node_added(env.now, vm.vm_id, reason="scenario")
            plan = self.controller.on_worker_added(vm.vm_id, vm.itype.cores, env.now)
            for wid in plan.worker_ids:
                self.scheduler.register_worker(wid)
                self.worker_logics[wid] = WorkerLogic(
                    wid, vm.vm_id, self.controller.command
                )
            # Elastic nodes still need the common data before computing.
            for f in self.common_files:
                yield from self._transfer_to_node(
                    f, vm.vm_id, tag=f"stage:{vm.vm_id}", parent=self._run_span
                ) or iter(())
                for wid in plan.worker_ids:
                    self.worker_logics[wid].receive_file(f.name)
            self._spawn_node_workers(vm)
        elif action.action == "remove":
            node_id = action.node_id
            if node_id in self.cluster.vms:
                self.telemetry.event(
                    "elastic.remove", node_id, track="control", snapshot=action.snapshot
                )
                self.elasticity_mgr.node_removed(env.now, node_id, reason="scenario")
                self.controller.on_worker_removed(node_id, env.now)
                if action.snapshot:
                    yield from self._snapshot_outputs(node_id)
                self.cluster.fail_vm(node_id, cause="elastic-remove")
        else:
            raise ConfigurationError(f"unknown elastic action {action.action!r}")

    def _snapshot_outputs(self, node_id: str):
        """Process fragment: copy the node's task outputs to the master
        before the VM disappears (§V-A: "snapshots of the data need to
        be captured")."""
        cluster = self.cluster
        vm = cluster.vm(node_id)
        outputs = [
            name for name in vm.local_disk.file_names() if name.startswith("out-task")
        ]
        if not outputs:
            return
        master = cluster.master_vm
        snap_start = self.env.now
        path = (
            vm.local_disk.read_path()
            + cluster.route_between(node_id, master.vm_id)
            + master.local_disk.write_path()
        )
        flows = []
        for name in outputs:
            size = int(self.output_bytes_per_task) or 1
            flows.append(
                cluster.network.start_flow(path, size, tag=f"snapshot:{node_id}")
            )
        yield self.env.all_of([f.done for f in flows])
        for name in outputs:
            master.local_disk.store_file(name, int(self.output_bytes_per_task) or 1)
            self.outputs_snapshotted += self.output_bytes_per_task
        self.telemetry.span_complete(
            "snapshot",
            snap_start,
            self.env.now,
            parent=self._run_span,
            track="control",
            node=node_id,
        )
        self.controller.log(
            self.env.now, "OUTPUTS_SNAPSHOTTED", f"{node_id}: {len(outputs)} files"
        )

    # -- outcome ---------------------------------------------------------------
    def outcome(self) -> RunOutcome:
        monitor = self.monitor
        sched = self.scheduler
        makespan = self.end_time - self.start_time
        transfer_time = monitor.union_time("transfer")
        execution_time = monitor.union_time("exec")
        worker_busy = {
            wid: logic.busy_time for wid, logic in self.worker_logics.items()
        }
        cost = None
        if self.billing is not None:
            if self.cluster.shared_storage is not None:
                self.billing.record_storage(
                    StorageTier.NETWORK,
                    self.cluster.shared_storage.used_bytes,
                    self.end_time,
                )
            cost = self.billing.report(self.cluster)
        summary = sched.summary()
        return RunOutcome(
            strategy=self.controller.strategy.kind,
            grouping=self.controller.grouping,
            makespan=makespan,
            transfer_time=transfer_time,
            execution_time=execution_time,
            tasks_total=summary["total"],
            tasks_completed=summary["completed"],
            tasks_failed=summary["failed"],
            tasks_lost=summary["lost"],
            bytes_transferred=sum(r.nbytes for r in self.transfers.results if r.ok),
            task_records=self.task_records,
            worker_busy=worker_busy,
            cost=cost,
            controller_events=list(self.controller.events),
            extra={
                "staging_time": monitor.union_time("staging"),
                "end_to_end": self.end_time,
                "failures": [
                    e.detail for e in self.controller.events if e.kind == "WORKER_FAILED"
                ],
                "master_failed": any(
                    e.kind == "MASTER_FAILED" for e in self.controller.events
                ),
                "master_recovered": any(
                    e.kind == "MASTER_RECOVERED" for e in self.controller.events
                ),
                "outputs_snapshotted_bytes": self.outputs_snapshotted,
                "snapshot_time": monitor.union_time("snapshot"),
                "transfer_failures": sum(
                    1 for r in self.transfers.results if not r.ok
                ),
                "transfer_attempts": sum(r.attempts for r in self.transfers.results),
                "link_faults": (
                    self.link_injector.faults_injected
                    if self.link_injector is not None
                    else 0
                ),
                "nodes_declared_dead": sorted(self._nodes_declared_dead),
                "slo_breaches": (
                    [
                        (b.probe, b.signal, b.value, b.threshold)
                        for b in self.slo.breaches
                    ]
                    if self.slo
                    else []
                ),
                "metrics": self.telemetry.metrics.snapshot(),
            },
        )
