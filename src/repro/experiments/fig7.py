"""Figure 7: Effect of Data Movement.

"An important question for any application is whether to move the data
closer to the computation or vice-versa." The two configurations:

- **move data to computation**: inputs start at the data source (the
  master node); the run stages/pulls them over the provisioned network
  to the compute VMs (pre-partitioned remote — phases sequential, the
  honest cost of shipping bytes).
- **move computation to data**: the program runs on nodes that already
  hold the data (pre-partitioned local) — no wide transfers at all.

Expected shape: ALS favours moving computation (Fig 7a: transfer cost
dominates); BLAST is "almost insensitive to the placement of
computation or data" (Fig 7b).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.framework import RunOutcome
from repro.core.strategies import StrategyKind
from repro.data.placement import PlacementPolicy
from repro.util.tables import Table
from repro.workloads import als_profile, blast_profile, run_profile


@dataclass
class Fig7Result:
    """Measured bars for one subplot."""

    app: str
    move_data: RunOutcome  # data → computation
    move_compute: RunOutcome  # computation → data

    @property
    def ratio(self) -> float:
        """move-data time over move-compute time (>1 ⇒ moving
        computation wins)."""
        if self.move_compute.makespan <= 0:
            return float("nan")
        return self.move_data.makespan / self.move_compute.makespan

    def shape_holds(self) -> bool:
        if self.app == "als":
            return self.ratio > 1.5  # moving computation clearly wins
        return self.ratio < 1.15  # BLAST nearly insensitive


def run_fig7(
    scale: float = 1.0, *, seed: int = 0, telemetry=None
) -> dict[str, Fig7Result]:
    results = {}
    for name, profile in (
        ("als", als_profile(scale, seed=seed)),
        ("blast", blast_profile(scale, seed=seed)),
    ):
        move_data = run_profile(
            profile, StrategyKind.PRE_PARTITIONED_REMOTE, telemetry=telemetry
        )
        move_compute = run_profile(
            profile, StrategyKind.PRE_PARTITIONED_LOCAL, telemetry=telemetry
        )
        results[name] = Fig7Result(app=name, move_data=move_data, move_compute=move_compute)
    return results


def render_fig7(results: dict[str, Fig7Result], scale: float) -> list[Table]:
    tables = []
    for name, result in results.items():
        table = Table(
            f"Figure 7{'a' if name == 'als' else 'b'}: {name.upper()} "
            f"data movement (scale={scale})",
            ["Placement", "Transfer (s)", "Execution (s)", "Total (s)"],
        )
        table.add_row(
            [
                PlacementPolicy.DATA_TO_COMPUTE.value,
                result.move_data.transfer_time,
                result.move_data.execution_time,
                result.move_data.makespan,
            ]
        )
        table.add_row(
            [
                PlacementPolicy.COMPUTE_TO_DATA.value,
                result.move_compute.transfer_time,
                result.move_compute.execution_time,
                result.move_compute.makespan,
            ]
        )
        table.add_note(f"move-data / move-compute makespan ratio: {result.ratio:.2f}")
        expectation = (
            "ALS: moving computation to data should win big"
            if name == "als"
            else "BLAST: should be nearly insensitive"
        )
        table.add_note(expectation + (" — OK" if result.shape_holds() else " — SHAPE VIOLATION"))
        tables.append(table)
    return tables
