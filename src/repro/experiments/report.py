"""Run reports: JSON export and text timelines.

Turns a :class:`~repro.core.framework.RunOutcome` into artifacts a user
can keep: a machine-readable JSON report (feeds dashboards / the
adaptive advisor across sessions) and a per-worker Gantt-style text
timeline that makes load imbalance visible at a glance — the straggler
chunk in a pre-partitioned run literally sticks out.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.framework import RunOutcome


def outcome_to_dict(outcome: RunOutcome) -> dict[str, Any]:
    """JSON-safe dict of a run outcome (task records included)."""
    return {
        "strategy": outcome.strategy.value,
        "grouping": outcome.grouping.value,
        "makespan": outcome.makespan,
        "transfer_time": outcome.transfer_time,
        "execution_time": outcome.execution_time,
        "tasks": {
            "total": outcome.tasks_total,
            "completed": outcome.tasks_completed,
            "failed": outcome.tasks_failed,
            "lost": outcome.tasks_lost,
        },
        "bytes_transferred": outcome.bytes_transferred,
        "worker_busy": dict(outcome.worker_busy),
        "cost_total": getattr(outcome.cost, "total", None),
        "task_records": [
            {
                "task_id": r.task_id,
                "worker_id": r.worker_id,
                "node_id": r.node_id,
                "start": r.start,
                "end": r.end,
                "ok": r.ok,
                "attempt": r.attempt,
                "error": r.error,
                "transfer_seconds": r.transfer_seconds,
            }
            for r in outcome.task_records
        ],
        "extra": {
            k: v
            for k, v in outcome.extra.items()
            if isinstance(v, (int, float, str, bool, list))
        },
    }


def outcome_to_json(outcome: RunOutcome, *, indent: int | None = None) -> str:
    """Serialize a run outcome to JSON."""
    return json.dumps(outcome_to_dict(outcome), indent=indent, sort_keys=True)


def timeline(outcome: RunOutcome, *, width: int = 72) -> str:
    """Per-worker Gantt-style text timeline of task executions.

    Each row is one worker; each task paints its [start, end) span with
    the last digit of its task id (``x`` marks a failed task).
    """
    if width < 20:
        raise ValueError("width must be >= 20")
    records = outcome.task_records
    if not records:
        return "(no task records)"
    t0 = min(r.start for r in records)
    t1 = max(r.end for r in records)
    span = max(t1 - t0, 1e-9)
    workers = sorted({r.worker_id for r in records})
    label_width = max(len(w) for w in workers)
    lines = [
        f"timeline: 0.0s .. {span:.1f}s "
        f"({outcome.strategy.value}, {outcome.tasks_completed}/{outcome.tasks_total} tasks)"
    ]
    for worker in workers:
        row = [" "] * width
        for record in records:
            if record.worker_id != worker:
                continue
            lo = int((record.start - t0) / span * (width - 1))
            hi = max(lo + 1, int((record.end - t0) / span * (width - 1)) + 1)
            glyph = "x" if not record.ok else str(record.task_id % 10)
            for i in range(lo, min(hi, width)):
                row[i] = glyph
        lines.append(f"{worker.rjust(label_width)} |{''.join(row)}|")
    return "\n".join(lines)


def save_report(outcome: RunOutcome, path: str) -> None:
    """Write the JSON report to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(outcome_to_json(outcome, indent=2))
        fh.write("\n")
