"""Table I: Effect of Data Parallelization.

Reproduces the three columns — sequential, pre-partitioned data
parallelization, real-time data parallelization — for both
applications, and reports speedups next to the paper's numbers
(ALS ≈2×, BLAST ≈15×).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.framework import RunOutcome
from repro.core.strategies import StrategyKind
from repro.experiments.paper_values import PAPER_TABLE1
from repro.util.tables import Table
from repro.workloads import (
    als_profile,
    blast_profile,
    run_profile,
    run_sequential_baseline,
)


@dataclass
class Table1Result:
    """Measured Table I for one application."""

    app: str
    sequential: RunOutcome
    pre_partitioned: RunOutcome
    real_time: RunOutcome

    @property
    def speedup_pre(self) -> float:
        return self.pre_partitioned.speedup_over(self.sequential)

    @property
    def speedup_rt(self) -> float:
        return self.real_time.speedup_over(self.sequential)

    def shape_holds(self) -> bool:
        """The paper's qualitative claims: both parallel modes beat
        sequential, and real-time beats pre-partitioned."""
        return (
            self.pre_partitioned.makespan < self.sequential.makespan
            and self.real_time.makespan < self.sequential.makespan
            and self.real_time.makespan < self.pre_partitioned.makespan
        )


def run_table1(
    scale: float = 1.0, *, seed: int = 0, telemetry=None
) -> dict[str, Table1Result]:
    """Run all six cells of Table I."""
    results = {}
    for name, profile in (
        ("als", als_profile(scale, seed=seed)),
        ("blast", blast_profile(scale, seed=seed)),
    ):
        results[name] = Table1Result(
            app=name,
            sequential=run_sequential_baseline(profile, telemetry=telemetry),
            pre_partitioned=run_profile(
                profile, StrategyKind.PRE_PARTITIONED_REMOTE, telemetry=telemetry
            ),
            real_time=run_profile(
                profile, StrategyKind.REAL_TIME, telemetry=telemetry
            ),
        )
    return results


def render_table1(results: dict[str, Table1Result], scale: float) -> Table:
    table = Table(
        f"Table I: Effect of Data Parallelization (scale={scale})",
        [
            "Application",
            "Sequential (s)",
            "Pre-partitioned (s)",
            "Real-time (s)",
            "Speedup pre",
            "Speedup RT",
            "Paper pre",
            "Paper RT",
        ],
    )
    for name, result in results.items():
        paper = PAPER_TABLE1[name]
        table.add_row(
            [
                paper.app,
                result.sequential.makespan,
                result.pre_partitioned.makespan,
                result.real_time.makespan,
                result.speedup_pre,
                result.speedup_rt,
                paper.speedup_pre,
                paper.speedup_rt,
            ]
        )
        if not result.shape_holds():
            table.add_note(f"{paper.app}: SHAPE VIOLATION (expected seq > pre > real-time)")
    table.add_note(
        "paper absolute values (s): ALS 1258.80/789.39/696.70, BLAST 61200/4131.07/3794.90"
    )
    return table
