"""Extension experiment: FRIEDA vs transparent locality (Hadoop-like).

§I: MapReduce-style transparent data locality "works well for a
certain class of applications [but] often is less optimal for
applications that don't fit the paradigm". Both engines run on the
same substrate with data pre-resident (HDFS blocks vs FRIEDA
pre-partitioned-local), so the only difference is *who controls
placement*:

- **single-file tasks** — Hadoop's sweet spot: locality scheduling is
  near-perfect and matches FRIEDA,
- **pairwise tasks** (the ALS pattern) — FRIEDA's partition generator
  co-locates both inputs; random block placement can't, so a fraction
  of every Hadoop-like run reads one file remotely,
- **common-data tasks** (the BLAST pattern, one big file needed by
  every task) — transparent placement leaves the hot file on
  ``replication`` nodes and every other task streams it across the
  network, again and again.

Runnable via ``python -m repro.experiments baselines``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.hadooplike import HadoopLikeEngine
from repro.cloud.cluster import ClusterSpec
from repro.core.framework import RunOutcome
from repro.core.strategies import StrategyKind
from repro.data.files import DataFile, Dataset, synthetic_dataset
from repro.data.partition import PartitionScheme
from repro.engines.compute import FixedComputeModel
from repro.engines.simulated import SimulatedEngine
from repro.util.tables import Table
from repro.util.units import MB


@dataclass
class BaselineCell:
    workload: str
    engine: str
    outcome: RunOutcome

    @property
    def locality(self) -> float:
        return self.outcome.extra.get("locality_rate", 1.0)


def _cluster() -> ClusterSpec:
    return ClusterSpec(num_workers=4)


def run_baselines(scale: float = 0.1, *, seed: int = 0) -> list[BaselineCell]:
    cells: list[BaselineCell] = []
    n = max(8, int(round(80 * scale * 10)))  # 80 files at scale 0.1
    model = FixedComputeModel(2.0)

    # Workload 1: single-file tasks.
    single = synthetic_dataset("single", n, "6 MB", seed=seed)
    cells.append(
        BaselineCell(
            "single",
            "hadoop-like",
            HadoopLikeEngine(_cluster(), replication=2, seed=seed).run(
                single, compute_model=model, grouping=PartitionScheme.SINGLE
            ),
        )
    )
    cells.append(
        BaselineCell(
            "single",
            "frieda",
            SimulatedEngine(_cluster()).run(
                single,
                compute_model=model,
                strategy=StrategyKind.PRE_PARTITIONED_LOCAL,
                grouping=PartitionScheme.SINGLE,
            ),
        )
    )

    # Workload 2: pairwise tasks (the ALS pattern).
    pairwise = synthetic_dataset("pairwise", n, "6 MB", seed=seed + 1)
    cells.append(
        BaselineCell(
            "pairwise",
            "hadoop-like",
            HadoopLikeEngine(_cluster(), replication=2, seed=seed).run(
                pairwise, compute_model=model, grouping=PartitionScheme.PAIRWISE_ADJACENT
            ),
        )
    )
    cells.append(
        BaselineCell(
            "pairwise",
            "frieda",
            SimulatedEngine(_cluster()).run(
                pairwise,
                compute_model=model,
                strategy=StrategyKind.PRE_PARTITIONED_LOCAL,
                grouping=PartitionScheme.PAIRWISE_ADJACENT,
            ),
        )
    )

    # Workload 3: common-data tasks (the BLAST pattern): one hot file
    # paired with every query via ONE_TO_ALL; the pivot is large.
    queries = synthetic_dataset("queries", n, "20 KB", seed=seed + 2)
    pivot = DataFile("aadb.bin", int(120 * MB))  # sorts first: the pivot
    common = Dataset("common", [pivot, *queries.files])
    cells.append(
        BaselineCell(
            "common-data",
            "hadoop-like",
            HadoopLikeEngine(_cluster(), replication=2, seed=seed).run(
                common, compute_model=model, grouping=PartitionScheme.ONE_TO_ALL
            ),
        )
    )
    cells.append(
        BaselineCell(
            "common-data",
            "frieda",
            SimulatedEngine(_cluster()).run(
                common,
                compute_model=model,
                strategy=StrategyKind.REAL_TIME,
                grouping=PartitionScheme.ONE_TO_ALL,
            ),
        )
    )
    return cells


def render_baselines(cells: list[BaselineCell], scale: float) -> Table:
    table = Table(
        f"FRIEDA vs transparent locality (Hadoop-like), scale={scale}",
        ["Workload", "Engine", "Makespan (s)", "Remote bytes (MB)", "Locality"],
    )
    for cell in cells:
        table.add_row(
            [
                cell.workload,
                cell.engine,
                cell.outcome.makespan,
                cell.outcome.bytes_transferred / 1e6,
                f"{cell.locality:.0%}" if cell.engine == "hadoop-like" else "managed",
            ]
        )
    table.add_note(
        "single-file tasks: transparent locality is enough (§I 'works well "
        "for a certain class of applications')"
    )
    table.add_note(
        "pairwise: FRIEDA's partition generator co-locates both inputs — "
        "random block placement cannot ('less optimal for applications "
        "that don't fit the paradigm')"
    )
    table.add_note(
        "common-data: FRIEDA transfers the hot file once per node; the "
        "transparent engine re-streams it per remote task — ~2x the bytes "
        "at equal time here, and linearly worse as tasks grow"
    )
    return table


def shapes_hold(cells: list[BaselineCell]) -> bool:
    def cell(workload: str, engine: str) -> BaselineCell:
        return next(
            c for c in cells if c.workload == workload and c.engine == engine
        )

    # Hadoop-like is competitive on single-file tasks (within 25%)...
    if (
        cell("single", "hadoop-like").outcome.makespan
        > cell("single", "frieda").outcome.makespan * 1.25
    ):
        return False
    # ...loses on pairwise tasks (imperfect co-location)...
    if (
        cell("pairwise", "hadoop-like").outcome.makespan
        <= cell("pairwise", "frieda").outcome.makespan
    ):
        return False
    # ...and on common data it moves at least ~2x the bytes without
    # being any faster (the managed-placement benefit).
    hadoop_cd = cell("common-data", "hadoop-like").outcome
    frieda_cd = cell("common-data", "frieda").outcome
    if hadoop_cd.bytes_transferred < frieda_cd.bytes_transferred * 1.8:
        return False
    if frieda_cd.makespan > hadoop_cd.makespan * 1.05:
        return False
    return all(c.outcome.tasks_completed == c.outcome.tasks_total for c in cells)
