"""Extension experiment: the dollar side of the strategy choice.

The paper frames storage and data movement as *performance and cost*
trade-offs (§I, §III-A) but reports only seconds. With the billing
model (:mod:`repro.cloud.billing`) every run already carries a price;
this experiment puts makespan and cost side by side per strategy and
application, and computes the cost of one unit of speedup — the number
a practitioner actually budgets with.

Runnable via ``python -m repro.experiments cost``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.billing import PriceSheet
from repro.core.framework import RunOutcome
from repro.core.strategies import StrategyKind
from repro.engines.simulated import SimulationOptions
from repro.util.tables import Table
from repro.workloads import als_profile, blast_profile, run_profile, run_sequential_baseline

#: Per-second billing makes the cost/performance coupling visible at
#: sub-hour scales (2012 per-started-hour billing quantizes it away).
_PER_SECOND = SimulationOptions(price_sheet=PriceSheet(vm_billing_granularity_s=1.0))

COST_STRATEGIES = (
    StrategyKind.PRE_PARTITIONED_LOCAL,
    StrategyKind.PRE_PARTITIONED_REMOTE,
    StrategyKind.REAL_TIME,
)


@dataclass
class CostCell:
    """One (application, strategy) run with its bill."""

    app: str
    strategy: StrategyKind
    outcome: RunOutcome
    sequential: RunOutcome

    @property
    def dollars(self) -> float:
        return self.outcome.cost.total if self.outcome.cost else float("nan")

    @property
    def sequential_dollars(self) -> float:
        return self.sequential.cost.total if self.sequential.cost else float("nan")

    @property
    def speedup(self) -> float:
        return self.outcome.speedup_over(self.sequential)

    @property
    def dollars_per_speedup(self) -> float:
        """Marginal cost of each achieved 1x of speedup over sequential."""
        if self.speedup <= 0:
            return float("nan")
        return self.dollars / self.speedup


def run_cost(scale: float = 0.1, *, seed: int = 0) -> list[CostCell]:
    cells: list[CostCell] = []
    for name, profile in (
        ("als", als_profile(scale, seed=seed)),
        ("blast", blast_profile(scale, seed=seed)),
    ):
        sequential = run_sequential_baseline(profile, options=_PER_SECOND)
        for strategy in COST_STRATEGIES:
            outcome = run_profile(profile, strategy, options=_PER_SECOND)
            cells.append(
                CostCell(app=name, strategy=strategy, outcome=outcome, sequential=sequential)
            )
    return cells


def render_cost(cells: list[CostCell], scale: float) -> Table:
    table = Table(
        f"Cost/performance trade-off by strategy (scale={scale})",
        ["App", "Strategy", "Makespan (s)", "Cost ($)", "Speedup", "$ / speedup"],
    )
    for cell in cells:
        table.add_row(
            [
                cell.app.upper(),
                cell.strategy.value,
                cell.outcome.makespan,
                cell.dollars,
                cell.speedup,
                cell.dollars_per_speedup,
            ]
        )
    if cells:
        table.add_note(
            f"sequential baselines: ALS ${cells[0].sequential_dollars:.2f}, "
            f"BLAST ${cells[-1].sequential_dollars:.2f} (1 VM, per-second billing)"
        )
    table.add_note(
        "per-second billing; VM-time dominates, so on a fixed cluster the "
        "faster strategy is also the cheaper one — the time/cost coupling "
        "behind the paper's trade-off framing"
    )
    return table


def shapes_hold(cells: list[CostCell]) -> bool:
    """Within an application, cost must be non-decreasing in makespan
    (same cluster + per-second billing ⇒ billed time tracks wall time)."""
    for app in {c.app for c in cells}:
        app_cells = sorted(
            (c for c in cells if c.app == app), key=lambda c: c.outcome.makespan
        )
        for a, b in zip(app_cells, app_cells[1:]):
            if b.dollars < a.dollars * (1 - 1e-9):
                return False
    return True
