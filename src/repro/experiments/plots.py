"""Terminal rendering of the paper's figures.

The evaluation figures are stacked bar charts (transfer + execution per
strategy). :func:`stacked_bars` renders them as monospace horizontal
bars so ``python -m repro.experiments fig6 --plot`` shows the same
visual shape the paper prints, without any plotting dependency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

#: Glyphs for the two stacked segments (transfer, execution).
_TRANSFER_GLYPH = "▒"
_EXEC_GLYPH = "█"


@dataclass(frozen=True)
class Bar:
    """One stacked bar: a label plus (transfer, execution) seconds."""

    label: str
    transfer: float
    execution: float

    @property
    def total(self) -> float:
        return self.transfer + self.execution


def stacked_bars(
    title: str,
    bars: Sequence[Bar],
    *,
    width: int = 60,
    unit: str = "s",
) -> str:
    """Render stacked horizontal bars scaled to the longest total.

    >>> print(stacked_bars("demo", [Bar("a", 2, 1), Bar("b", 0, 1)]))
    ... # doctest: +SKIP
    """
    if width < 10:
        raise ValueError("width must be >= 10")
    lines = [title, "-" * len(title)]
    if not bars:
        lines.append("(no data)")
        return "\n".join(lines)
    longest = max(bar.total for bar in bars) or 1.0
    label_width = max(len(bar.label) for bar in bars)
    for bar in bars:
        t_cells = int(round(width * bar.transfer / longest))
        e_cells = int(round(width * bar.execution / longest))
        # Always show at least one cell for a nonzero segment.
        if bar.transfer > 0 and t_cells == 0:
            t_cells = 1
        if bar.execution > 0 and e_cells == 0:
            e_cells = 1
        lines.append(
            f"{bar.label.rjust(label_width)} |"
            f"{_TRANSFER_GLYPH * t_cells}{_EXEC_GLYPH * e_cells}"
            f" {bar.total:,.1f}{unit}"
        )
    lines.append(
        f"{'legend'.rjust(label_width)}  {_TRANSFER_GLYPH} transfer   {_EXEC_GLYPH} execution"
    )
    return "\n".join(lines)


def fig6_plot(results, scale: float) -> str:
    """Stacked-bar rendering of Figure 6 (both subplots)."""
    from repro.experiments.fig6 import FIG6_STRATEGIES

    sections = []
    for name, result in results.items():
        subplot = "a" if name == "als" else "b"
        bars = [
            Bar(
                strategy.value,
                result.outcomes[strategy].transfer_time,
                result.outcomes[strategy].execution_time,
            )
            for strategy in FIG6_STRATEGIES
        ]
        sections.append(
            stacked_bars(f"Figure 6{subplot}: {name.upper()} (scale={scale})", bars)
        )
    return "\n\n".join(sections)


def fig7_plot(results, scale: float) -> str:
    """Stacked-bar rendering of Figure 7 (both subplots)."""
    sections = []
    for name, result in results.items():
        subplot = "a" if name == "als" else "b"
        bars = [
            Bar("data_to_compute", result.move_data.transfer_time, result.move_data.execution_time),
            Bar("compute_to_data", result.move_compute.transfer_time, result.move_compute.execution_time),
        ]
        sections.append(
            stacked_bars(f"Figure 7{subplot}: {name.upper()} (scale={scale})", bars)
        )
    return "\n\n".join(sections)
