"""Experiment CLI: ``python -m repro.experiments <table1|fig6|fig7|all>``."""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.fig6 import render_fig6, run_fig6
from repro.experiments.fig7 import render_fig7, run_fig7
from repro.experiments.table1 import render_table1, run_table1
from repro.util.tables import render_table


def _emit(tables, as_csv: bool) -> None:
    for table in tables:
        if as_csv:
            print(table.to_csv())
        else:
            print(render_table(table))
        print()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="frieda-experiments",
        description="Regenerate the paper's Table I, Figure 6 and Figure 7.",
    )
    parser.add_argument(
        "experiment",
        choices=[
            "table1", "fig6", "fig7",
            "robustness", "chaos", "cost", "elasticity", "storage", "baselines",
            "report", "all",
        ],
        help="which table/figure to regenerate (robustness/chaos/cost/"
        "elasticity/storage/baselines are ablations this reproduction "
        "adds; report writes everything to REPORT.md)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale (1.0 = paper's full size; try 0.2 for a quick run)",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument("--csv", action="store_true", help="emit CSV instead of tables")
    parser.add_argument(
        "--plot", action="store_true", help="also render ASCII stacked-bar figures"
    )
    parser.add_argument(
        "--output", default="REPORT.md", help="output path for the report subcommand"
    )
    parser.add_argument(
        "--trace",
        metavar="OUT.json",
        default=None,
        help="record spans from every run into one Chrome/Perfetto "
        "trace-event JSON file (open in ui.perfetto.dev)",
    )
    parser.add_argument(
        "--metrics",
        metavar="OUT.json",
        default=None,
        help="write the aggregated metrics registry as flat JSON",
    )
    args = parser.parse_args(argv)

    telemetry = None
    if args.trace is not None or args.metrics is not None:
        from repro.telemetry import Telemetry

        telemetry = Telemetry(record=True)

    started = time.time()  # frieda: allow[wall-clock] -- user-facing CLI timing
    ok = True
    if args.experiment in ("table1", "all"):
        results = run_table1(args.scale, seed=args.seed, telemetry=telemetry)
        _emit([render_table1(results, args.scale)], args.csv)
        ok &= all(r.shape_holds() for r in results.values())
    if args.experiment in ("fig6", "all"):
        results = run_fig6(args.scale, seed=args.seed, telemetry=telemetry)
        _emit(render_fig6(results, args.scale), args.csv)
        if args.plot:
            from repro.experiments.plots import fig6_plot

            print(fig6_plot(results, args.scale))
            print()
        ok &= all(r.shape_holds() for r in results.values())
    if args.experiment in ("fig7", "all"):
        results = run_fig7(args.scale, seed=args.seed, telemetry=telemetry)
        _emit(render_fig7(results, args.scale), args.csv)
        if args.plot:
            from repro.experiments.plots import fig7_plot

            print(fig7_plot(results, args.scale))
            print()
        ok &= all(r.shape_holds() for r in results.values())
    if args.experiment == "robustness":
        from repro.experiments.robustness import (
            render_robustness,
            run_robustness,
            shapes_hold,
        )

        cells = run_robustness(min(args.scale, 0.25), seed=args.seed)
        _emit([render_robustness(cells, min(args.scale, 0.25))], args.csv)
        ok &= shapes_hold(cells)
    if args.experiment == "chaos":
        from repro.experiments.robustness import (
            chaos_digest,
            chaos_shapes_hold,
            render_chaos,
            run_chaos_sweep,
        )

        chaos_scale = min(args.scale, 0.1)
        chaos_cells = run_chaos_sweep(chaos_scale, seed=args.seed)
        _emit([render_chaos(chaos_cells, chaos_scale)], args.csv)
        # The digest line is the reproducibility contract: `make chaos`
        # runs the sweep twice and diffs these lines byte-for-byte.
        print(f"chaos digest: {chaos_digest(chaos_cells)}")
        ok &= chaos_shapes_hold(chaos_cells)
    if args.experiment == "cost":
        from repro.experiments import cost as cost_mod

        cost_cells = cost_mod.run_cost(min(args.scale, 0.25), seed=args.seed)
        _emit([cost_mod.render_cost(cost_cells, min(args.scale, 0.25))], args.csv)
        ok &= cost_mod.shapes_hold(cost_cells)
    if args.experiment == "elasticity":
        from repro.experiments import elasticity_exp

        el_cells = elasticity_exp.run_elasticity(min(args.scale, 0.25), seed=args.seed)
        _emit(
            [elasticity_exp.render_elasticity(el_cells, min(args.scale, 0.25))],
            args.csv,
        )
        ok &= elasticity_exp.shapes_hold(el_cells)
    if args.experiment == "storage":
        from repro.experiments import storage_exp

        st_cells = storage_exp.run_storage(min(args.scale, 0.25), seed=args.seed)
        _emit([storage_exp.render_storage(st_cells, min(args.scale, 0.25))], args.csv)
        ok &= storage_exp.shapes_hold(st_cells)
    if args.experiment == "baselines":
        from repro.experiments import baseline_exp

        bl_cells = baseline_exp.run_baselines(min(args.scale, 0.25), seed=args.seed)
        _emit(
            [baseline_exp.render_baselines(bl_cells, min(args.scale, 0.25))], args.csv
        )
        ok &= baseline_exp.shapes_hold(bl_cells)
    if args.experiment == "report":
        from repro.experiments.full_report import generate_report

        markdown, report_ok = generate_report(args.scale, seed=args.seed)
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(markdown)
        print(f"report written to {args.output}")
        ok &= report_ok
    if telemetry is not None:
        from repro.telemetry import write_chrome_trace, write_metrics_json

        if args.trace is not None:
            write_chrome_trace(telemetry, args.trace)
            print(f"trace written to {args.trace} ({len(telemetry.spans)} spans)")
        if args.metrics is not None:
            write_metrics_json(telemetry.metrics, args.metrics)
            print(f"metrics written to {args.metrics}")
    # frieda: allow[wall-clock] -- user-facing CLI timing
    print(f"[done in {time.time() - started:.1f}s wall; shapes {'OK' if ok else 'VIOLATED'}]")
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
