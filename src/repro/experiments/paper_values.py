"""The numbers the paper reports, for side-by-side comparison.

Only Table I carries absolute numbers in the text; Figures 6 and 7 are
described qualitatively (orderings and dominance), so their "paper"
columns here record the *expected shape* the reproduction must match.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PaperNumbers:
    """Table I of the paper (seconds)."""

    app: str
    sequential: float
    pre_partitioned: float
    real_time: float

    @property
    def speedup_pre(self) -> float:
        return self.sequential / self.pre_partitioned

    @property
    def speedup_rt(self) -> float:
        return self.sequential / self.real_time


PAPER_TABLE1 = {
    "als": PaperNumbers(app="ALS", sequential=1258.80, pre_partitioned=789.39, real_time=696.70),
    "blast": PaperNumbers(app="BLAST", sequential=61200.0, pre_partitioned=4131.07, real_time=3794.90),
}

#: Figure 6 expected orderings (makespan, best first).
#:
#: ALS: "local reads are faster" and real-time's overlap beats the
#: sequential-phase remote staging (§IV-B).
#: BLAST: transfer barely matters; "BLAST benefits from the inherent
#: load balancing in FRIEDA in the real-time strategy" — the pull
#: discipline beats *both* statically-chunked modes, whose makespan is
#: set by the unluckiest chunk.
FIG6_EXPECTED_ORDER = {
    "als": ["pre_partitioned_local", "real_time", "pre_partitioned_remote"],
    "blast": ["real_time", "pre_partitioned_local", "pre_partitioned_remote"],
}

#: Figure 7 expectations: ALS favours moving computation to data by a
#: wide margin; BLAST is "almost insensitive to the placement".
FIG7_EXPECTATIONS = {
    "als": "compute_to_data wins by a large factor (transfer dominates)",
    "blast": "placements within ~10% of each other (compute dominates)",
}
