"""Extension experiment: robustness under worker failures (§V-A).

The paper asserts FRIEDA's real-time mode isolates failed workers but
does not restart their tasks, and names recovery as future work. This
experiment quantifies both behaviours on the BLAST workload: completion
rate and makespan across a failure-rate (MTTF) sweep, paper-faithful
isolation vs the retry extension.

Not a figure in the paper — an ablation this reproduction adds, runnable
via ``python -m repro.experiments robustness``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.core.fault import RetryPolicy
from repro.core.framework import RunOutcome
from repro.core.strategies import StrategyKind
from repro.engines.simulated import SimulatedEngine, SimulationOptions
from repro.transfer.retry import TransferRetryPolicy
from repro.util.tables import Table
from repro.workloads import blast_profile


@dataclass
class RobustnessCell:
    """One (MTTF, policy) measurement."""

    mttf: float
    policy: str
    outcome: RunOutcome

    @property
    def completion_rate(self) -> float:
        if self.outcome.tasks_total == 0:
            return 1.0
        return self.outcome.tasks_completed / self.outcome.tasks_total


def run_robustness(
    scale: float = 0.1,
    *,
    mttfs: tuple[float, ...] = (2_000.0, 10_000.0, 50_000.0),
    seed: int = 0,
) -> list[RobustnessCell]:
    """Run the sweep; returns one cell per (MTTF, policy)."""
    profile = blast_profile(scale, seed=seed)
    cells: list[RobustnessCell] = []
    for mttf in mttfs:
        for name, policy in (
            ("paper_isolation", None),
            ("retry_extension", RetryPolicy.resilient(max_attempts=5)),
        ):
            engine = SimulatedEngine(profile.cluster, SimulationOptions(seed=seed))
            outcome = engine.run(
                profile.dataset,
                compute_model=profile.compute_model,
                command=profile.command,
                strategy=StrategyKind.REAL_TIME,
                grouping=profile.grouping,
                common_files=profile.common_files,
                failure_mttf=mttf,
                retry_policy=policy,
            )
            cells.append(RobustnessCell(mttf=mttf, policy=name, outcome=outcome))
    return cells


def render_robustness(cells: list[RobustnessCell], scale: float) -> Table:
    table = Table(
        f"Robustness sweep: BLAST real-time under worker failures (scale={scale})",
        ["MTTF (s)", "Policy", "Completed", "Lost", "Completion", "Makespan (s)"],
    )
    for cell in cells:
        table.add_row(
            [
                cell.mttf,
                cell.policy,
                f"{cell.outcome.tasks_completed}/{cell.outcome.tasks_total}",
                cell.outcome.tasks_lost,
                f"{cell.completion_rate:.1%}",
                cell.outcome.makespan,
            ]
        )
    table.add_note(
        "paper behaviour: failed workers isolated, their tasks lost; "
        "retry extension: lost tasks rerun on survivors (§V-A future work)"
    )
    return table


# ---------------------------------------------------------------------------
# Chaos sweep: every fault source at once (MTTF x link faults x policy).
# ---------------------------------------------------------------------------

#: The two ends of the recovery spectrum swept by the chaos grid. The
#: paper-faithful end loses whatever the faults touch; the resilient end
#: layers every extension (task retry, transfer retry, heartbeats).
CHAOS_POLICIES: tuple[tuple[str, RetryPolicy | None, TransferRetryPolicy], ...] = (
    ("paper_faithful", None, TransferRetryPolicy.paper_faithful()),
    (
        "resilient",
        RetryPolicy.resilient(max_attempts=5),
        TransferRetryPolicy.resilient(),
    ),
)


@dataclass
class ChaosCell:
    """One (MTTF, link-fault MTBF, policy) measurement."""

    mttf: float
    link_mtbf: float
    policy: str
    outcome: RunOutcome

    @property
    def completion_rate(self) -> float:
        if self.outcome.tasks_total == 0:
            return 1.0
        return self.outcome.tasks_completed / self.outcome.tasks_total


def run_chaos_sweep(
    scale: float = 0.05,
    *,
    mttfs: tuple[float, ...] = (3_000.0, 12_000.0),
    link_mtbfs: tuple[float, ...] = (150.0,),
    link_outage_s: float = 15.0,
    transfer_fault_rate: float = 0.15,
    silent_fraction: float = 0.5,
    seed: int = 0,
) -> list[ChaosCell]:
    """Every fault source at once, across the recovery spectrum.

    Each grid point injects random VM failures (half of them *silent*,
    detectable only via heartbeats), link degradation/blackout windows
    on every NIC, and transient per-transfer faults — then runs the
    BLAST workload under the paper-faithful policy and under the full
    resilient stack. All randomness is seeded, so for a given
    ``(scale, seed)`` the sweep is byte-identically reproducible
    (see :func:`chaos_digest`).
    """
    profile = blast_profile(scale, seed=seed)
    cells: list[ChaosCell] = []
    for mttf in mttfs:
        for link_mtbf in link_mtbfs:
            for name, task_retry, transfer_retry in CHAOS_POLICIES:
                options = SimulationOptions(
                    seed=seed,
                    heartbeat_interval=5.0,
                    transfer_retry=transfer_retry,
                )
                engine = SimulatedEngine(profile.cluster, options)
                outcome = engine.run(
                    profile.dataset,
                    compute_model=profile.compute_model,
                    command=profile.command,
                    strategy=StrategyKind.REAL_TIME,
                    grouping=profile.grouping,
                    common_files=profile.common_files,
                    failure_mttf=mttf,
                    failure_silent_fraction=silent_fraction,
                    link_fault_mtbf=link_mtbf,
                    link_fault_outage=link_outage_s,
                    transfer_fault_rate=transfer_fault_rate,
                    retry_policy=task_retry,
                )
                cells.append(
                    ChaosCell(
                        mttf=mttf, link_mtbf=link_mtbf, policy=name, outcome=outcome
                    )
                )
    return cells


def chaos_digest(cells: list[ChaosCell]) -> str:
    """SHA-256 over every outcome field chaos can move.

    Two sweeps with the same ``(scale, seed)`` must produce the same
    digest — this is the reproducibility contract ``make chaos`` checks
    by running the sweep twice and diffing the digests.
    """
    lines = []
    for cell in cells:
        o = cell.outcome
        lines.append(
            "|".join(
                str(x)
                for x in (
                    cell.mttf,
                    cell.link_mtbf,
                    cell.policy,
                    o.tasks_total,
                    o.tasks_completed,
                    o.tasks_failed,
                    o.tasks_lost,
                    repr(o.makespan),
                    repr(o.bytes_transferred),
                    o.extra["transfer_attempts"],
                    o.extra["transfer_failures"],
                    o.extra["link_faults"],
                    ",".join(o.extra["nodes_declared_dead"]),
                )
            )
        )
    return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()


def render_chaos(cells: list[ChaosCell], scale: float) -> Table:
    table = Table(
        f"Chaos sweep: BLAST real-time under combined faults (scale={scale})",
        [
            "MTTF (s)",
            "Link MTBF (s)",
            "Policy",
            "Completed",
            "Lost",
            "Failed",
            "Xfer attempts",
            "Xfer failed",
            "Link faults",
            "Silent deaths",
            "Makespan (s)",
        ],
    )
    for cell in cells:
        o = cell.outcome
        table.add_row(
            [
                cell.mttf,
                cell.link_mtbf,
                cell.policy,
                f"{o.tasks_completed}/{o.tasks_total}",
                o.tasks_lost,
                o.tasks_failed,
                o.extra["transfer_attempts"],
                o.extra["transfer_failures"],
                o.extra["link_faults"],
                len(o.extra["nodes_declared_dead"]),
                o.makespan,
            ]
        )
    table.add_note(
        "faults: random VM failures (50% silent, heartbeat-detected), "
        "link degradation/blackouts, transient transfer faults; "
        "resilient = task retry + transfer retry/backoff/timeout"
    )
    return table


def chaos_shapes_hold(cells: list[ChaosCell]) -> bool:
    """Resilient completes everything; paper-faithful never does better."""
    for cell in cells:
        if cell.policy == "resilient" and cell.completion_rate < 1.0:
            return False
    grid = {(c.mttf, c.link_mtbf, c.policy): c for c in cells}
    for (mttf, link_mtbf, policy), cell in grid.items():
        if policy != "paper_faithful":
            continue
        resilient = grid[(mttf, link_mtbf, "resilient")]
        if cell.completion_rate > resilient.completion_rate:
            return False
    return True


def shapes_hold(cells: list[RobustnessCell]) -> bool:
    """The retry extension never completes less than isolation at the
    same MTTF, and completion rates are monotone in MTTF per policy."""
    by_policy: dict[str, list[RobustnessCell]] = {}
    for cell in cells:
        by_policy.setdefault(cell.policy, []).append(cell)
    for mttf in {c.mttf for c in cells}:
        paper = next(c for c in cells if c.mttf == mttf and c.policy == "paper_isolation")
        retry = next(c for c in cells if c.mttf == mttf and c.policy == "retry_extension")
        if retry.completion_rate < paper.completion_rate:
            return False
    for policy_cells in by_policy.values():
        ordered = sorted(policy_cells, key=lambda c: c.mttf)
        for a, b in zip(ordered, ordered[1:]):
            if b.completion_rate < a.completion_rate - 1e-9:
                return False
    return True
