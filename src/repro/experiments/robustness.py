"""Extension experiment: robustness under worker failures (§V-A).

The paper asserts FRIEDA's real-time mode isolates failed workers but
does not restart their tasks, and names recovery as future work. This
experiment quantifies both behaviours on the BLAST workload: completion
rate and makespan across a failure-rate (MTTF) sweep, paper-faithful
isolation vs the retry extension.

Not a figure in the paper — an ablation this reproduction adds, runnable
via ``python -m repro.experiments robustness``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.fault import RetryPolicy
from repro.core.framework import RunOutcome
from repro.core.strategies import StrategyKind
from repro.engines.simulated import SimulatedEngine, SimulationOptions
from repro.util.tables import Table
from repro.workloads import blast_profile


@dataclass
class RobustnessCell:
    """One (MTTF, policy) measurement."""

    mttf: float
    policy: str
    outcome: RunOutcome

    @property
    def completion_rate(self) -> float:
        if self.outcome.tasks_total == 0:
            return 1.0
        return self.outcome.tasks_completed / self.outcome.tasks_total


def run_robustness(
    scale: float = 0.1,
    *,
    mttfs: tuple[float, ...] = (2_000.0, 10_000.0, 50_000.0),
    seed: int = 0,
) -> list[RobustnessCell]:
    """Run the sweep; returns one cell per (MTTF, policy)."""
    profile = blast_profile(scale, seed=seed)
    cells: list[RobustnessCell] = []
    for mttf in mttfs:
        for name, policy in (
            ("paper_isolation", None),
            ("retry_extension", RetryPolicy.resilient(max_attempts=5)),
        ):
            engine = SimulatedEngine(profile.cluster, SimulationOptions(seed=seed))
            outcome = engine.run(
                profile.dataset,
                compute_model=profile.compute_model,
                command=profile.command,
                strategy=StrategyKind.REAL_TIME,
                grouping=profile.grouping,
                common_files=profile.common_files,
                failure_mttf=mttf,
                retry_policy=policy,
            )
            cells.append(RobustnessCell(mttf=mttf, policy=name, outcome=outcome))
    return cells


def render_robustness(cells: list[RobustnessCell], scale: float) -> Table:
    table = Table(
        f"Robustness sweep: BLAST real-time under worker failures (scale={scale})",
        ["MTTF (s)", "Policy", "Completed", "Lost", "Completion", "Makespan (s)"],
    )
    for cell in cells:
        table.add_row(
            [
                cell.mttf,
                cell.policy,
                f"{cell.outcome.tasks_completed}/{cell.outcome.tasks_total}",
                cell.outcome.tasks_lost,
                f"{cell.completion_rate:.1%}",
                cell.outcome.makespan,
            ]
        )
    table.add_note(
        "paper behaviour: failed workers isolated, their tasks lost; "
        "retry extension: lost tasks rerun on survivors (§V-A future work)"
    )
    return table


def shapes_hold(cells: list[RobustnessCell]) -> bool:
    """The retry extension never completes less than isolation at the
    same MTTF, and completion rates are monotone in MTTF per policy."""
    by_policy: dict[str, list[RobustnessCell]] = {}
    for cell in cells:
        by_policy.setdefault(cell.policy, []).append(cell)
    for mttf in {c.mttf for c in cells}:
        paper = next(c for c in cells if c.mttf == mttf and c.policy == "paper_isolation")
        retry = next(c for c in cells if c.mttf == mttf and c.policy == "retry_extension")
        if retry.completion_rate < paper.completion_rate:
            return False
    for policy_cells in by_policy.values():
        ordered = sorted(policy_cells, key=lambda c: c.mttf)
        for a, b in zip(ordered, ordered[1:]):
            if b.completion_rate < a.completion_rate - 1e-9:
                return False
    return True
