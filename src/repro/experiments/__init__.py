"""Experiment reproductions: Table I, Figure 6, Figure 7.

Each module regenerates one table/figure of the paper's §IV and prints
the same rows/series next to the paper's reported values. Run them via
the CLI::

    python -m repro.experiments table1 [--scale 0.2]
    python -m repro.experiments fig6   [--scale 0.2]
    python -m repro.experiments fig7   [--scale 0.2]
    python -m repro.experiments all

``--scale`` shrinks the workload proportionally (default 1.0 = the
paper's full 1250 images / 7500 sequences).
"""

from repro.experiments.paper_values import PAPER_TABLE1, PaperNumbers
from repro.experiments.table1 import run_table1
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7

__all__ = [
    "PAPER_TABLE1",
    "PaperNumbers",
    "run_table1",
    "run_fig6",
    "run_fig7",
]
