"""Figure 6: Effect of Different Partitioning.

For each application, runs the three Fig 5 strategies —
pre-partitioned local, pre-partitioned remote, real-time — and reports
the transfer/execution decomposition the stacked bars plot:

- 6a (ALS): local fastest; pre-remote worst (sequential phases);
  real-time recovers most of the transfer by overlapping.
- 6b (BLAST): compute dominates every bar; real-time is best through
  load balancing, not transfer hiding.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.framework import RunOutcome
from repro.core.strategies import StrategyKind
from repro.experiments.paper_values import FIG6_EXPECTED_ORDER
from repro.util.tables import Table
from repro.workloads import als_profile, blast_profile, strategy_sweep

FIG6_STRATEGIES = (
    StrategyKind.PRE_PARTITIONED_LOCAL,
    StrategyKind.PRE_PARTITIONED_REMOTE,
    StrategyKind.REAL_TIME,
)


@dataclass
class Fig6Result:
    """Measured series for one subplot (one application)."""

    app: str
    outcomes: dict[StrategyKind, RunOutcome]

    def order_by_makespan(self) -> list[str]:
        ranked = sorted(self.outcomes.items(), key=lambda kv: kv[1].makespan)
        return [k.value for k, _ in ranked]

    def shape_holds(self) -> bool:
        return self.order_by_makespan() == FIG6_EXPECTED_ORDER[self.app]


def run_fig6(
    scale: float = 1.0, *, seed: int = 0, telemetry=None
) -> dict[str, Fig6Result]:
    results = {}
    for name, profile in (
        ("als", als_profile(scale, seed=seed)),
        ("blast", blast_profile(scale, seed=seed)),
    ):
        outcomes = strategy_sweep(profile, FIG6_STRATEGIES, telemetry=telemetry)
        results[name] = Fig6Result(app=name, outcomes=outcomes)
    return results


def render_fig6(results: dict[str, Fig6Result], scale: float) -> list[Table]:
    tables = []
    for name, result in results.items():
        table = Table(
            f"Figure 6{'a' if name == 'als' else 'b'}: {name.upper()} "
            f"partitioning comparison (scale={scale})",
            ["Strategy", "Transfer (s)", "Execution (s)", "Total (s)"],
        )
        for strategy in FIG6_STRATEGIES:
            outcome = result.outcomes[strategy]
            table.add_row(
                [
                    strategy.value,
                    outcome.transfer_time,
                    outcome.execution_time,
                    outcome.makespan,
                ]
            )
        order = " < ".join(result.order_by_makespan())
        table.add_note(f"measured order: {order}")
        table.add_note(f"expected order: {' < '.join(FIG6_EXPECTED_ORDER[name])}")
        if not result.shape_holds():
            table.add_note("SHAPE VIOLATION")
        tables.append(table)
    return tables
