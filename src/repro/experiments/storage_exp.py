"""Extension experiment: storage-tier comparison (§III-A).

"Cloud offers different storage options with different performance,
reliability, scalability and cost trade-offs. ... For our evaluation,
we focus on local and networked disks for comparison." This experiment
runs the ALS workload with its inputs homed on each tier:

- **local** — pre-partitioned local (data on worker disks; the
  VM-image-baked configuration),
- **master** — pulled in real time from the master's disk through its
  100 Mbit uplink,
- **network storage** — pulled in real time from the shared iSCSI-style
  tier, at several server-uplink bandwidths (the knob that decides
  whether the shared tier helps or hurts).

Runnable via ``python -m repro.experiments storage``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.framework import RunOutcome
from repro.core.strategies import StrategyKind
from repro.engines.simulated import SimulatedEngine
from repro.util.tables import Table
from repro.util.units import GB, Mbit
from repro.workloads import als_profile
from repro.workloads.scenarios import run_profile


@dataclass
class StorageCell:
    source: str
    outcome: RunOutcome


def run_storage(
    scale: float = 0.1,
    *,
    storage_server_bps: tuple[float, ...] = (50 * Mbit, 400 * Mbit),
    seed: int = 0,
) -> list[StorageCell]:
    profile = als_profile(scale, seed=seed)
    cells: list[StorageCell] = []
    # Local tier: data already on the workers.
    cells.append(
        StorageCell(
            source="local-disk",
            outcome=run_profile(profile, StrategyKind.PRE_PARTITIONED_LOCAL),
        )
    )
    # Master disk over the provisioned link.
    cells.append(
        StorageCell(
            source="master-disk",
            outcome=run_profile(profile, StrategyKind.REAL_TIME),
        )
    )
    # Shared network storage at each server bandwidth.
    for server_bps in storage_server_bps:
        spec = replace(
            profile.cluster,
            name=f"nstore-{int(server_bps / Mbit)}",
            network_storage_bytes=1000 * GB,
            network_storage_bps=max(server_bps, 400 * Mbit),
            network_storage_server_bps=server_bps,
        )
        engine = SimulatedEngine(spec)
        outcome = engine.run(
            profile.dataset,
            compute_model=profile.compute_model,
            command=profile.command,
            strategy=StrategyKind.REAL_TIME,
            grouping=profile.grouping,
            common_files=profile.common_files,
            data_source="network_storage",
        )
        cells.append(
            StorageCell(source=f"network-storage@{int(server_bps / Mbit)}Mbit", outcome=outcome)
        )
    return cells


def render_storage(cells: list[StorageCell], scale: float) -> Table:
    table = Table(
        f"Storage tier comparison: ALS real-time (scale={scale})",
        ["Data source", "Transfer (s)", "Execution (s)", "Total (s)"],
    )
    for cell in cells:
        table.add_row(
            [
                cell.source,
                cell.outcome.transfer_time,
                cell.outcome.execution_time,
                cell.outcome.makespan,
            ]
        )
    table.add_note(
        "local disk is the fastest tier but 'very limited' (§III-A); a "
        "shared tier beats the master's single uplink only when its server "
        "bandwidth exceeds the provisioned per-node rate"
    )
    return table


def shapes_hold(cells: list[StorageCell]) -> bool:
    """Local fastest; a fast storage server beats the master uplink; a
    slow one loses to it."""
    by_source = {c.source: c.outcome.makespan for c in cells}
    local = by_source.get("local-disk")
    master = by_source.get("master-disk")
    if local is None or master is None or local >= master:
        return False
    fast = [v for k, v in by_source.items() if k.startswith("network-storage@400")]
    slow = [v for k, v in by_source.items() if k.startswith("network-storage@50")]
    if fast and fast[0] >= master:
        return False
    if slow and slow[0] <= master:
        return False
    return all(c.outcome.all_tasks_ok for c in cells)
