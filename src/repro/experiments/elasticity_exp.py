"""Extension experiment: the value of elastic scale-out (§V-A).

"On-demand elasticity is considered to be one of the strengths of
cloud environments." The paper implements worker addition through the
controller but does not evaluate it; this experiment does: BLAST under
real-time partitioning, scaling from 4 nodes to 4+k mid-run, reporting
makespan and the marginal benefit of each added node.

Runnable via ``python -m repro.experiments elasticity``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.framework import RunOutcome
from repro.core.strategies import StrategyKind
from repro.engines.simulated import ElasticAction, SimulatedEngine
from repro.util.tables import Table
from repro.workloads import blast_profile


@dataclass
class ElasticityCell:
    added_nodes: int
    outcome: RunOutcome

    @property
    def makespan(self) -> float:
        return self.outcome.makespan


def run_elasticity(
    scale: float = 0.1,
    *,
    additions: tuple[int, ...] = (0, 1, 2, 4),
    add_at: float = 60.0,
    seed: int = 0,
) -> list[ElasticityCell]:
    profile = blast_profile(scale, seed=seed)
    cells: list[ElasticityCell] = []
    for count in additions:
        engine = SimulatedEngine(profile.cluster)
        outcome = engine.run(
            profile.dataset,
            compute_model=profile.compute_model,
            command=profile.command,
            strategy=StrategyKind.REAL_TIME,
            grouping=profile.grouping,
            common_files=profile.common_files,
            elasticity=[
                ElasticAction(time=add_at, action="add") for _ in range(count)
            ],
        )
        cells.append(ElasticityCell(added_nodes=count, outcome=outcome))
    return cells


def render_elasticity(cells: list[ElasticityCell], scale: float) -> Table:
    table = Table(
        f"Elastic scale-out: BLAST real-time, +k nodes mid-run (scale={scale})",
        ["Added nodes", "Makespan (s)", "Speedup vs static", "Cost ($)"],
    )
    base = cells[0].makespan if cells else 1.0
    for cell in cells:
        table.add_row(
            [
                cell.added_nodes,
                cell.makespan,
                base / cell.makespan,
                cell.outcome.cost.total if cell.outcome.cost else float("nan"),
            ]
        )
    table.add_note(
        "additions go through the controller (§V-A); new nodes receive the "
        "common database before computing, so tiny additions late in a run "
        "may not pay for their staging"
    )
    return table


def shapes_hold(cells: list[ElasticityCell]) -> bool:
    """More nodes never hurt, and at least one addition level helps."""
    ordered = sorted(cells, key=lambda c: c.added_nodes)
    for a, b in zip(ordered, ordered[1:]):
        if b.makespan > a.makespan * 1.02:  # allow staging noise
            return False
    if len(ordered) >= 2 and ordered[-1].makespan >= ordered[0].makespan:
        return False
    return all(c.outcome.all_tasks_ok for c in cells)
