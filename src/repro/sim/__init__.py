"""Discrete-event simulation kernel (from scratch, SimPy-flavoured).

The cloud substrate (:mod:`repro.cloud`) and the simulated FRIEDA engine
(:mod:`repro.engines`) run on this kernel. It provides:

- :class:`Environment` — the event loop with virtual time,
- :class:`Event` / :class:`Timeout` / condition events,
- :class:`Process` — generator-based coroutine processes with
  :meth:`Process.interrupt` (used for VM failure injection),
- resources (:class:`Resource`, :class:`Container`, :class:`Store`,
  :class:`FilterStore`) with FIFO queueing,
- :class:`Monitor` for time-series instrumentation.

Example::

    env = Environment()

    def ping(env):
        yield env.timeout(3)
        return "done"

    proc = env.process(ping(env))
    env.run()
    assert env.now == 3 and proc.value == "done"
"""

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    Timeout,
)
from repro.sim.resources import Container, FilterStore, Resource, Store
from repro.sim.monitor import Monitor, TraceRecord

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "Timeout",
    "Container",
    "FilterStore",
    "Resource",
    "Store",
    "Monitor",
    "TraceRecord",
]
