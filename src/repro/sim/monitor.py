"""Instrumentation for simulations.

:class:`Monitor` collects named time-series samples and interval
records; the simulated FRIEDA engine uses it to produce the
transfer-vs-execution decomposition that Figure 6 of the paper plots.

Since the telemetry layer landed, instrumented components emit spans
and events through :class:`repro.telemetry.Telemetry`; the monitor
consumes that stream through :class:`MonitorSink` — a span becomes an
:meth:`interval` and an event becomes a :meth:`sample` under the same
keys as before, so downstream figure code is unchanged.  Direct
``sample``/``interval`` calls remain supported for tests and ad-hoc
probes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.util.stats import RunningStats


@dataclass(frozen=True)
class TraceRecord:
    """One monitored point: a (time, key, value, tags) tuple."""

    time: float
    key: str
    value: Any
    tags: tuple[tuple[str, Any], ...] = ()


@dataclass
class Interval:
    """A labelled [start, end) interval (e.g. one task execution)."""

    key: str
    start: float
    end: float
    tags: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class Monitor:
    """Collects samples and intervals during a simulation run.

    The monitor is deliberately passive — components call
    :meth:`sample` / :meth:`interval`; nothing is recorded implicitly.

    ``records`` and ``intervals`` keep global insertion order for
    whole-run traversals; per-key indexes maintained at append time
    back :meth:`series` / :meth:`intervals_for` so per-key queries do
    not rescan every record ever collected.
    """

    def __init__(self) -> None:
        self.records: list[TraceRecord] = []
        self.intervals: list[Interval] = []
        self._stats: dict[str, RunningStats] = {}
        self._records_by_key: dict[str, list[TraceRecord]] = {}
        self._intervals_by_key: dict[str, list[Interval]] = {}

    def sample(self, time: float, key: str, value: Any, **tags: Any) -> None:
        """Record a point sample."""
        record = TraceRecord(time, key, value, tuple(sorted(tags.items())))
        self.records.append(record)
        self._records_by_key.setdefault(key, []).append(record)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            self._stats.setdefault(key, RunningStats()).add(float(value))

    def interval(self, key: str, start: float, end: float, **tags: Any) -> None:
        """Record a labelled time interval."""
        if end < start:
            raise ValueError(f"interval end {end} before start {start}")
        record = Interval(key, start, end, dict(tags))
        self.intervals.append(record)
        self._intervals_by_key.setdefault(key, []).append(record)

    def stats(self, key: str) -> RunningStats:
        """Summary statistics for a numeric sample key.

        A key that was never sampled yields an empty, *unregistered*
        stats object — reading must not mutate the monitor, or probing
        for a key's existence would create it.
        """
        stats = self._stats.get(key)
        return stats if stats is not None else RunningStats()

    def series(self, key: str) -> list[tuple[float, Any]]:
        """All (time, value) points recorded under ``key``."""
        return [(r.time, r.value) for r in self._records_by_key.get(key, ())]

    def intervals_for(self, key: str, **tags: Any) -> list[Interval]:
        """Intervals matching ``key`` and every given tag."""
        matching = self._intervals_by_key.get(key, ())
        if not tags:
            return list(matching)
        return [
            interval
            for interval in matching
            if all(interval.tags.get(k) == v for k, v in tags.items())
        ]

    def busy_time(self, key: str, **tags: Any) -> float:
        """Total duration across matching intervals (overlaps not merged)."""
        return sum(i.duration for i in self.intervals_for(key, **tags))

    def union_time(self, key: str, **tags: Any) -> float:
        """Duration of the union of matching intervals (overlaps merged).

        This is the honest way to answer "for how long was *any*
        transfer in flight" when flows overlap.
        """
        spans = sorted(
            ((i.start, i.end) for i in self.intervals_for(key, **tags)),
        )
        total = 0.0
        current_start: float | None = None
        current_end = 0.0
        for start, end in spans:
            if current_start is None:
                current_start, current_end = start, end
            elif start <= current_end:
                current_end = max(current_end, end)
            else:
                total += current_end - current_start
                current_start, current_end = start, end
        if current_start is not None:
            total += current_end - current_start
        return total


class MonitorSink:
    """Adapts a :class:`Monitor` to the telemetry stream.

    Finished spans land as intervals and instant events as samples,
    keyed identically to the pre-telemetry direct calls ("transfer",
    "exec", "staging", ...), which is what keeps :class:`Monitor` a
    thin consumer: figure code reads the same intervals it always did.
    Duck-typed against :class:`repro.telemetry.TelemetrySink` so this
    module stays import-light.
    """

    __slots__ = ("monitor",)

    def __init__(self, monitor: Monitor) -> None:
        self.monitor = monitor

    def on_span(self, span: Any) -> None:
        self.monitor.interval(span.key, span.start, span.end, **dict(span.tags))

    def on_event(self, event: Any) -> None:
        self.monitor.sample(event.time, event.key, event.value, **dict(event.tags))
