"""Instrumentation for simulations.

:class:`Monitor` collects named time-series samples and interval
records; the simulated FRIEDA engine uses it to produce the
transfer-vs-execution decomposition that Figure 6 of the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.util.stats import RunningStats


@dataclass(frozen=True)
class TraceRecord:
    """One monitored point: a (time, key, value, tags) tuple."""

    time: float
    key: str
    value: Any
    tags: tuple[tuple[str, Any], ...] = ()


@dataclass
class Interval:
    """A labelled [start, end) interval (e.g. one task execution)."""

    key: str
    start: float
    end: float
    tags: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class Monitor:
    """Collects samples and intervals during a simulation run.

    The monitor is deliberately passive — components call
    :meth:`sample` / :meth:`interval`; nothing is recorded implicitly.
    """

    def __init__(self) -> None:
        self.records: list[TraceRecord] = []
        self.intervals: list[Interval] = []
        self._stats: dict[str, RunningStats] = {}

    def sample(self, time: float, key: str, value: Any, **tags: Any) -> None:
        """Record a point sample."""
        self.records.append(TraceRecord(time, key, value, tuple(sorted(tags.items()))))
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            self._stats.setdefault(key, RunningStats()).add(float(value))

    def interval(self, key: str, start: float, end: float, **tags: Any) -> None:
        """Record a labelled time interval."""
        if end < start:
            raise ValueError(f"interval end {end} before start {start}")
        self.intervals.append(Interval(key, start, end, dict(tags)))

    def stats(self, key: str) -> RunningStats:
        """Summary statistics for a numeric sample key."""
        return self._stats.setdefault(key, RunningStats())

    def series(self, key: str) -> list[tuple[float, Any]]:
        """All (time, value) points recorded under ``key``."""
        return [(r.time, r.value) for r in self.records if r.key == key]

    def intervals_for(self, key: str, **tags: Any) -> list[Interval]:
        """Intervals matching ``key`` and every given tag."""
        out = []
        for interval in self.intervals:
            if interval.key != key:
                continue
            if all(interval.tags.get(k) == v for k, v in tags.items()):
                out.append(interval)
        return out

    def busy_time(self, key: str, **tags: Any) -> float:
        """Total duration across matching intervals (overlaps not merged)."""
        return sum(i.duration for i in self.intervals_for(key, **tags))

    def union_time(self, key: str, **tags: Any) -> float:
        """Duration of the union of matching intervals (overlaps merged).

        This is the honest way to answer "for how long was *any*
        transfer in flight" when flows overlap.
        """
        spans = sorted(
            ((i.start, i.end) for i in self.intervals_for(key, **tags)),
        )
        total = 0.0
        current_start: float | None = None
        current_end = 0.0
        for start, end in spans:
            if current_start is None:
                current_start, current_end = start, end
            elif start <= current_end:
                current_end = max(current_end, end)
            else:
                total += current_end - current_start
                current_start, current_end = start, end
        if current_start is not None:
            total += current_end - current_start
        return total
