"""Core discrete-event kernel: environment, events, processes.

The design follows the classic event-list simulation architecture (and
deliberately mirrors SimPy's public semantics so the concepts transfer):

- virtual time only advances when the event heap says so; between events
  execution is instantaneous,
- a :class:`Process` is a Python generator that ``yield``\\ s events and
  is resumed when they trigger,
- events carry a value or an exception; an exception delivered to a
  process is raised at the ``yield`` site,
- :meth:`Process.interrupt` injects an :class:`Interrupt` exception into
  a process *now* — this is how VM failures preempt running tasks.

Determinism: ties in time are broken by (priority, sequence number), so
two runs with the same seeds replay identically.
"""

from __future__ import annotations

import heapq
import importlib
import itertools
import os
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError

#: Scheduling priorities — URGENT beats NORMAL at equal timestamps.
URGENT = 0
NORMAL = 1

_PENDING = object()

_INF = float("inf")

#: Calendar-queue band split: events scheduled at least this many time
#: units ahead go into coarse far-future buckets (one O(1) append)
#: instead of the near heap, and are merged into the heap only when
#: virtual time approaches their bucket. This keeps the near heap sized
#: by *imminent* work, so long-lived timers (failure MTTFs, lease
#: renewals) at 100k-worker scale stop paying heap log-n on every
#: schedule. A power of two so ``bucket * width`` is exact in floats;
#: the value only affects performance, never ordering.
_FAR_HORIZON = 64.0


class Event:
    """A one-shot occurrence with a value and callbacks.

    Life-cycle: *pending* → *triggered* (scheduled on the heap) →
    *processed* (callbacks ran). An event triggers at most once; calling
    :meth:`succeed`/:meth:`fail` twice raises :class:`SimulationError`.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused", "_scheduled")

    def __init__(self, env: "Environment"):
        self.env = env
        #: Callables invoked with this event when it is processed.
        #: ``None`` once processed (catches late subscription bugs).
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._defused = False
        self._scheduled = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is (or was) on the heap."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True when the event succeeded. Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or the exception it failed with)."""
        if self._value is _PENDING:
            raise SimulationError("event not yet triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, NORMAL, 0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception propagates out of :meth:`Environment.run` unless a
        process (or :meth:`defused`) handles it.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self, NORMAL, 0.0)
        return self

    def trigger(self, event: "Event") -> None:
        """Mirror another (triggered) event's outcome onto this one."""
        if event._value is _PENDING:
            raise SimulationError("cannot mirror an untriggered event")
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def defuse(self) -> None:
        """Mark a failed event as handled so run() does not re-raise it."""
        self._defused = True

    def reset(self) -> "Event":
        """Return a *processed* event to the pending state for reuse.

        Components that wake on the same event over and over (e.g. the
        flow-network driver) can recycle one Event instead of allocating
        a fresh one per cycle. Only the owner may do this, and only once
        every other referent has observed the outcome — hence the guard
        on ``processed``.
        """
        if self.callbacks is not None:
            raise SimulationError("reset() on an event that was never processed")
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        self._defused = False
        self._scheduled = False
        return self

    def __repr__(self) -> str:
        state = (
            "pending"
            if not self.triggered
            else ("ok" if self._ok else f"failed({self._value!r})")
        )
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, NORMAL, delay)


class _Initialize(Event):
    """Kick-starts a freshly created process (internal)."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env._schedule(self, URGENT, 0.0)


class Interrupt(Exception):
    """Raised inside a process when :meth:`Process.interrupt` is called.

    ``cause`` carries arbitrary context (e.g. the failing VM).
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Process(Event):
    """A running coroutine. Also an event: triggers when the coroutine ends.

    The process's value is the generator's ``return`` value; if the
    generator raises, the process fails with that exception.
    """

    __slots__ = ("generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: str | None = None,
    ):
        if not hasattr(generator, "throw"):
            raise SimulationError(
                f"process() needs a generator, got {type(generator).__name__}"
            )
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        _Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the coroutine has not finished."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process as soon as possible."""
        self._interruption_cls(self, cause)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        self.env._active_process = self
        while True:
            try:
                if event._ok:
                    next_event = self.generator.send(event._value)
                else:
                    event._defused = True
                    next_event = self.generator.throw(event._value)
            except StopIteration as stop:
                self.env._active_process = None
                self._ok = True
                self._value = stop.value
                self.env._schedule(self, NORMAL, 0.0)
                return
            except BaseException as exc:
                self.env._active_process = None
                self._ok = False
                self._value = exc
                self.env._schedule(self, NORMAL, 0.0)
                return

            if not isinstance(next_event, self._event_cls):
                exc = SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                self.env._active_process = None
                self._ok = False
                self._value = exc
                self.env._schedule(self, NORMAL, 0.0)
                return

            if next_event.callbacks is not None:
                # Event still pending (or triggered but unprocessed):
                # subscribe and go to sleep.
                self._target = next_event
                next_event.callbacks.append(self._resume)
                self.env._active_process = None
                return
            # Event already processed — feed its outcome straight back in.
            event = next_event

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"


def _layered_classes(event_base: type) -> tuple[type, type, type, type]:
    """Build the kernel classes that stay in Python over ``event_base``.

    Interrupt delivery and the composite conditions only touch the
    public Event surface (``callbacks``, ``_ok``/``_value``/``_defused``
    assignment, ``succeed``/``fail``, ``env._schedule``), so the same
    class bodies run over either the pure-Python :class:`Event` or the C
    accelerator's Event. Called once per kernel flavor at import time.
    """

    class _Interruption(event_base):
        """Delivery vehicle for an interrupt (internal, URGENT priority)."""

        __slots__ = ("process",)

        def __init__(self, process: "Process", cause: Any):
            super().__init__(process.env)
            self.process = process
            self._ok = False
            self._value = Interrupt(cause)
            self._defused = True
            if process.triggered:
                raise SimulationError("cannot interrupt a terminated process")
            self.callbacks.append(self._deliver)
            self.env._schedule(self, URGENT, 0.0)

        def _deliver(self, event: "Event") -> None:
            process = self.process
            if process.triggered:  # terminated between schedule and delivery
                return
            # Unsubscribe from whatever the process was waiting on.
            target = process._target
            if target is not None and target.callbacks is not None:
                try:
                    target.callbacks.remove(process._resume)
                except ValueError:
                    pass
            process._target = None
            process._resume(self)

    class _Condition(event_base):
        """Base for AllOf/AnyOf composite events."""

        __slots__ = ("events", "_remaining")

        def __init__(self, env: "Environment", events: Iterable[Event]):
            super().__init__(env)
            self.events = list(events)
            for ev in self.events:
                if ev.env is not env:
                    raise SimulationError("condition mixes events from different envs")
            self._remaining = len(self.events)
            if not self.events:
                self.succeed(self._collect())
                return
            for ev in self.events:
                if ev.callbacks is None:
                    self._check(ev)
                else:
                    ev.callbacks.append(self._check)
                if self.triggered:
                    break

        def _collect(self) -> dict[Event, Any]:
            # Only *processed* events count as having happened: a Timeout
            # is born with its value set (triggered) but hasn't occurred
            # until its scheduled instant passes.
            return {ev: ev._value for ev in self.events if ev.processed}

        def _check(self, event: Event) -> None:
            raise NotImplementedError

    class AllOf(_Condition):
        """Triggers when all child events have triggered (fails fast on failure)."""

        __slots__ = ()

        def _check(self, event: Event) -> None:
            if self.triggered:
                return
            if not event._ok:
                event._defused = True
                self.fail(event._value)
                return
            self._remaining -= 1
            if self._remaining == 0:
                self.succeed(self._collect())

    class AnyOf(_Condition):
        """Triggers when the first child event triggers."""

        __slots__ = ()

        def _check(self, event: Event) -> None:
            if self.triggered:
                return
            if not event._ok:
                event._defused = True
                self.fail(event._value)
                return
            self.succeed(self._collect())

    return _Interruption, _Condition, AllOf, AnyOf


_Interruption, _Condition, AllOf, AnyOf = _layered_classes(Event)

# Bound on the class, not looked up as module globals: the bottom-of-
# module accelerator swap rebinds the module names, and the pure
# classes (still importable as PyEvent/PyEnvironment/...) must keep
# working as a self-contained kernel afterwards.
Process._event_cls = Event
Process._interruption_cls = _Interruption


class Environment:
    """The simulation event loop with virtual time.

    ``initial_time`` sets the clock origin; :meth:`run` drives the loop
    until the heap empties, a deadline passes, or a given event triggers.
    """

    #: Upper bound on the pooled-Timeout free list (see :meth:`pooled_timeout`).
    _TIMEOUT_POOL_MAX = 128

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = itertools.count()
        self._active_process: Optional[Process] = None
        self._timeout_pool: list[Timeout] = []
        #: Calendar-queue far band: bucket index -> unsorted entries.
        #: Entries carry the same (when, priority, seq, event) tuples as
        #: the heap, so merging preserves the total order exactly.
        self._far: dict[int, list[tuple[float, int, int, Event]]] = {}
        #: Lower time bound of the earliest pending far bucket (+inf
        #: when the far band is empty); popping from the near heap is
        #: safe only while its head is strictly below this boundary.
        self._far_next = _INF
        #: Optional callables invoked as ``tracer(env, event)`` right
        #: before each event's callbacks run (used by Monitor).
        self.tracers: list[Callable[["Environment", Event], None]] = []

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # Self-contained class references (see the note above the class):
    # these survive the module-level rebinding to the C accelerator.
    _event_cls = Event
    _timeout_cls = Timeout
    _process_cls = Process
    _all_of_cls = AllOf
    _any_of_cls = AnyOf

    # -- event factories -------------------------------------------------
    def event(self) -> Event:
        """Create a pending event the caller triggers manually."""
        return self._event_cls(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event triggering ``delay`` time units from now."""
        return self._timeout_cls(self, delay, value)

    def pooled_timeout(self, delay: float, value: Any = None) -> Timeout:
        """A :class:`Timeout` drawn from a free list when possible.

        For components that schedule wake-ups in a tight loop and can
        guarantee exclusive ownership of the timeout (no other process
        holds a reference once it is processed), recycling avoids one
        allocation per wake. Return the timeout with
        :meth:`release_timeout` once it has been processed.
        """
        pool = self._timeout_pool
        if pool and delay >= 0:
            timeout = pool.pop()
            timeout.reset()
            timeout._ok = True
            timeout._value = value
            timeout.delay = delay
            self._schedule(timeout, NORMAL, delay)
            return timeout
        return self._timeout_cls(self, delay, value)

    def release_timeout(self, timeout: Timeout) -> None:
        """Return a *processed* pooled timeout to the free list.

        Callers must guarantee no other component still references the
        timeout; unprocessed timeouts are silently ignored.
        """
        if timeout.callbacks is None and len(self._timeout_pool) < self._TIMEOUT_POOL_MAX:
            self._timeout_pool.append(timeout)

    def process(
        self, generator: Generator[Event, Any, Any], name: str | None = None
    ) -> Process:
        """Start a coroutine process."""
        return self._process_cls(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when every event in ``events`` has."""
        return self._all_of_cls(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when the first of ``events`` does."""
        return self._any_of_cls(self, events)

    # -- scheduling/loop --------------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float) -> None:
        if event._scheduled:
            raise SimulationError(f"{event!r} scheduled twice")
        event._scheduled = True
        when = self._now + delay
        if delay >= _FAR_HORIZON and when < _INF:
            # Far band: O(1) bucket append instead of a heap push. The
            # full ordering key rides along, so the eventual merge slots
            # the entry exactly where a direct push would have.
            bucket = int(when // _FAR_HORIZON)
            entry = (when, priority, next(self._seq), event)
            try:
                self._far[bucket].append(entry)
            except KeyError:
                self._far[bucket] = [entry]
                boundary = bucket * _FAR_HORIZON
                if boundary < self._far_next:
                    self._far_next = boundary
            return
        heapq.heappush(self._heap, (when, priority, next(self._seq), event))

    def _refill(self) -> None:
        """Merge due far buckets into the near heap.

        Called whenever the heap's head is not strictly below the
        earliest far-bucket boundary: every entry in bucket ``k`` has
        ``when >= k * _FAR_HORIZON``, so the head can only be dispatched
        once all buckets at or below it are merged.
        """
        heap = self._heap
        far = self._far
        while far:
            bucket = min(far)
            boundary = bucket * _FAR_HORIZON
            if heap and heap[0][0] < boundary:
                self._far_next = boundary
                return
            for entry in far.pop(bucket):
                heapq.heappush(heap, entry)
        self._far_next = _INF

    def peek(self) -> float:
        """Time of the next event, or +inf if nothing is scheduled."""
        heap = self._heap
        if self._far_next <= (heap[0][0] if heap else _INF):
            self._refill()
        return heap[0][0] if heap else _INF

    def step(self) -> None:
        """Process exactly one event."""
        heap = self._heap
        if self._far_next <= (heap[0][0] if heap else _INF):
            self._refill()
        if not heap:
            raise SimulationError("step() on an empty event heap")
        when, _prio, _seq, event = heapq.heappop(heap)
        self._now = when
        if self.tracers:
            for tracer in self.tracers:
                tracer(self, event)
        callbacks, event.callbacks = event.callbacks, None
        # Snapshot the outcome first: a callback may recycle the event
        # (Event.reset) once it has been delivered.
        ok, value = event._ok, event._value
        for callback in callbacks:
            callback(event)
        if not ok and not event._defused:
            # Nothing handled the failure: surface it to the driver.
            raise value

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the heap empties, time ``until`` passes, or event fires.

        Returns the event's value when ``until`` is an event.
        """
        if isinstance(until, self._event_cls):
            stop_event = until
            if stop_event.processed:
                if stop_event.ok:
                    return stop_event.value
                raise stop_event.value
            sentinel = [False]

            def _mark(_ev: Event) -> None:
                sentinel[0] = True

            stop_event.callbacks.append(_mark)
            step = self.step
            heap = self._heap
            while not sentinel[0] and (heap or self._far):
                step()
            if not stop_event.triggered:
                raise SimulationError(
                    "run(until=event) exhausted the heap before the event fired"
                )
            if stop_event.ok:
                return stop_event.value
            stop_event.defuse()
            raise stop_event.value

        deadline = _INF if until is None else float(until)
        if deadline != _INF and deadline < self._now:
            raise SimulationError(f"run(until={until}) is in the past (now={self._now})")
        heap = self._heap
        heappop, heappush = heapq.heappop, heapq.heappush
        while True:
            if self._far_next <= (heap[0][0] if heap else _INF):
                self._refill()
            if not heap or heap[0][0] > deadline:
                break
            # Batch dispatch: pop every entry at this instant in one
            # cycle instead of re-entering step() per event. Ordering is
            # still exactly (when, priority, seq): the batch comes off
            # the heap in key order, and the guard below re-merges the
            # un-dispatched remainder whenever a callback schedules a
            # same-instant event (an URGENT interrupt, say) that sorts
            # before it.
            when = heap[0][0]
            batch = [heappop(heap)]
            while heap and heap[0][0] == when:
                batch.append(heappop(heap))
            self._now = when
            tracers = self.tracers
            index, size = 0, len(batch)
            try:
                while index < size:
                    entry = batch[index]
                    if heap:
                        top = heap[0]
                        if top[0] == when and (
                            top[1] < entry[1]
                            or (top[1] == entry[1] and top[2] < entry[2])
                        ):
                            break  # preempted: remainder re-pushed below
                    index += 1
                    event = entry[3]
                    if tracers:
                        for tracer in tracers:
                            tracer(self, event)
                    callbacks, event.callbacks = event.callbacks, None
                    # Snapshot first: a callback may recycle the event.
                    ok, value = event._ok, event._value
                    for callback in callbacks:
                        callback(event)
                    if not ok and not event._defused:
                        raise value
            finally:
                # Preemption or an unhandled failure left part of the
                # batch un-dispatched: back onto the heap, unchanged.
                for entry in batch[index:]:
                    heappush(heap, entry)
        if deadline != _INF:
            self._now = deadline
        return None


# ---------------------------------------------------------------------------
# Optional C accelerator
# ---------------------------------------------------------------------------
#: The pure-Python implementations stay importable under these names no
#: matter which kernel is active (parity tests compare the two).
PyEvent, PyTimeout, PyProcess, PyEnvironment = Event, Timeout, Process, Environment

_ckern = None
if not os.environ.get("FRIEDA_PURE_KERNEL"):
    try:
        _ckern = importlib.import_module("repro.sim._ckern")
    except ImportError:
        _ckern = None

if _ckern is not None:
    # Rebind the public kernel names to the C implementations and
    # rebuild the Python-layered classes over the C Event base. Every
    # downstream import (`from repro.sim.kernel import Environment`)
    # happens after this module finishes executing, so the swap is
    # invisible except for speed. FRIEDA_PURE_KERNEL=1 (checked above)
    # forces the reference kernel instead.
    Event = _ckern.Event
    Timeout = _ckern.Timeout
    Process = _ckern.Process
    Environment = _ckern.Environment
    _PENDING = _ckern.PENDING
    _Interruption, _Condition, AllOf, AnyOf = _layered_classes(Event)
    _ckern._register(
        error=SimulationError,
        interruption=_Interruption,
        all_of=AllOf,
        any_of=AnyOf,
    )
