"""Core discrete-event kernel: environment, events, processes.

The design follows the classic event-list simulation architecture (and
deliberately mirrors SimPy's public semantics so the concepts transfer):

- virtual time only advances when the event heap says so; between events
  execution is instantaneous,
- a :class:`Process` is a Python generator that ``yield``\\ s events and
  is resumed when they trigger,
- events carry a value or an exception; an exception delivered to a
  process is raised at the ``yield`` site,
- :meth:`Process.interrupt` injects an :class:`Interrupt` exception into
  a process *now* — this is how VM failures preempt running tasks.

Determinism: ties in time are broken by (priority, sequence number), so
two runs with the same seeds replay identically.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError

#: Scheduling priorities — URGENT beats NORMAL at equal timestamps.
URGENT = 0
NORMAL = 1

_PENDING = object()


class Event:
    """A one-shot occurrence with a value and callbacks.

    Life-cycle: *pending* → *triggered* (scheduled on the heap) →
    *processed* (callbacks ran). An event triggers at most once; calling
    :meth:`succeed`/:meth:`fail` twice raises :class:`SimulationError`.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused", "_scheduled")

    def __init__(self, env: "Environment"):
        self.env = env
        #: Callables invoked with this event when it is processed.
        #: ``None`` once processed (catches late subscription bugs).
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._defused = False
        self._scheduled = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is (or was) on the heap."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True when the event succeeded. Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or the exception it failed with)."""
        if self._value is _PENDING:
            raise SimulationError("event not yet triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, NORMAL, 0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception propagates out of :meth:`Environment.run` unless a
        process (or :meth:`defused`) handles it.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self, NORMAL, 0.0)
        return self

    def trigger(self, event: "Event") -> None:
        """Mirror another (triggered) event's outcome onto this one."""
        if event._value is _PENDING:
            raise SimulationError("cannot mirror an untriggered event")
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def defuse(self) -> None:
        """Mark a failed event as handled so run() does not re-raise it."""
        self._defused = True

    def reset(self) -> "Event":
        """Return a *processed* event to the pending state for reuse.

        Components that wake on the same event over and over (e.g. the
        flow-network driver) can recycle one Event instead of allocating
        a fresh one per cycle. Only the owner may do this, and only once
        every other referent has observed the outcome — hence the guard
        on ``processed``.
        """
        if self.callbacks is not None:
            raise SimulationError("reset() on an event that was never processed")
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        self._defused = False
        self._scheduled = False
        return self

    def __repr__(self) -> str:
        state = (
            "pending"
            if not self.triggered
            else ("ok" if self._ok else f"failed({self._value!r})")
        )
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, NORMAL, delay)


class _Initialize(Event):
    """Kick-starts a freshly created process (internal)."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env._schedule(self, URGENT, 0.0)


class Interrupt(Exception):
    """Raised inside a process when :meth:`Process.interrupt` is called.

    ``cause`` carries arbitrary context (e.g. the failing VM).
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class _Interruption(Event):
    """Delivery vehicle for an interrupt (internal, URGENT priority)."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: Any):
        super().__init__(process.env)
        self.process = process
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        if process.triggered:
            raise SimulationError("cannot interrupt a terminated process")
        self.callbacks.append(self._deliver)
        self.env._schedule(self, URGENT, 0.0)

    def _deliver(self, event: "Event") -> None:
        process = self.process
        if process.triggered:  # terminated between schedule and delivery
            return
        # Unsubscribe from whatever the process was waiting on.
        target = process._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(process._resume)
            except ValueError:
                pass
        process._target = None
        process._resume(self)


class Process(Event):
    """A running coroutine. Also an event: triggers when the coroutine ends.

    The process's value is the generator's ``return`` value; if the
    generator raises, the process fails with that exception.
    """

    __slots__ = ("generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: str | None = None,
    ):
        if not hasattr(generator, "throw"):
            raise SimulationError(
                f"process() needs a generator, got {type(generator).__name__}"
            )
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        _Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the coroutine has not finished."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process as soon as possible."""
        _Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        self.env._active_process = self
        while True:
            try:
                if event._ok:
                    next_event = self.generator.send(event._value)
                else:
                    event._defused = True
                    next_event = self.generator.throw(event._value)
            except StopIteration as stop:
                self.env._active_process = None
                self._ok = True
                self._value = stop.value
                self.env._schedule(self, NORMAL, 0.0)
                return
            except BaseException as exc:
                self.env._active_process = None
                self._ok = False
                self._value = exc
                self.env._schedule(self, NORMAL, 0.0)
                return

            if not isinstance(next_event, Event):
                exc = SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                self.env._active_process = None
                self._ok = False
                self._value = exc
                self.env._schedule(self, NORMAL, 0.0)
                return

            if next_event.callbacks is not None:
                # Event still pending (or triggered but unprocessed):
                # subscribe and go to sleep.
                self._target = next_event
                next_event.callbacks.append(self._resume)
                self.env._active_process = None
                return
            # Event already processed — feed its outcome straight back in.
            event = next_event

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("condition mixes events from different envs")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed(self._collect())
            return
        for ev in self.events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)
            if self.triggered:
                break

    def _collect(self) -> dict[Event, Any]:
        # Only *processed* events count as having happened: a Timeout is
        # born with its value set (triggered) but hasn't occurred until
        # its scheduled instant passes.
        return {ev: ev._value for ev in self.events if ev.processed}

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when all child events have triggered (fails fast on failure)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Triggers when the first child event triggers."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._collect())


class Environment:
    """The simulation event loop with virtual time.

    ``initial_time`` sets the clock origin; :meth:`run` drives the loop
    until the heap empties, a deadline passes, or a given event triggers.
    """

    #: Upper bound on the pooled-Timeout free list (see :meth:`pooled_timeout`).
    _TIMEOUT_POOL_MAX = 128

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = itertools.count()
        self._active_process: Optional[Process] = None
        self._timeout_pool: list[Timeout] = []
        #: Optional callables invoked as ``tracer(env, event)`` right
        #: before each event's callbacks run (used by Monitor).
        self.tracers: list[Callable[["Environment", Event], None]] = []

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- event factories -------------------------------------------------
    def event(self) -> Event:
        """Create a pending event the caller triggers manually."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event triggering ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def pooled_timeout(self, delay: float, value: Any = None) -> Timeout:
        """A :class:`Timeout` drawn from a free list when possible.

        For components that schedule wake-ups in a tight loop and can
        guarantee exclusive ownership of the timeout (no other process
        holds a reference once it is processed), recycling avoids one
        allocation per wake. Return the timeout with
        :meth:`release_timeout` once it has been processed.
        """
        pool = self._timeout_pool
        if pool and delay >= 0:
            timeout = pool.pop()
            timeout.reset()
            timeout._ok = True
            timeout._value = value
            timeout.delay = delay
            self._schedule(timeout, NORMAL, delay)
            return timeout
        return Timeout(self, delay, value)

    def release_timeout(self, timeout: Timeout) -> None:
        """Return a *processed* pooled timeout to the free list.

        Callers must guarantee no other component still references the
        timeout; unprocessed timeouts are silently ignored.
        """
        if timeout.callbacks is None and len(self._timeout_pool) < self._TIMEOUT_POOL_MAX:
            self._timeout_pool.append(timeout)

    def process(
        self, generator: Generator[Event, Any, Any], name: str | None = None
    ) -> Process:
        """Start a coroutine process."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when every event in ``events`` has."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when the first of ``events`` does."""
        return AnyOf(self, events)

    # -- scheduling/loop --------------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float) -> None:
        if event._scheduled:
            raise SimulationError(f"{event!r} scheduled twice")
        event._scheduled = True
        heapq.heappush(
            self._heap, (self._now + delay, priority, next(self._seq), event)
        )

    def peek(self) -> float:
        """Time of the next event, or +inf if the heap is empty."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise SimulationError("step() on an empty event heap")
        when, _prio, _seq, event = heapq.heappop(self._heap)
        self._now = when
        if self.tracers:
            for tracer in self.tracers:
                tracer(self, event)
        callbacks, event.callbacks = event.callbacks, None
        # Snapshot the outcome first: a callback may recycle the event
        # (Event.reset) once it has been delivered.
        ok, value = event._ok, event._value
        for callback in callbacks:
            callback(event)
        if not ok and not event._defused:
            # Nothing handled the failure: surface it to the driver.
            raise value

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the heap empties, time ``until`` passes, or event fires.

        Returns the event's value when ``until`` is an event.
        """
        if isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                if stop_event.ok:
                    return stop_event.value
                raise stop_event.value
            sentinel = [False]

            def _mark(_ev: Event) -> None:
                sentinel[0] = True

            stop_event.callbacks.append(_mark)
            step = self.step
            heap = self._heap
            while heap and not sentinel[0]:
                step()
            if not stop_event.triggered:
                raise SimulationError(
                    "run(until=event) exhausted the heap before the event fired"
                )
            if stop_event.ok:
                return stop_event.value
            stop_event.defuse()
            raise stop_event.value

        deadline = float("inf") if until is None else float(until)
        if deadline != float("inf") and deadline < self._now:
            raise SimulationError(f"run(until={until}) is in the past (now={self._now})")
        step = self.step
        heap = self._heap
        while heap and heap[0][0] <= deadline:
            step()
        if deadline != float("inf"):
            self._now = deadline
        return None
