/* C accelerator for the discrete-event kernel (repro.sim.kernel).
 *
 * Implements Event, Timeout, Process, and Environment as C types with
 * exactly the semantics of the pure-Python reference implementation in
 * kernel.py: (when, priority, seq) heap ordering, the Event life-cycle
 * (pending -> triggered -> processed), generator-based processes with
 * interrupt delivery, the timeout pool, and run(until=...) in all three
 * forms. The Python classes layered on top (conditions, interruption
 * delivery, resource requests) subclass the C Event; the hooks they
 * need — settable _ok/_value/_defused/_scheduled, a `callbacks` list,
 * `_schedule`, an identity-stable bound `_resume` — are all exposed.
 *
 * The heap is a C array of {when, prio, seq, event} structs, so pushes
 * and pops never allocate tuples; Process._resume drives generators
 * with PyIter_Send, so each step of a process costs no exception
 * machinery. kernel.py loads this module when available and rebinds its
 * public names; set FRIEDA_PURE_KERNEL=1 to force the Python kernel.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>
#include <string.h>

#define URGENT_PRIO 0
#define NORMAL_PRIO 1
#define TIMEOUT_POOL_MAX 128

/* Filled in by _register() from kernel.py (strong refs, never freed). */
static PyObject *SimError = NULL;        /* repro.errors.SimulationError */
static PyObject *InterruptionCls = NULL; /* kernel._Interruption */
static PyObject *AllOfCls = NULL;        /* kernel.AllOf */
static PyObject *AnyOfCls = NULL;        /* kernel.AnyOf */

static PyObject *Pending = NULL; /* the _PENDING sentinel */

static PyObject *
sim_error(void)
{
    /* SimulationError before registration would be an import-order bug;
     * fall back to RuntimeError so the failure is at least visible. */
    return SimError ? SimError : PyExc_RuntimeError;
}

/* ------------------------------------------------------------------ */
/* Event                                                              */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    PyObject *env;       /* Environment (set once by __init__) */
    PyObject *callbacks; /* list while pending, None once processed */
    PyObject *value;     /* Pending sentinel until triggered */
    PyObject *ok;        /* None / True / False */
    char defused;
    char scheduled;
} EventObject;

static PyTypeObject Event_Type;
static PyTypeObject Timeout_Type;
static PyTypeObject Process_Type;
static PyTypeObject Environment_Type;

typedef struct {
    double when;
    int prio;
    long long seq;
    PyObject *event; /* owned */
} HeapEntry;

typedef struct {
    PyObject_HEAD
    double now;
    HeapEntry *heap;
    Py_ssize_t heap_len;
    Py_ssize_t heap_cap;
    long long seq;
    PyObject *active;  /* active process or None */
    PyObject *pool;    /* list of recycled Timeouts */
    PyObject *tracers; /* list of tracer callables */
} EnvObject;

static int env_schedule_internal(EnvObject *env, PyObject *event, int prio,
                                 double delay);

static const char *
short_type_name(PyObject *obj)
{
    const char *name = Py_TYPE(obj)->tp_name;
    const char *dot = strrchr(name, '.');
    return dot ? dot + 1 : name;
}

static int
event_init_base(EventObject *self, PyObject *env)
{
    if (!PyObject_TypeCheck(env, &Environment_Type)) {
        PyErr_Format(PyExc_TypeError,
                     "Event() needs a kernel Environment, got %.100s",
                     Py_TYPE(env)->tp_name);
        return -1;
    }
    PyObject *callbacks = PyList_New(0);
    if (callbacks == NULL)
        return -1;
    Py_XSETREF(self->env, Py_NewRef(env));
    Py_XSETREF(self->callbacks, callbacks);
    Py_XSETREF(self->value, Py_NewRef(Pending));
    Py_XSETREF(self->ok, Py_NewRef(Py_None));
    self->defused = 0;
    self->scheduled = 0;
    return 0;
}

static int
event_init(PyObject *op, PyObject *args, PyObject *kwds)
{
    PyObject *env;
    static char *kwlist[] = {"env", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O:Event", kwlist, &env))
        return -1;
    return event_init_base((EventObject *)op, env);
}

static int
event_traverse(PyObject *op, visitproc visit, void *arg)
{
    EventObject *self = (EventObject *)op;
    Py_VISIT(self->env);
    Py_VISIT(self->callbacks);
    Py_VISIT(self->value);
    Py_VISIT(self->ok);
    return 0;
}

static int
event_clear(PyObject *op)
{
    EventObject *self = (EventObject *)op;
    Py_CLEAR(self->env);
    Py_CLEAR(self->callbacks);
    Py_CLEAR(self->value);
    Py_CLEAR(self->ok);
    return 0;
}

static void
event_dealloc(PyObject *op)
{
    PyObject_GC_UnTrack(op);
    event_clear(op);
    Py_TYPE(op)->tp_free(op);
}

static PyObject *
event_repr(PyObject *op)
{
    EventObject *self = (EventObject *)op;
    const char *name = short_type_name(op);
    if (self->value == Pending || self->value == NULL)
        return PyUnicode_FromFormat("<%s pending at %p>", name, op);
    int truthy = PyObject_IsTrue(self->ok ? self->ok : Py_None);
    if (truthy < 0)
        return NULL;
    if (truthy)
        return PyUnicode_FromFormat("<%s ok at %p>", name, op);
    return PyUnicode_FromFormat("<%s failed(%R) at %p>", name, op, self->value);
}

/* shared by succeed()/fail() */
static PyObject *
event_trigger_internal(EventObject *self, PyObject *ok, PyObject *value)
{
    if (self->env == NULL ||
        !PyObject_TypeCheck(self->env, &Environment_Type)) {
        PyErr_SetString(sim_error(), "event not bound to an environment");
        return NULL;
    }
    if (self->value != Pending) {
        PyObject *repr = PyObject_Repr((PyObject *)self);
        if (repr == NULL)
            return NULL;
        PyErr_Format(sim_error(), "%U already triggered", repr);
        Py_DECREF(repr);
        return NULL;
    }
    Py_XSETREF(self->ok, Py_NewRef(ok));
    Py_XSETREF(self->value, Py_NewRef(value));
    if (env_schedule_internal((EnvObject *)self->env, (PyObject *)self,
                              NORMAL_PRIO, 0.0) < 0)
        return NULL;
    return Py_NewRef((PyObject *)self);
}

static PyObject *
event_succeed(PyObject *op, PyObject *args, PyObject *kwds)
{
    PyObject *value = Py_None;
    static char *kwlist[] = {"value", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|O:succeed", kwlist, &value))
        return NULL;
    return event_trigger_internal((EventObject *)op, Py_True, value);
}

static PyObject *
event_fail(PyObject *op, PyObject *exc)
{
    if (!PyExceptionInstance_Check(exc)) {
        PyErr_Format(PyExc_TypeError, "fail() needs an exception, got %R", exc);
        return NULL;
    }
    return event_trigger_internal((EventObject *)op, Py_False, exc);
}

static PyObject *
event_mirror(PyObject *op, PyObject *other)
{
    if (!PyObject_TypeCheck(other, &Event_Type)) {
        PyErr_SetString(PyExc_TypeError, "trigger() needs an Event");
        return NULL;
    }
    EventObject *src = (EventObject *)other;
    if (src->value == Pending) {
        PyErr_SetString(sim_error(), "cannot mirror an untriggered event");
        return NULL;
    }
    int truthy = PyObject_IsTrue(src->ok);
    if (truthy < 0)
        return NULL;
    PyObject *res = event_trigger_internal(
        (EventObject *)op, truthy ? Py_True : Py_False, src->value);
    if (res == NULL)
        return NULL;
    Py_DECREF(res);
    Py_RETURN_NONE;
}

static PyObject *
event_defuse(PyObject *op, PyObject *noarg)
{
    (void)noarg;
    ((EventObject *)op)->defused = 1;
    Py_RETURN_NONE;
}

static PyObject *
event_reset(PyObject *op, PyObject *noarg)
{
    (void)noarg;
    EventObject *self = (EventObject *)op;
    if (self->callbacks != Py_None) {
        PyErr_SetString(sim_error(),
                        "reset() on an event that was never processed");
        return NULL;
    }
    PyObject *callbacks = PyList_New(0);
    if (callbacks == NULL)
        return NULL;
    Py_XSETREF(self->callbacks, callbacks);
    Py_XSETREF(self->value, Py_NewRef(Pending));
    Py_XSETREF(self->ok, Py_NewRef(Py_None));
    self->defused = 0;
    self->scheduled = 0;
    return Py_NewRef(op);
}

static PyObject *
event_get_triggered(PyObject *op, void *closure)
{
    (void)closure;
    return PyBool_FromLong(((EventObject *)op)->value != Pending);
}

static PyObject *
event_get_processed(PyObject *op, void *closure)
{
    (void)closure;
    return PyBool_FromLong(((EventObject *)op)->callbacks == Py_None);
}

static PyObject *
event_get_ok(PyObject *op, void *closure)
{
    (void)closure;
    EventObject *self = (EventObject *)op;
    if (self->ok == Py_None) {
        PyErr_SetString(sim_error(), "event not yet triggered");
        return NULL;
    }
    return Py_NewRef(self->ok);
}

static PyObject *
event_get_value(PyObject *op, void *closure)
{
    (void)closure;
    EventObject *self = (EventObject *)op;
    if (self->value == Pending) {
        PyErr_SetString(sim_error(), "event not yet triggered");
        return NULL;
    }
    return Py_NewRef(self->value);
}

/* raw slots the Python subclasses assign directly */
static PyObject *
event_get_raw_ok(PyObject *op, void *closure)
{
    (void)closure;
    return Py_NewRef(((EventObject *)op)->ok);
}

static int
event_set_raw_ok(PyObject *op, PyObject *value, void *closure)
{
    (void)closure;
    if (value == NULL) {
        PyErr_SetString(PyExc_AttributeError, "cannot delete _ok");
        return -1;
    }
    Py_XSETREF(((EventObject *)op)->ok, Py_NewRef(value));
    return 0;
}

static PyObject *
event_get_raw_value(PyObject *op, void *closure)
{
    (void)closure;
    return Py_NewRef(((EventObject *)op)->value);
}

static int
event_set_raw_value(PyObject *op, PyObject *value, void *closure)
{
    (void)closure;
    if (value == NULL) {
        PyErr_SetString(PyExc_AttributeError, "cannot delete _value");
        return -1;
    }
    Py_XSETREF(((EventObject *)op)->value, Py_NewRef(value));
    return 0;
}

static PyObject *
event_get_defused(PyObject *op, void *closure)
{
    (void)closure;
    return PyBool_FromLong(((EventObject *)op)->defused);
}

static int
event_set_defused(PyObject *op, PyObject *value, void *closure)
{
    (void)closure;
    int truthy = PyObject_IsTrue(value ? value : Py_False);
    if (truthy < 0)
        return -1;
    ((EventObject *)op)->defused = (char)truthy;
    return 0;
}

static PyObject *
event_get_scheduled(PyObject *op, void *closure)
{
    (void)closure;
    return PyBool_FromLong(((EventObject *)op)->scheduled);
}

static int
event_set_scheduled(PyObject *op, PyObject *value, void *closure)
{
    (void)closure;
    int truthy = PyObject_IsTrue(value ? value : Py_False);
    if (truthy < 0)
        return -1;
    ((EventObject *)op)->scheduled = (char)truthy;
    return 0;
}

static PyMethodDef event_methods[] = {
    {"succeed", (PyCFunction)(void (*)(void))event_succeed,
     METH_VARARGS | METH_KEYWORDS, "Trigger the event successfully."},
    {"fail", event_fail, METH_O, "Trigger the event with an exception."},
    {"trigger", event_mirror, METH_O,
     "Mirror another (triggered) event's outcome onto this one."},
    {"defuse", event_defuse, METH_NOARGS,
     "Mark a failed event as handled."},
    {"reset", event_reset, METH_NOARGS,
     "Return a processed event to the pending state for reuse."},
    {NULL, NULL, 0, NULL},
};

static PyMemberDef event_members[] = {
    {"env", T_OBJECT, offsetof(EventObject, env), READONLY,
     "Owning environment."},
    {"callbacks", T_OBJECT, offsetof(EventObject, callbacks), 0,
     "Callables run when the event is processed (None afterwards)."},
    {NULL, 0, 0, 0, NULL},
};

static PyGetSetDef event_getset[] = {
    {"triggered", event_get_triggered, NULL,
     "True once the event has a value.", NULL},
    {"processed", event_get_processed, NULL,
     "True once callbacks have run.", NULL},
    {"ok", event_get_ok, NULL, "True when the event succeeded.", NULL},
    {"value", event_get_value, NULL, "The event's value.", NULL},
    {"_ok", event_get_raw_ok, event_set_raw_ok, NULL, NULL},
    {"_value", event_get_raw_value, event_set_raw_value, NULL, NULL},
    {"_defused", event_get_defused, event_set_defused, NULL, NULL},
    {"_scheduled", event_get_scheduled, event_set_scheduled, NULL, NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyTypeObject Event_Type = {
    PyVarObject_HEAD_INIT(NULL, 0).tp_name = "repro.sim._ckern.Event",
    .tp_basicsize = sizeof(EventObject),
    .tp_dealloc = event_dealloc,
    .tp_repr = event_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "A one-shot occurrence with a value and callbacks.",
    .tp_traverse = event_traverse,
    .tp_clear = event_clear,
    .tp_methods = event_methods,
    .tp_members = event_members,
    .tp_getset = event_getset,
    .tp_init = event_init,
    .tp_new = PyType_GenericNew,
};

/* ------------------------------------------------------------------ */
/* Timeout                                                            */
/* ------------------------------------------------------------------ */

typedef struct {
    EventObject base;
    double delay;
} TimeoutObject;

static int
timeout_init(PyObject *op, PyObject *args, PyObject *kwds)
{
    PyObject *env, *value = Py_None;
    double delay;
    static char *kwlist[] = {"env", "delay", "value", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "Od|O:Timeout", kwlist, &env,
                                     &delay, &value))
        return -1;
    if (delay < 0) {
        PyObject *delay_obj = PyFloat_FromDouble(delay);
        if (delay_obj != NULL) {
            PyErr_Format(sim_error(), "negative timeout delay: %S", delay_obj);
            Py_DECREF(delay_obj);
        }
        return -1;
    }
    TimeoutObject *self = (TimeoutObject *)op;
    if (event_init_base(&self->base, env) < 0)
        return -1;
    self->delay = delay;
    Py_XSETREF(self->base.ok, Py_NewRef(Py_True));
    Py_XSETREF(self->base.value, Py_NewRef(value));
    return env_schedule_internal((EnvObject *)env, op, NORMAL_PRIO, delay);
}

static PyMemberDef timeout_members[] = {
    {"delay", T_DOUBLE, offsetof(TimeoutObject, delay), 0,
     "Delay after creation at which the timeout fires."},
    {NULL, 0, 0, 0, NULL},
};

static PyTypeObject Timeout_Type = {
    PyVarObject_HEAD_INIT(NULL, 0).tp_name = "repro.sim._ckern.Timeout",
    .tp_basicsize = sizeof(TimeoutObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "An event that triggers `delay` time units after creation.",
    .tp_members = timeout_members,
    .tp_base = &Event_Type,
    .tp_init = timeout_init,
    /* Static GC types must spell out traverse/clear themselves (the
     * readiness check runs before slot inheritance); the Event pair is
     * exact for Timeout's extra C double. */
    .tp_traverse = event_traverse,
    .tp_clear = event_clear,
};

/* ------------------------------------------------------------------ */
/* Process                                                            */
/* ------------------------------------------------------------------ */

typedef struct {
    EventObject base;
    PyObject *generator;
    PyObject *target; /* event currently waited on, or None */
    PyObject *name;
    PyObject *resume; /* cached bound _resume (identity-stable) */
} ProcessObject;

static PyObject *process_resume(PyObject *op, PyObject *event);

static PyMethodDef process_resume_def = {
    "_resume", process_resume, METH_O,
    "Advance the generator with the outcome of an event.",
};

static int
process_init(PyObject *op, PyObject *args, PyObject *kwds)
{
    PyObject *env, *generator, *name = Py_None;
    static char *kwlist[] = {"env", "generator", "name", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "OO|O:Process", kwlist, &env,
                                     &generator, &name))
        return -1;
    if (!PyObject_HasAttrString(generator, "throw")) {
        PyErr_Format(sim_error(), "process() needs a generator, got %.100s",
                     Py_TYPE(generator)->tp_name);
        return -1;
    }
    ProcessObject *self = (ProcessObject *)op;
    if (event_init_base(&self->base, env) < 0)
        return -1;
    Py_XSETREF(self->generator, Py_NewRef(generator));
    int use_fallback = (name == Py_None);
    if (!use_fallback) {
        int truthy = PyObject_IsTrue(name);
        if (truthy < 0)
            return -1;
        use_fallback = !truthy;
    }
    if (use_fallback) {
        PyObject *gen_name = PyObject_GetAttrString(generator, "__name__");
        if (gen_name == NULL) {
            PyErr_Clear();
            gen_name = PyUnicode_FromString("process");
            if (gen_name == NULL)
                return -1;
        }
        Py_XSETREF(self->name, gen_name);
    }
    else {
        Py_XSETREF(self->name, Py_NewRef(name));
    }
    Py_XSETREF(self->target, Py_NewRef(Py_None));
    if (self->resume == NULL) {
        PyObject *resume = PyCFunction_New(&process_resume_def, op);
        if (resume == NULL)
            return -1;
        self->resume = resume;
    }
    /* _Initialize: a plain URGENT event whose only callback resumes the
     * fresh process (same scheduling as the pure-Python kernel). */
    EventObject *kick =
        (EventObject *)Event_Type.tp_alloc(&Event_Type, 0);
    if (kick == NULL)
        return -1;
    if (event_init_base(kick, env) < 0) {
        Py_DECREF(kick);
        return -1;
    }
    Py_XSETREF(kick->ok, Py_NewRef(Py_True));
    Py_XSETREF(kick->value, Py_NewRef(Py_None));
    if (PyList_Append(kick->callbacks, self->resume) < 0) {
        Py_DECREF(kick);
        return -1;
    }
    int rc = env_schedule_internal((EnvObject *)env, (PyObject *)kick,
                                   URGENT_PRIO, 0.0);
    Py_DECREF(kick);
    return rc;
}

static int
process_traverse(PyObject *op, visitproc visit, void *arg)
{
    ProcessObject *self = (ProcessObject *)op;
    Py_VISIT(self->generator);
    Py_VISIT(self->target);
    Py_VISIT(self->name);
    Py_VISIT(self->resume);
    return event_traverse(op, visit, arg);
}

static int
process_clear(PyObject *op)
{
    ProcessObject *self = (ProcessObject *)op;
    Py_CLEAR(self->generator);
    Py_CLEAR(self->target);
    Py_CLEAR(self->name);
    Py_CLEAR(self->resume);
    return event_clear(op);
}

static void
process_dealloc(PyObject *op)
{
    PyObject_GC_UnTrack(op);
    process_clear(op);
    Py_TYPE(op)->tp_free(op);
}

static PyObject *
process_repr(PyObject *op)
{
    ProcessObject *self = (ProcessObject *)op;
    return PyUnicode_FromFormat("<Process %R %s>", self->name,
                                self->base.value == Pending ? "alive" : "done");
}

static PyObject *
process_get_is_alive(PyObject *op, void *closure)
{
    (void)closure;
    return PyBool_FromLong(((ProcessObject *)op)->base.value == Pending);
}

static PyObject *
process_get_resume(PyObject *op, void *closure)
{
    (void)closure;
    return Py_NewRef(((ProcessObject *)op)->resume);
}

static PyObject *
process_interrupt(PyObject *op, PyObject *args, PyObject *kwds)
{
    PyObject *cause = Py_None;
    static char *kwlist[] = {"cause", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|O:interrupt", kwlist,
                                     &cause))
        return NULL;
    if (InterruptionCls == NULL) {
        PyErr_SetString(PyExc_RuntimeError, "_ckern not registered");
        return NULL;
    }
    PyObject *interruption =
        PyObject_CallFunctionObjArgs(InterruptionCls, op, cause, NULL);
    if (interruption == NULL)
        return NULL;
    Py_DECREF(interruption);
    Py_RETURN_NONE;
}

/* Finish the process event (generator returned or raised). */
static int
process_finish(ProcessObject *self, EnvObject *env, PyObject *ok,
               PyObject *value_stolen)
{
    Py_XSETREF(env->active, Py_NewRef(Py_None));
    Py_XSETREF(self->base.ok, Py_NewRef(ok));
    Py_XSETREF(self->base.value, value_stolen);
    return env_schedule_internal(env, (PyObject *)self, NORMAL_PRIO, 0.0);
}

static PyObject *
process_resume(PyObject *op, PyObject *event)
{
    ProcessObject *self = (ProcessObject *)op;
    EnvObject *env = (EnvObject *)self->base.env;
    Py_XSETREF(env->active, Py_NewRef(op));

    PyObject *current = Py_NewRef(event);
    for (;;) {
        EventObject *evt = (EventObject *)current;
        PyObject *result = NULL;
        PySendResult sres;
        int truthy = PyObject_IsTrue(evt->ok);
        if (truthy < 0) {
            Py_DECREF(current);
            return NULL;
        }
        if (truthy) {
            sres = PyIter_Send(self->generator, evt->value, &result);
        }
        else {
            evt->defused = 1;
            result = PyObject_CallMethod(self->generator, "throw", "O",
                                         evt->value);
            if (result != NULL) {
                sres = PYGEN_NEXT;
            }
            else if (PyErr_ExceptionMatches(PyExc_StopIteration)) {
                PyObject *etype, *eval, *etb;
                PyErr_Fetch(&etype, &eval, &etb);
                PyErr_NormalizeException(&etype, &eval, &etb);
                result = eval ? PyObject_GetAttrString(eval, "value") : NULL;
                Py_XDECREF(etype);
                Py_XDECREF(eval);
                Py_XDECREF(etb);
                if (result == NULL)
                    result = Py_NewRef(Py_None);
                sres = PYGEN_RETURN;
            }
            else {
                sres = PYGEN_ERROR;
            }
        }
        Py_DECREF(current);

        if (sres == PYGEN_RETURN) {
            if (process_finish(self, env, Py_True, result) < 0)
                return NULL;
            Py_RETURN_NONE;
        }
        if (sres == PYGEN_ERROR) {
            /* Capture the exception instance as the process's failure
             * value (matches `except BaseException as exc`). */
            PyObject *etype, *eval, *etb;
            PyErr_Fetch(&etype, &eval, &etb);
            PyErr_NormalizeException(&etype, &eval, &etb);
            if (eval == NULL)
                eval = Py_NewRef(Py_None);
            if (etb != NULL)
                PyException_SetTraceback(eval, etb);
            Py_XDECREF(etype);
            Py_XDECREF(etb);
            if (process_finish(self, env, Py_False, eval) < 0)
                return NULL;
            Py_RETURN_NONE;
        }

        /* PYGEN_NEXT: the generator yielded `result`. */
        if (!PyObject_TypeCheck(result, &Event_Type)) {
            PyObject *msg = PyUnicode_FromFormat(
                "process %R yielded a non-event: %R", self->name, result);
            Py_DECREF(result);
            if (msg == NULL)
                return NULL;
            PyObject *exc = PyObject_CallFunctionObjArgs(sim_error(), msg, NULL);
            Py_DECREF(msg);
            if (exc == NULL)
                return NULL;
            if (process_finish(self, env, Py_False, exc) < 0)
                return NULL;
            Py_RETURN_NONE;
        }
        EventObject *next_event = (EventObject *)result;
        if (next_event->callbacks != Py_None) {
            /* Still pending (or triggered but unprocessed): subscribe. */
            if (PyList_Check(next_event->callbacks)) {
                if (PyList_Append(next_event->callbacks, self->resume) < 0) {
                    Py_DECREF(result);
                    return NULL;
                }
            }
            else {
                PyObject *rc = PyObject_CallMethod(next_event->callbacks,
                                                   "append", "O", self->resume);
                if (rc == NULL) {
                    Py_DECREF(result);
                    return NULL;
                }
                Py_DECREF(rc);
            }
            Py_XSETREF(self->target, result);
            Py_XSETREF(env->active, Py_NewRef(Py_None));
            Py_RETURN_NONE;
        }
        /* Already processed: feed its outcome straight back in. */
        current = result;
    }
}

static PyMethodDef process_methods[] = {
    {"interrupt", (PyCFunction)(void (*)(void))process_interrupt,
     METH_VARARGS | METH_KEYWORDS,
     "Throw Interrupt into the process as soon as possible."},
    {NULL, NULL, 0, NULL},
};

static PyMemberDef process_members[] = {
    {"generator", T_OBJECT, offsetof(ProcessObject, generator), READONLY,
     "The coroutine driven by this process."},
    {"name", T_OBJECT, offsetof(ProcessObject, name), 0, "Process name."},
    {"_target", T_OBJECT, offsetof(ProcessObject, target), 0,
     "Event the process is currently waiting on."},
    {NULL, 0, 0, 0, NULL},
};

static PyGetSetDef process_getset[] = {
    {"is_alive", process_get_is_alive, NULL,
     "True while the coroutine has not finished.", NULL},
    {"_resume", process_get_resume, NULL,
     "Identity-stable bound resume callback.", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyTypeObject Process_Type = {
    PyVarObject_HEAD_INIT(NULL, 0).tp_name = "repro.sim._ckern.Process",
    .tp_basicsize = sizeof(ProcessObject),
    .tp_dealloc = process_dealloc,
    .tp_repr = process_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "A running coroutine; also an event that triggers when it ends.",
    .tp_traverse = process_traverse,
    .tp_clear = process_clear,
    .tp_methods = process_methods,
    .tp_members = process_members,
    .tp_getset = process_getset,
    .tp_base = &Event_Type,
    .tp_init = process_init,
};

/* ------------------------------------------------------------------ */
/* Environment                                                        */
/* ------------------------------------------------------------------ */

static int
heap_push(EnvObject *env, double when, int prio, long long seq,
          PyObject *event)
{
    if (env->heap_len == env->heap_cap) {
        Py_ssize_t cap = env->heap_cap ? env->heap_cap * 2 : 64;
        HeapEntry *heap = PyMem_Realloc(env->heap, cap * sizeof(HeapEntry));
        if (heap == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        env->heap = heap;
        env->heap_cap = cap;
    }
    HeapEntry *heap = env->heap;
    Py_ssize_t pos = env->heap_len++;
    while (pos > 0) {
        Py_ssize_t parent = (pos - 1) >> 1;
        HeapEntry *p = &heap[parent];
        if (p->when < when ||
            (p->when == when &&
             (p->prio < prio || (p->prio == prio && p->seq < seq))))
            break;
        heap[pos] = *p;
        pos = parent;
    }
    heap[pos].when = when;
    heap[pos].prio = prio;
    heap[pos].seq = seq;
    heap[pos].event = Py_NewRef(event);
    return 0;
}

/* Pop the root; caller owns the returned event reference. */
static HeapEntry
heap_pop(EnvObject *env)
{
    HeapEntry *heap = env->heap;
    HeapEntry top = heap[0];
    Py_ssize_t len = --env->heap_len;
    if (len > 0) {
        HeapEntry last = heap[len];
        Py_ssize_t pos = 0;
        for (;;) {
            Py_ssize_t child = 2 * pos + 1;
            if (child >= len)
                break;
            if (child + 1 < len) {
                HeapEntry *a = &heap[child], *b = &heap[child + 1];
                if (b->when < a->when ||
                    (b->when == a->when &&
                     (b->prio < a->prio ||
                      (b->prio == a->prio && b->seq < a->seq))))
                    child += 1;
            }
            HeapEntry *c = &heap[child];
            if (last.when < c->when ||
                (last.when == c->when &&
                 (last.prio < c->prio ||
                  (last.prio == c->prio && last.seq < c->seq))))
                break;
            heap[pos] = *c;
            pos = child;
        }
        heap[pos] = last;
    }
    return top;
}

static int
env_schedule_internal(EnvObject *env, PyObject *event, int prio, double delay)
{
    EventObject *evt = (EventObject *)event;
    if (evt->scheduled) {
        PyObject *repr = PyObject_Repr(event);
        if (repr == NULL)
            return -1;
        PyErr_Format(sim_error(), "%U scheduled twice", repr);
        Py_DECREF(repr);
        return -1;
    }
    evt->scheduled = 1;
    return heap_push(env, env->now + delay, prio, env->seq++, event);
}

static int
env_init(PyObject *op, PyObject *args, PyObject *kwds)
{
    double initial_time = 0.0;
    static char *kwlist[] = {"initial_time", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|d:Environment", kwlist,
                                     &initial_time))
        return -1;
    EnvObject *self = (EnvObject *)op;
    self->now = initial_time;
    self->seq = 0;
    PyObject *pool = PyList_New(0);
    PyObject *tracers = PyList_New(0);
    if (pool == NULL || tracers == NULL) {
        Py_XDECREF(pool);
        Py_XDECREF(tracers);
        return -1;
    }
    Py_XSETREF(self->pool, pool);
    Py_XSETREF(self->tracers, tracers);
    Py_XSETREF(self->active, Py_NewRef(Py_None));
    return 0;
}

static int
env_traverse(PyObject *op, visitproc visit, void *arg)
{
    EnvObject *self = (EnvObject *)op;
    for (Py_ssize_t i = 0; i < self->heap_len; i++)
        Py_VISIT(self->heap[i].event);
    Py_VISIT(self->active);
    Py_VISIT(self->pool);
    Py_VISIT(self->tracers);
    return 0;
}

static int
env_clear(PyObject *op)
{
    EnvObject *self = (EnvObject *)op;
    for (Py_ssize_t i = 0; i < self->heap_len; i++)
        Py_CLEAR(self->heap[i].event);
    self->heap_len = 0;
    Py_CLEAR(self->active);
    Py_CLEAR(self->pool);
    Py_CLEAR(self->tracers);
    return 0;
}

static void
env_dealloc(PyObject *op)
{
    PyObject_GC_UnTrack(op);
    env_clear(op);
    PyMem_Free(((EnvObject *)op)->heap);
    Py_TYPE(op)->tp_free(op);
}

static PyObject *
env_get_now(PyObject *op, void *closure)
{
    (void)closure;
    return PyFloat_FromDouble(((EnvObject *)op)->now);
}

static PyObject *
env_get_active(PyObject *op, void *closure)
{
    (void)closure;
    return Py_NewRef(((EnvObject *)op)->active);
}

static PyObject *
env_event(PyObject *op, PyObject *noarg)
{
    (void)noarg;
    EventObject *event =
        (EventObject *)Event_Type.tp_alloc(&Event_Type, 0);
    if (event == NULL)
        return NULL;
    if (event_init_base(event, op) < 0) {
        Py_DECREF(event);
        return NULL;
    }
    return (PyObject *)event;
}

static PyObject *
timeout_new_internal(EnvObject *env, double delay, PyObject *delay_obj,
                     PyObject *value)
{
    if (delay < 0) {
        PyErr_Format(sim_error(), "negative timeout delay: %S", delay_obj);
        return NULL;
    }
    TimeoutObject *timeout =
        (TimeoutObject *)Timeout_Type.tp_alloc(&Timeout_Type, 0);
    if (timeout == NULL)
        return NULL;
    timeout->delay = delay;
    if (event_init_base(&timeout->base, (PyObject *)env) < 0) {
        Py_DECREF(timeout);
        return NULL;
    }
    Py_XSETREF(timeout->base.ok, Py_NewRef(Py_True));
    Py_XSETREF(timeout->base.value, Py_NewRef(value));
    if (env_schedule_internal(env, (PyObject *)timeout, NORMAL_PRIO, delay) <
        0) {
        Py_DECREF(timeout);
        return NULL;
    }
    return (PyObject *)timeout;
}

static PyObject *
env_timeout(PyObject *op, PyObject *args, PyObject *kwds)
{
    PyObject *delay_obj, *value = Py_None;
    static char *kwlist[] = {"delay", "value", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O|O:timeout", kwlist,
                                     &delay_obj, &value))
        return NULL;
    double delay = PyFloat_AsDouble(delay_obj);
    if (delay == -1.0 && PyErr_Occurred())
        return NULL;
    return timeout_new_internal((EnvObject *)op, delay, delay_obj, value);
}

static PyObject *
env_pooled_timeout(PyObject *op, PyObject *args, PyObject *kwds)
{
    PyObject *delay_obj, *value = Py_None;
    static char *kwlist[] = {"delay", "value", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O|O:pooled_timeout", kwlist,
                                     &delay_obj, &value))
        return NULL;
    double delay = PyFloat_AsDouble(delay_obj);
    if (delay == -1.0 && PyErr_Occurred())
        return NULL;
    EnvObject *env = (EnvObject *)op;
    Py_ssize_t size = PyList_GET_SIZE(env->pool);
    if (size > 0 && delay >= 0) {
        PyObject *item = PyList_GET_ITEM(env->pool, size - 1);
        Py_INCREF(item);
        if (PyList_SetSlice(env->pool, size - 1, size, NULL) < 0) {
            Py_DECREF(item);
            return NULL;
        }
        TimeoutObject *timeout = (TimeoutObject *)item;
        PyObject *callbacks = PyList_New(0);
        if (callbacks == NULL) {
            Py_DECREF(item);
            return NULL;
        }
        Py_XSETREF(timeout->base.callbacks, callbacks);
        Py_XSETREF(timeout->base.ok, Py_NewRef(Py_True));
        Py_XSETREF(timeout->base.value, Py_NewRef(value));
        timeout->base.defused = 0;
        timeout->base.scheduled = 0;
        timeout->delay = delay;
        if (env_schedule_internal(env, item, NORMAL_PRIO, delay) < 0) {
            Py_DECREF(item);
            return NULL;
        }
        return item;
    }
    return timeout_new_internal(env, delay, delay_obj, value);
}

static PyObject *
env_release_timeout(PyObject *op, PyObject *timeout)
{
    EnvObject *env = (EnvObject *)op;
    if (PyObject_TypeCheck(timeout, &Event_Type) &&
        ((EventObject *)timeout)->callbacks == Py_None &&
        PyList_GET_SIZE(env->pool) < TIMEOUT_POOL_MAX) {
        if (PyList_Append(env->pool, timeout) < 0)
            return NULL;
    }
    Py_RETURN_NONE;
}

static PyObject *
env_process(PyObject *op, PyObject *args, PyObject *kwds)
{
    PyObject *generator, *name = Py_None;
    static char *kwlist[] = {"generator", "name", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O|O:process", kwlist,
                                     &generator, &name))
        return NULL;
    return PyObject_CallFunctionObjArgs((PyObject *)&Process_Type, op,
                                        generator, name, NULL);
}

static PyObject *
env_all_of(PyObject *op, PyObject *events)
{
    if (AllOfCls == NULL) {
        PyErr_SetString(PyExc_RuntimeError, "_ckern not registered");
        return NULL;
    }
    return PyObject_CallFunctionObjArgs(AllOfCls, op, events, NULL);
}

static PyObject *
env_any_of(PyObject *op, PyObject *events)
{
    if (AnyOfCls == NULL) {
        PyErr_SetString(PyExc_RuntimeError, "_ckern not registered");
        return NULL;
    }
    return PyObject_CallFunctionObjArgs(AnyOfCls, op, events, NULL);
}

static PyObject *
env_schedule(PyObject *op, PyObject *args)
{
    PyObject *event;
    int prio;
    double delay;
    if (!PyArg_ParseTuple(args, "Oid:_schedule", &event, &prio, &delay))
        return NULL;
    if (!PyObject_TypeCheck(event, &Event_Type)) {
        PyErr_SetString(PyExc_TypeError, "_schedule() needs an Event");
        return NULL;
    }
    if (env_schedule_internal((EnvObject *)op, event, prio, delay) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
env_peek(PyObject *op, PyObject *noarg)
{
    (void)noarg;
    EnvObject *env = (EnvObject *)op;
    return PyFloat_FromDouble(env->heap_len ? env->heap[0].when
                                            : Py_HUGE_VAL);
}

/* Process exactly one event. Returns -1 with an exception set on error
 * (including an unhandled event failure). */
static int
env_step_inner(EnvObject *env)
{
    if (env->heap_len == 0) {
        PyErr_SetString(sim_error(), "step() on an empty event heap");
        return -1;
    }
    HeapEntry top = heap_pop(env);
    env->now = top.when;
    EventObject *event = (EventObject *)top.event;
    if (PyList_GET_SIZE(env->tracers) > 0) {
        for (Py_ssize_t i = 0; i < PyList_GET_SIZE(env->tracers); i++) {
            PyObject *tracer = Py_NewRef(PyList_GET_ITEM(env->tracers, i));
            PyObject *res = PyObject_CallFunctionObjArgs(
                tracer, (PyObject *)env, (PyObject *)event, NULL);
            Py_DECREF(tracer);
            if (res == NULL) {
                Py_DECREF(top.event);
                return -1;
            }
            Py_DECREF(res);
        }
    }
    PyObject *callbacks = event->callbacks; /* steal */
    event->callbacks = Py_NewRef(Py_None);
    /* Snapshot the outcome first: a callback may recycle the event. */
    PyObject *ok = Py_NewRef(event->ok);
    PyObject *value = Py_NewRef(event->value);
    int rc = 0;
    if (callbacks != NULL && callbacks != Py_None && PyList_Check(callbacks)) {
        for (Py_ssize_t i = 0; i < PyList_GET_SIZE(callbacks); i++) {
            PyObject *cb = Py_NewRef(PyList_GET_ITEM(callbacks, i));
            PyObject *res = PyObject_CallOneArg(cb, (PyObject *)event);
            Py_DECREF(cb);
            if (res == NULL) {
                rc = -1;
                break;
            }
            Py_DECREF(res);
        }
    }
    if (rc == 0) {
        int truthy = PyObject_IsTrue(ok);
        if (truthy < 0)
            rc = -1;
        else if (!truthy && !event->defused) {
            /* Nothing handled the failure: surface it to the driver. */
            PyErr_SetObject((PyObject *)Py_TYPE(value), value);
            rc = -1;
        }
    }
    Py_XDECREF(callbacks);
    Py_DECREF(ok);
    Py_DECREF(value);
    Py_DECREF(top.event);
    return rc;
}

static PyObject *
env_step(PyObject *op, PyObject *noarg)
{
    (void)noarg;
    if (env_step_inner((EnvObject *)op) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
env_run(PyObject *op, PyObject *args, PyObject *kwds)
{
    PyObject *until = Py_None;
    static char *kwlist[] = {"until", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|O:run", kwlist, &until))
        return NULL;
    EnvObject *env = (EnvObject *)op;

    if (PyObject_TypeCheck(until, &Event_Type)) {
        EventObject *stop = (EventObject *)until;
        if (stop->callbacks != Py_None) {
            while (env->heap_len && stop->callbacks != Py_None) {
                if (env_step_inner(env) < 0)
                    return NULL;
            }
            if (stop->value == Pending) {
                PyErr_SetString(
                    sim_error(),
                    "run(until=event) exhausted the heap before the event "
                    "fired");
                return NULL;
            }
        }
        int truthy = PyObject_IsTrue(stop->ok);
        if (truthy < 0)
            return NULL;
        if (truthy)
            return Py_NewRef(stop->value);
        stop->defused = 1;
        PyErr_SetObject((PyObject *)Py_TYPE(stop->value), stop->value);
        return NULL;
    }

    double deadline;
    if (until == Py_None) {
        deadline = Py_HUGE_VAL;
    }
    else {
        PyObject *as_float = PyNumber_Float(until);
        if (as_float == NULL)
            return NULL;
        deadline = PyFloat_AS_DOUBLE(as_float);
        Py_DECREF(as_float);
        if (deadline != Py_HUGE_VAL && deadline < env->now) {
            PyObject *nowf = PyFloat_FromDouble(env->now);
            if (nowf != NULL) {
                PyErr_Format(sim_error(),
                             "run(until=%S) is in the past (now=%S)", until,
                             nowf);
                Py_DECREF(nowf);
            }
            return NULL;
        }
    }
    while (env->heap_len && env->heap[0].when <= deadline) {
        if (env_step_inner(env) < 0)
            return NULL;
    }
    if (deadline != Py_HUGE_VAL)
        env->now = deadline;
    Py_RETURN_NONE;
}

static PyMethodDef env_methods[] = {
    {"event", env_event, METH_NOARGS,
     "Create a pending event the caller triggers manually."},
    {"timeout", (PyCFunction)(void (*)(void))env_timeout,
     METH_VARARGS | METH_KEYWORDS,
     "Create an event triggering `delay` time units from now."},
    {"pooled_timeout", (PyCFunction)(void (*)(void))env_pooled_timeout,
     METH_VARARGS | METH_KEYWORDS,
     "A Timeout drawn from a free list when possible."},
    {"release_timeout", env_release_timeout, METH_O,
     "Return a processed pooled timeout to the free list."},
    {"process", (PyCFunction)(void (*)(void))env_process,
     METH_VARARGS | METH_KEYWORDS, "Start a coroutine process."},
    {"all_of", env_all_of, METH_O,
     "Event that triggers when every event in `events` has."},
    {"any_of", env_any_of, METH_O,
     "Event that triggers when the first of `events` does."},
    {"_schedule", env_schedule, METH_VARARGS,
     "Schedule an event at now + delay with the given priority."},
    {"peek", env_peek, METH_NOARGS,
     "Time of the next event, or +inf if nothing is scheduled."},
    {"step", env_step, METH_NOARGS, "Process exactly one event."},
    {"run", (PyCFunction)(void (*)(void))env_run,
     METH_VARARGS | METH_KEYWORDS,
     "Run until the heap empties, time `until` passes, or event fires."},
    {NULL, NULL, 0, NULL},
};

static PyMemberDef env_members[] = {
    {"tracers", T_OBJECT, offsetof(EnvObject, tracers), 0,
     "Callables invoked as tracer(env, event) before each dispatch."},
    {NULL, 0, 0, 0, NULL},
};

static PyGetSetDef env_getset[] = {
    {"now", env_get_now, NULL, "Current virtual time.", NULL},
    {"active_process", env_get_active, NULL,
     "The process currently executing, if any.", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyTypeObject Environment_Type = {
    PyVarObject_HEAD_INIT(NULL, 0).tp_name = "repro.sim._ckern.Environment",
    .tp_basicsize = sizeof(EnvObject),
    .tp_dealloc = env_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "The simulation event loop with virtual time (C accelerator).",
    .tp_traverse = env_traverse,
    .tp_clear = env_clear,
    .tp_methods = env_methods,
    .tp_members = env_members,
    .tp_getset = env_getset,
    .tp_init = env_init,
    .tp_new = PyType_GenericNew,
};

/* ------------------------------------------------------------------ */
/* Module                                                             */
/* ------------------------------------------------------------------ */

static PyObject *
ckern_register(PyObject *module, PyObject *args, PyObject *kwds)
{
    (void)module;
    PyObject *error, *interruption, *allof, *anyof;
    static char *kwlist[] = {"error", "interruption", "all_of", "any_of", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "OOOO:_register", kwlist,
                                     &error, &interruption, &allof, &anyof))
        return NULL;
    Py_XSETREF(SimError, Py_NewRef(error));
    Py_XSETREF(InterruptionCls, Py_NewRef(interruption));
    Py_XSETREF(AllOfCls, Py_NewRef(allof));
    Py_XSETREF(AnyOfCls, Py_NewRef(anyof));
    Py_RETURN_NONE;
}

static PyMethodDef ckern_methods[] = {
    {"_register", (PyCFunction)(void (*)(void))ckern_register,
     METH_VARARGS | METH_KEYWORDS,
     "Install the Python-side support classes (called by kernel.py)."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef ckern_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.sim._ckern",
    .m_doc = "C accelerator for the discrete-event kernel.",
    .m_size = -1,
    .m_methods = ckern_methods,
};

PyMODINIT_FUNC
PyInit__ckern(void)
{
    if (PyType_Ready(&Event_Type) < 0 || PyType_Ready(&Timeout_Type) < 0 ||
        PyType_Ready(&Process_Type) < 0 ||
        PyType_Ready(&Environment_Type) < 0)
        return NULL;
    Pending = PyObject_CallNoArgs((PyObject *)&PyBaseObject_Type);
    if (Pending == NULL)
        return NULL;
    PyObject *module = PyModule_Create(&ckern_module);
    if (module == NULL)
        return NULL;
    if (PyModule_AddObjectRef(module, "Event", (PyObject *)&Event_Type) < 0 ||
        PyModule_AddObjectRef(module, "Timeout", (PyObject *)&Timeout_Type) <
            0 ||
        PyModule_AddObjectRef(module, "Process", (PyObject *)&Process_Type) <
            0 ||
        PyModule_AddObjectRef(module, "Environment",
                              (PyObject *)&Environment_Type) < 0 ||
        PyModule_AddObjectRef(module, "PENDING", Pending) < 0 ||
        PyModule_AddIntConstant(module, "URGENT", URGENT_PRIO) < 0 ||
        PyModule_AddIntConstant(module, "NORMAL", NORMAL_PRIO) < 0) {
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
