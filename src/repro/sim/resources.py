"""Shared resources for the simulation kernel.

- :class:`Resource` — counted capacity with FIFO request queue (CPU
  cores, transfer slots).
- :class:`Container` — continuous quantity (disk bytes).
- :class:`Store` / :class:`FilterStore` — object queues (mailboxes; the
  FRIEDA message channels in the simulated engine are Stores).

All acquire/release operations are events, so processes compose them
with timeouts and conditions, e.g.::

    with cpu.request() as req:
        yield req
        yield env.timeout(task_cost)
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque

from repro.errors import SimulationError
from repro.sim.kernel import Environment, Event


class Request(Event):
    """Pending acquisition of one :class:`Resource` slot.

    Usable as a context manager: leaving the block releases the slot
    (or cancels the request if it never succeeded).
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        resource._queue.append(self)
        resource._trigger_requests()

    def cancel(self) -> None:
        """Withdraw an un-granted request from the queue."""
        if not self.triggered:
            try:
                self.resource._queue.remove(self)
            except ValueError:
                pass

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if self.triggered and self.ok:
            self.resource.release(self)
        else:
            self.cancel()


class Resource:
    """A counted resource with FIFO granting.

    ``capacity`` slots; :meth:`request` returns an event that succeeds
    when a slot is granted; :meth:`release` frees it and wakes the queue.
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"Resource capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = int(capacity)
        self._users: set[Request] = set()
        self._queue: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of granted (in-use) slots."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests still waiting."""
        return len(self._queue)

    def request(self) -> Request:
        """Ask for one slot; the returned event succeeds when granted."""
        return Request(self)

    def release(self, request: Request) -> None:
        """Return a previously granted slot."""
        try:
            self._users.remove(request)
        except KeyError:
            raise SimulationError("release() of a request that was never granted")
        self._trigger_requests()

    def _trigger_requests(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            request = self._queue.popleft()
            self._users.add(request)
            request.succeed()


class Container:
    """A continuous quantity with blocking put/get (e.g. disk bytes).

    Gets block until the level covers the amount; puts block until the
    level plus the amount fits under capacity.
    """

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
    ):
        if capacity <= 0:
            raise SimulationError("Container capacity must be positive")
        if not 0 <= init <= capacity:
            raise SimulationError("Container init outside [0, capacity]")
        self.env = env
        self.capacity = float(capacity)
        self._level = float(init)
        self._getters: Deque[tuple[Event, float]] = deque()
        self._putters: Deque[tuple[Event, float]] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount``; blocks while it would overflow capacity."""
        if amount < 0:
            raise SimulationError("Container.put of negative amount")
        event = Event(self.env)
        self._putters.append((event, float(amount)))
        self._dispatch()
        return event

    def get(self, amount: float) -> Event:
        """Remove ``amount``; blocks while the level is insufficient."""
        if amount < 0:
            raise SimulationError("Container.get of negative amount")
        event = Event(self.env)
        self._getters.append((event, float(amount)))
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                event, amount = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._putters.popleft()
                    self._level += amount
                    event.succeed(amount)
                    progress = True
            if self._getters:
                event, amount = self._getters[0]
                if self._level >= amount:
                    self._getters.popleft()
                    self._level -= amount
                    event.succeed(amount)
                    progress = True


class Store:
    """FIFO object queue with optional capacity.

    ``get`` blocks until an item is available; ``put`` blocks while the
    store is full.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise SimulationError("Store capacity must be positive")
        self.env = env
        self.capacity = capacity
        #: Stored items, oldest first. A deque so the FIFO pop in
        #: :meth:`_match` is O(1) instead of list.pop(0)'s O(n).
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Append ``item``; the event succeeds once it is stored."""
        event = Event(self.env)
        self._putters.append((event, item))
        self._dispatch()
        return event

    def get(self) -> Event:
        """Pop the oldest item; the event's value is the item."""
        event = Event(self.env)
        self._getters.append(event)
        self._dispatch()
        return event

    def _match(self, getter: Event) -> bool:
        """Try to satisfy ``getter`` from items; subclass hook."""
        if self.items:
            getter.succeed(self.items.popleft())
            return True
        return False

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            # Move queued puts into storage while capacity allows.
            while self._putters and len(self.items) < self.capacity:
                event, item = self._putters.popleft()
                self.items.append(item)
                event.succeed()
                progress = True
            # Satisfy getters in FIFO order; stop at the first that can't
            # be satisfied to preserve ordering fairness.
            while self._getters:
                getter = self._getters[0]
                if getter.triggered:  # cancelled/triggered externally
                    self._getters.popleft()
                    continue
                if not self._match(getter):
                    break
                self._getters.popleft()
                progress = True


class FilterStore(Store):
    """A :class:`Store` whose getters take the first item matching a predicate."""

    def __init__(self, env: Environment, capacity: float = float("inf")):
        super().__init__(env, capacity)
        # Events use __slots__, so per-getter predicates live here.
        self._filters: dict[Event, Callable[[Any], bool]] = {}

    def get(self, filter: Callable[[Any], bool] = lambda item: True) -> Event:  # type: ignore[override]
        event = Event(self.env)
        self._filters[event] = filter
        self._getters.append(event)
        self._dispatch()
        return event

    def _match(self, getter: Event) -> bool:
        predicate = self._filters.get(getter)
        for index, item in enumerate(self.items):
            if predicate is None or predicate(item):
                self._filters.pop(getter, None)
                del self.items[index]
                getter.succeed(item)
                return True
        return False

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            while self._putters and len(self.items) < self.capacity:
                event, item = self._putters.popleft()
                self.items.append(item)
                event.succeed()
                progress = True
            # Unlike the FIFO store, any waiting getter may match any
            # item, so scan all of them.
            remaining: Deque[Event] = deque()
            while self._getters:
                getter = self._getters.popleft()
                if getter.triggered:
                    continue
                if self._match(getter):
                    progress = True
                else:
                    remaining.append(getter)
            self._getters = remaining
