"""Plain-text table rendering for experiment reports.

The experiment harness prints the same rows/series the paper reports;
this module renders them as aligned monospace tables (and optionally
CSV) with no third-party dependencies.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Any, Sequence


@dataclass
class Table:
    """A titled table of rows.

    >>> t = Table("Demo", ["a", "b"])
    >>> t.add_row([1, 2.5])
    >>> print(render_table(t))  # doctest: +SKIP
    """

    title: str
    columns: Sequence[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, row: Sequence[Any]) -> None:
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(list(row))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def to_csv(self) -> str:
        """Render as CSV (header + rows, commas escaped naively)."""
        out = io.StringIO()
        out.write(",".join(_csv_cell(c) for c in self.columns) + "\n")
        for row in self.rows:
            out.write(",".join(_csv_cell(c) for c in row) + "\n")
        return out.getvalue()


def _csv_cell(value: Any) -> str:
    text = _format_cell(value)
    if "," in text or '"' in text:
        text = '"' + text.replace('"', '""') + '"'
    return text


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        return f"{value:.2f}"
    return str(value)


def render_table(table: Table) -> str:
    """Render a :class:`Table` as aligned monospace text."""
    header = [str(c) for c in table.columns]
    body = [[_format_cell(cell) for cell in row] for row in table.rows]
    widths = [len(h) for h in header]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    lines = [table.title, "=" * len(table.title), fmt_row(header), rule]
    lines.extend(fmt_row(row) for row in body)
    for note in table.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)
