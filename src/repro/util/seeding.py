"""Deterministic RNG derivation.

Every stochastic component (task-cost sampling, failure injection,
workload generation) takes an explicit seed or Generator; nothing in the
library touches global NumPy/`random` state. :func:`derive_seed` gives
stable, independent streams for named sub-components so a simulation is
reproducible regardless of the order modules initialize in.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, *names: str | int) -> int:
    """Derive a stable 63-bit child seed from a root seed and a name path.

    The derivation hashes the root seed together with the path, so
    ``derive_seed(7, "failures")`` and ``derive_seed(7, "tasks")`` are
    independent streams while remaining reproducible across runs and
    platforms.
    """
    digest = hashlib.blake2b(digest_size=8)
    digest.update(str(int(root_seed)).encode())
    for name in names:
        digest.update(b"/")
        digest.update(str(name).encode())
    return int.from_bytes(digest.digest(), "big") & (2**63 - 1)


def make_rng(seed: int | np.random.Generator | None, *names: str | int) -> np.random.Generator:
    """Build a :class:`numpy.random.Generator` from a seed or pass one through.

    When ``seed`` is already a Generator it is returned unchanged (the
    caller owns the stream). ``None`` yields a fresh OS-seeded stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        # The one sanctioned escape hatch: callers explicitly opting out
        # of reproducibility by passing seed=None.
        # frieda: allow[unseeded-rng] -- explicit seed=None opt-out
        return np.random.default_rng()
    return np.random.default_rng(derive_seed(int(seed), *names) if names else int(seed))


class SeedSequenceFactory:
    """Hands out independent child RNGs derived from one root seed.

    >>> factory = SeedSequenceFactory(42)
    >>> rng_a = factory.rng("failures")
    >>> rng_b = factory.rng("tasks")

    The two generators are independent but both fully determined by the
    root seed.
    """

    def __init__(self, root_seed: int):
        self.root_seed = int(root_seed)

    def seed(self, *names: str | int) -> int:
        """Return the derived integer seed for a named stream."""
        return derive_seed(self.root_seed, *names)

    def rng(self, *names: str | int) -> np.random.Generator:
        """Return a Generator for a named stream."""
        return np.random.default_rng(self.seed(*names))
