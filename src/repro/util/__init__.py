"""Shared utilities: units, statistics, RNG seeding and table rendering."""

from repro.util.units import (
    KB,
    MB,
    GB,
    Mbit,
    Gbit,
    bits_to_bytes,
    bytes_to_bits,
    format_bytes,
    format_duration,
    format_rate,
    parse_size,
)
from repro.util.seeding import SeedSequenceFactory, derive_seed, make_rng
from repro.util.stats import (
    RunningStats,
    coefficient_of_variation,
    percentile,
    summarize,
)
from repro.util.tables import Table, render_table

__all__ = [
    "KB",
    "MB",
    "GB",
    "Mbit",
    "Gbit",
    "bits_to_bytes",
    "bytes_to_bits",
    "format_bytes",
    "format_duration",
    "format_rate",
    "parse_size",
    "SeedSequenceFactory",
    "derive_seed",
    "make_rng",
    "RunningStats",
    "coefficient_of_variation",
    "percentile",
    "summarize",
    "Table",
    "render_table",
]
