"""Small statistics helpers used by reports and the experiment harness."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


class RunningStats:
    """Welford online mean/variance accumulator.

    Used by simulation monitors so long traces do not need to be kept in
    memory just to report a mean utilization.
    """

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        value = float(value)
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def extend(self, values: Iterable[float]) -> None:
        """Fold many observations."""
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator)."""
        if self.count < 2:
            return math.nan
        return self._m2 / (self.count - 1)

    @property
    def stdev(self) -> float:
        var = self.variance
        return math.sqrt(var) if var == var else math.nan  # NaN-safe

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RunningStats(count={self.count}, mean={self.mean:.4g}, "
            f"stdev={self.stdev:.4g})"
        )


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of ``values`` at ``q`` in [0, 100].

    Implemented locally (rather than via numpy) so tiny hot paths in the
    simulator avoid array allocation for 3-element lists.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(float(v) for v in values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    # Additive form keeps the result inside [ordered[low], ordered[high]]
    # even under floating-point rounding.
    return ordered[low] + frac * (ordered[high] - ordered[low])


def coefficient_of_variation(values: Sequence[float]) -> float:
    """stdev/mean of ``values``; NaN for degenerate input."""
    stats = RunningStats()
    stats.extend(values)
    if stats.count < 2 or stats.mean == 0.0:
        return math.nan
    return stats.stdev / abs(stats.mean)


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a sample."""

    count: int
    mean: float
    stdev: float
    minimum: float
    p50: float
    p95: float
    maximum: float
    total: float


def summarize(values: Sequence[float]) -> Summary:
    """Build a :class:`Summary` for a non-empty sample."""
    if not values:
        raise ValueError("summarize of empty sequence")
    stats = RunningStats()
    stats.extend(values)
    return Summary(
        count=stats.count,
        mean=stats.mean,
        stdev=stats.stdev if stats.count > 1 else 0.0,
        minimum=stats.minimum,
        p50=percentile(values, 50),
        p95=percentile(values, 95),
        maximum=stats.maximum,
        total=float(sum(values)),
    )
