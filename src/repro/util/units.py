"""Byte/bit unit helpers.

The cloud substrate works internally in **bytes** for sizes and
**bits per second** for link rates (matching how the paper quotes the
provisioned 100 Mbps bandwidth). These helpers keep conversions explicit
so no module silently mixes the two.
"""

from __future__ import annotations

import re

#: Decimal byte units (storage vendors and cloud providers use decimal).
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000

#: Bit-rate units.
Kbit = 1_000
Mbit = 1_000_000
Gbit = 1_000_000_000

_SIZE_RE = re.compile(
    r"^\s*(?P<num>\d+(?:\.\d+)?)\s*(?P<unit>[KMGT]?i?B?)\s*$", re.IGNORECASE
)

_UNIT_FACTORS = {
    "": 1,
    "B": 1,
    "KB": KB,
    "MB": MB,
    "GB": GB,
    "TB": TB,
    "KIB": 1024,
    "MIB": 1024**2,
    "GIB": 1024**3,
    "TIB": 1024**4,
    "K": KB,
    "M": MB,
    "G": GB,
    "T": TB,
}


def bytes_to_bits(nbytes: float) -> float:
    """Convert a byte count to bits."""
    return nbytes * 8.0


def bits_to_bytes(nbits: float) -> float:
    """Convert a bit count to bytes."""
    return nbits / 8.0


def parse_size(text: str | int | float) -> int:
    """Parse a human size string (``"7 MB"``, ``"1.5GiB"``) to bytes.

    Integers/floats pass through unchanged (interpreted as bytes).

    >>> parse_size("7 MB")
    7000000
    >>> parse_size(42)
    42
    """
    if isinstance(text, (int, float)):
        return int(text)
    match = _SIZE_RE.match(text)
    if not match:
        raise ValueError(f"unparseable size: {text!r}")
    unit = match.group("unit").upper()
    if unit not in _UNIT_FACTORS:
        raise ValueError(f"unknown size unit in {text!r}")
    return int(float(match.group("num")) * _UNIT_FACTORS[unit])


def format_bytes(nbytes: float) -> str:
    """Render a byte count with a human unit.

    >>> format_bytes(7_000_000)
    '7.00 MB'
    """
    nbytes = float(nbytes)
    for unit, factor in (("TB", TB), ("GB", GB), ("MB", MB), ("KB", KB)):
        if abs(nbytes) >= factor:
            return f"{nbytes / factor:.2f} {unit}"
    return f"{nbytes:.0f} B"


def format_rate(bits_per_second: float) -> str:
    """Render a bit rate with a human unit.

    >>> format_rate(100_000_000)
    '100.00 Mbit/s'
    """
    rate = float(bits_per_second)
    for unit, factor in (("Gbit/s", Gbit), ("Mbit/s", Mbit), ("Kbit/s", Kbit)):
        if abs(rate) >= factor:
            return f"{rate / factor:.2f} {unit}"
    return f"{rate:.0f} bit/s"


def format_duration(seconds: float) -> str:
    """Render a duration compactly (``61200`` → ``'17h00m'``).

    >>> format_duration(61200)
    '17h00m'
    >>> format_duration(89.5)
    '89.5s'
    """
    seconds = float(seconds)
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 120:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(seconds, 60.0)
    if minutes < 120:
        return f"{int(minutes)}m{secs:04.1f}s"
    hours, minutes = divmod(minutes, 60.0)
    return f"{int(hours)}h{int(minutes):02d}m"
