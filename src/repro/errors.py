"""Exception hierarchy shared across the FRIEDA reproduction.

All library-raised exceptions derive from :class:`FriedaError` so callers
can catch framework failures without swallowing programming errors.
"""

from __future__ import annotations


class FriedaError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(FriedaError):
    """Raised for discrete-event-kernel misuse (e.g. running a dead env)."""


class NetworkError(FriedaError):
    """Raised when a network transfer cannot be carried out."""


class StorageError(FriedaError):
    """Raised when a storage operation fails (capacity, missing volume)."""


class ProvisioningError(FriedaError):
    """Raised when a virtual cluster cannot be provisioned."""


class PartitionError(FriedaError):
    """Raised for invalid partition-generator configurations."""


class ProtocolError(FriedaError):
    """Raised when a FRIEDA protocol message violates the state machine."""


class ChecksumError(ProtocolError):
    """A frame's binary payload failed checksum verification.

    The frame (header, body, and payload) was fully consumed before the
    error was raised, so the stream is still correctly framed: the
    receiver may keep reading and ask the sender for a retransmit.
    """

    def __init__(self, frame: object, expected: str, actual: str):
        super().__init__(
            f"payload checksum mismatch for {frame!r}: "
            f"expected {expected}, got {actual}"
        )
        self.frame = frame
        self.expected = expected
        self.actual = actual


class WorkerFailure(FriedaError):
    """Raised inside a worker process when its VM fails mid-task."""


class MasterFailure(FriedaError):
    """Raised when the master becomes unavailable (single point of failure
    noted in §V-A of the paper)."""


class ConfigurationError(FriedaError):
    """Raised when a user-facing configuration is inconsistent."""


class JournalError(FriedaError):
    """Raised for control-plane journal misuse or unrecoverable damage.

    Record-level damage (truncated tail, flipped CRC) is *not* an
    error — recovery stops cleanly at the last valid record.  This is
    for the cases with no valid prefix to fall back to: a file that was
    never a journal, an unsupported version, or a replay whose rebuilt
    state diverges from what the live service recorded.
    """


class TransferError(FriedaError):
    """Raised when a data transfer fails permanently."""


class ApplicationError(FriedaError):
    """Raised by the bundled applications (mini-BLAST, imaging)."""
