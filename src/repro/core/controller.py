"""The controller — the control plane's "intelligence" (§II-A).

The controller owns configuration and membership, never data:

1. it runs the partition generator over the input dataset,
2. it produces the ``START_MASTER`` / ``SET_PARTITION_INFO`` messages
   that initialize the master (Fig 4),
3. it decides the worker fan-out (multicore cloning: one program
   instance per core, §II-C),
4. it receives failure reports and elasticity requests, keeping an
   auditable event log.

Engines call into this logic and perform the actual spawning/transport.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.commands import CommandTemplate
from repro.core.fault import FaultTracker, RetryPolicy
from repro.core.messages import SetPartitionInfo, StartMaster, WorkerFailed
from repro.core.strategies import DataManagementStrategy, StrategyKind, strategy_for
from repro.data.files import Dataset
from repro.data.partition import PartitionGenerator, PartitionScheme, TaskGroup
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ControllerEvent:
    """One entry in the controller's audit log."""

    time: float
    kind: str
    detail: str


@dataclass
class WorkerPlan:
    """How many program clones run on each node (§II-C multicore)."""

    node_id: str
    cores: int
    clones: int

    @property
    def worker_ids(self) -> tuple[str, ...]:
        return tuple(f"{self.node_id}:{i}" for i in range(self.clones))


class ControllerLogic:
    """Engine-agnostic controller state machine."""

    def __init__(
        self,
        *,
        strategy: StrategyKind | str = StrategyKind.REAL_TIME,
        grouping: PartitionScheme | str = PartitionScheme.SINGLE,
        grouping_options: dict | None = None,
        command: CommandTemplate | None = None,
        multicore: bool = True,
        retry_policy: RetryPolicy | None = None,
        isolate_after: int = 1,
    ):
        self.strategy: DataManagementStrategy = strategy_for(strategy)
        self.grouping = PartitionScheme(grouping)
        self.grouping_options = dict(grouping_options or {})
        self.command = command
        self.multicore = multicore
        self.retry_policy = retry_policy or RetryPolicy.paper_faithful()
        self.fault_tracker = FaultTracker(isolate_after=isolate_after)
        self.events: list[ControllerEvent] = []
        self.groups: Optional[list[TaskGroup]] = None
        self.worker_plans: list[WorkerPlan] = []
        # node_id → its plans, kept in lockstep with worker_plans so
        # per-node lookups stay O(1) at macro worker counts.
        self._plans_by_node: dict[str, list[WorkerPlan]] = {}

    # -- control phase -------------------------------------------------------
    def log(self, time: float, kind: str, detail: str = "") -> None:
        self.events.append(ControllerEvent(time, kind, detail))

    def generate_partitions(self, dataset: Dataset, time: float = 0.0) -> list[TaskGroup]:
        """Run the partition generator (Fig 1, control plane)."""
        generator = PartitionGenerator(self.grouping, self.grouping_options)
        self.groups = generator.generate(dataset)
        if self.command is not None and self.groups:
            self.command.validate_group_size(len(self.groups[0].files))
        self.log(time, "PARTITION_GENERATED", f"{len(self.groups)} groups ({self.grouping.value})")
        return self.groups

    def start_master_message(self) -> StartMaster:
        """The initialization message for the master (Fig 4 step 1)."""
        return StartMaster(
            strategy=self.strategy.kind.value,
            grouping=self.grouping.value,
            multicore=self.multicore,
        )

    def partition_info_message(self) -> SetPartitionInfo:
        """SET_PARTITION_INFO carrying the generated groups (Fig 3)."""
        if self.groups is None:
            raise ConfigurationError("generate_partitions() before partition_info_message()")
        return SetPartitionInfo(
            groups=tuple(g.file_names for g in self.groups),
            sizes=tuple(tuple(f.size for f in g.files) for g in self.groups),
        )

    def plan_workers(self, nodes: Sequence[tuple[str, int]], time: float = 0.0) -> list[WorkerPlan]:
        """Decide clone counts: one program instance per core when
        multicore is on, otherwise one per node (§II-C)."""
        self.worker_plans = [
            WorkerPlan(node_id=node_id, cores=cores, clones=cores if self.multicore else 1)
            for node_id, cores in nodes
        ]
        self._plans_by_node = {}
        for plan in self.worker_plans:
            self._plans_by_node.setdefault(plan.node_id, []).append(plan)
        total = sum(p.clones for p in self.worker_plans)
        self.log(time, "FORK_REMOTE_WORKERS", f"{total} clones on {len(self.worker_plans)} nodes")
        return self.worker_plans

    # -- run-time reports -----------------------------------------------------
    def on_worker_failed(self, report: WorkerFailed, time: float = 0.0) -> None:
        """Failure report from the master (§II-D): record + isolate."""
        self.fault_tracker.record_loss(report.worker_id, report.error)
        self.log(time, "WORKER_FAILED", f"{report.worker_id}: {report.error}")

    def on_worker_error(self, worker_id: str, message: str, time: float = 0.0) -> bool:
        isolated = self.fault_tracker.record_error(worker_id, message)
        self.log(time, "WORKER_ERROR", f"{worker_id}: {message}")
        if isolated:
            self.log(time, "WORKER_ISOLATED", worker_id)
        return isolated

    def on_worker_added(self, node_id: str, cores: int, time: float = 0.0) -> WorkerPlan:
        """Elastic join (§V-A): "Addition of any new worker goes through
        the controller"."""
        plan = WorkerPlan(node_id=node_id, cores=cores, clones=cores if self.multicore else 1)
        self.worker_plans.append(plan)
        self._plans_by_node.setdefault(node_id, []).append(plan)
        self.log(time, "WORKER_ADDED", f"{node_id} ({plan.clones} clones)")
        return plan

    def on_worker_removed(self, node_id: str, time: float = 0.0) -> None:
        self.worker_plans = [p for p in self.worker_plans if p.node_id != node_id]
        self._plans_by_node.pop(node_id, None)
        self.log(time, "WORKER_REMOVED", node_id)

    def plans_for(self, node_id: str) -> tuple[WorkerPlan, ...]:
        """The plans hosted on one node (no scan over the whole fleet)."""
        return tuple(self._plans_by_node.get(node_id, ()))

    @property
    def all_worker_ids(self) -> tuple[str, ...]:
        return tuple(w for plan in self.worker_plans for w in plan.worker_ids)
