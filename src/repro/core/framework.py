"""The user-facing FRIEDA facade and run-outcome records.

:class:`Frieda` wraps engine selection behind one API:

- ``Frieda.simulated(...)`` — discrete-event cloud simulation (all
  paper experiments),
- ``Frieda.local(...)`` — real threaded execution of Python callables
  or shell commands on this machine,
- ``Frieda.tcp(...)`` — real asyncio TCP master/worker (the Twisted
  equivalent of the paper's prototype).

Every engine returns a :class:`RunOutcome` with the same fields, so the
experiment harness and the adaptive advisor treat engines uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.strategies import StrategyKind
from repro.data.partition import PartitionScheme


@dataclass(frozen=True)
class TaskRecord:
    """Per-task outcome, common to all engines."""

    task_id: int
    worker_id: str
    node_id: str
    start: float
    end: float
    ok: bool
    attempt: int = 1
    error: str = ""
    transfer_seconds: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class RunOutcome:
    """What one FRIEDA run produced.

    Time decomposition used by the Figure 6 reproduction:

    - ``transfer_time`` — wall-clock during which at least one input
      transfer was in flight (union of transfer intervals; equals the
      staging-phase duration for the pre-partitioned strategies),
    - ``execution_time`` — wall-clock during which at least one task
      was executing,
    - ``makespan`` — start of run to last task completion. For staged
      strategies makespan ≈ transfer + execution (sequential phases,
      §II-C); for real-time the phases interleave and makespan is less
      than their sum.
    """

    strategy: StrategyKind
    grouping: PartitionScheme
    makespan: float
    transfer_time: float
    execution_time: float
    tasks_total: int
    tasks_completed: int
    tasks_failed: int = 0
    tasks_lost: int = 0
    bytes_transferred: float = 0.0
    task_records: list[TaskRecord] = field(default_factory=list)
    worker_busy: dict[str, float] = field(default_factory=dict)
    cost: Optional[Any] = None  # CostReport when billing is enabled
    controller_events: list[Any] = field(default_factory=list)
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def all_tasks_ok(self) -> bool:
        return self.tasks_completed == self.tasks_total

    @property
    def throughput_tasks_per_second(self) -> float:
        if self.makespan <= 0:
            return float("nan")
        return self.tasks_completed / self.makespan

    def speedup_over(self, baseline: "RunOutcome") -> float:
        """Baseline makespan divided by this run's makespan."""
        if self.makespan <= 0:
            return float("nan")
        return baseline.makespan / self.makespan

    def summary_line(self) -> str:
        return (
            f"{self.strategy.value:>24s}  makespan={self.makespan:10.2f}s  "
            f"transfer={self.transfer_time:9.2f}s  exec={self.execution_time:9.2f}s  "
            f"tasks={self.tasks_completed}/{self.tasks_total}"
            + (f"  lost={self.tasks_lost}" if self.tasks_lost else "")
        )


@dataclass
class FriedaConfig:
    """Engine-independent run configuration."""

    strategy: StrategyKind | str = StrategyKind.REAL_TIME
    grouping: PartitionScheme | str = PartitionScheme.SINGLE
    grouping_options: dict = field(default_factory=dict)
    multicore: bool = True
    retry_policy: Optional[Any] = None  # core.fault.RetryPolicy
    isolate_after: int = 1


class Frieda:
    """Facade over the engines. Construct via the classmethods."""

    def __init__(self, engine: Any):
        self._engine = engine

    # -- constructors -------------------------------------------------------
    @classmethod
    def simulated(cls, cluster_spec: Any | None = None, **engine_kwargs: Any) -> "Frieda":
        """A simulated-cloud FRIEDA (see
        :class:`repro.engines.simulated.SimulatedEngine` for kwargs)."""
        from repro.cloud.cluster import ClusterSpec
        from repro.engines.simulated import SimulatedEngine

        spec = cluster_spec or ClusterSpec()
        return cls(SimulatedEngine(spec, **engine_kwargs))

    @classmethod
    def local(cls, num_workers: int = 4, **engine_kwargs: Any) -> "Frieda":
        """A real threaded FRIEDA executing Python callables/commands."""
        from repro.runtime.local import ThreadedEngine

        return cls(ThreadedEngine(num_workers=num_workers, **engine_kwargs))

    @classmethod
    def tcp(cls, num_workers: int = 4, **engine_kwargs: Any) -> "Frieda":
        """A real asyncio TCP master/worker FRIEDA on localhost."""
        from repro.runtime.tcp import TcpEngine

        return cls(TcpEngine(num_workers=num_workers, **engine_kwargs))

    # -- execution -------------------------------------------------------------
    @property
    def engine(self) -> Any:
        return self._engine

    def run(self, *args: Any, **kwargs: Any) -> RunOutcome:
        """Delegate to the engine's ``run`` (engines share the core
        signature: dataset/inputs, command, strategy, grouping...)."""
        return self._engine.run(*args, **kwargs)
