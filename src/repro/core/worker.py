"""Worker-side logic (execution plane, §II-B).

"The workers are all symmetrical i.e., all workers perform identical
work on different data." A worker's whole job: register, loop
(request data → receive files → build the command → execute → report
status) until the master says there is no more data.

:class:`WorkerLogic` keeps the engine-agnostic part: command
construction from the template, per-task accounting, and the local
scratch view of which files this worker already holds (pre-partitioned
local data or previously received files are not re-fetched).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.commands import CommandTemplate
from repro.errors import ProtocolError


@dataclass
class TaskExecution:
    """Record of one task executed by this worker."""

    task_id: int
    file_names: tuple[str, ...]
    command: str
    started: float
    finished: Optional[float] = None
    ok: Optional[bool] = None
    error: str = ""

    @property
    def duration(self) -> float:
        if self.finished is None:
            return 0.0
        return self.finished - self.started


class WorkerLogic:
    """State for one worker clone (``node:cloneIndex``)."""

    def __init__(
        self,
        worker_id: str,
        node_id: str,
        command: CommandTemplate | None = None,
        *,
        scratch_dir: str = "",
    ):
        self.worker_id = worker_id
        self.node_id = node_id
        self.command = command
        self.scratch_dir = scratch_dir
        self.local_files: set[str] = set()
        #: name → absolute path for files resident outside the scratch
        #: directory (pre-partitioned-local data keeps original paths).
        self.path_overrides: dict[str, str] = {}
        self.executions: list[TaskExecution] = []
        self._current: Optional[TaskExecution] = None

    # -- data ------------------------------------------------------------
    def missing_files(self, file_names: Sequence[str]) -> tuple[str, ...]:
        """Which of a task's inputs still need transferring here."""
        return tuple(n for n in file_names if n not in self.local_files)

    def receive_file(self, file_name: str) -> None:
        self.local_files.add(file_name)

    def resolve_path(self, file_name: str) -> str:
        """Local path the command sees for a received file."""
        override = self.path_overrides.get(file_name)
        if override is not None:
            return override
        if self.scratch_dir:
            return f"{self.scratch_dir.rstrip('/')}/{file_name}"
        return file_name

    # -- execution ----------------------------------------------------------
    def begin_task(self, task_id: int, file_names: Sequence[str], now: float) -> TaskExecution:
        """Build the runtime command and open an execution record."""
        if self._current is not None:
            raise ProtocolError(
                f"worker {self.worker_id!r} began task {task_id} while "
                f"task {self._current.task_id} is still running"
            )
        missing = self.missing_files(file_names)
        if missing:
            raise ProtocolError(
                f"worker {self.worker_id!r} asked to run task {task_id} "
                f"without its inputs: {missing}"
            )
        paths = [self.resolve_path(n) for n in file_names]
        if self.command is not None and self.command.template is not None:
            rendered = self.command.build(paths)
        elif self.command is not None:
            rendered = f"{self.command.display_name}({', '.join(paths)})"
        else:
            rendered = " ".join(paths)
        record = TaskExecution(
            task_id=task_id,
            file_names=tuple(file_names),
            command=rendered,
            started=now,
        )
        self._current = record
        return record

    def finish_task(self, now: float, ok: bool = True, error: str = "") -> TaskExecution:
        if self._current is None:
            raise ProtocolError(f"worker {self.worker_id!r} finished with no task open")
        record = self._current
        record.finished = now
        record.ok = ok
        record.error = error
        self.executions.append(record)
        self._current = None
        return record

    def abort_task(self, now: float, error: str) -> Optional[TaskExecution]:
        """VM failure mid-task: close the record as failed (if any)."""
        if self._current is None:
            return None
        return self.finish_task(now, ok=False, error=error)

    # -- accounting -----------------------------------------------------------
    @property
    def tasks_completed(self) -> int:
        return sum(1 for e in self.executions if e.ok)

    @property
    def busy_time(self) -> float:
        return sum(e.duration for e in self.executions)
