"""Component liveness monitoring (master-recovery groundwork, §V-A).

"Future work will address the monitoring and recovery of the master
through the controller-master communication channel." This module is
that channel's liveness layer: components emit heartbeats, the
:class:`HeartbeatMonitor` classifies them healthy / suspected / dead by
elapsed silence, and a :class:`RecoveryPlan` decides what to do about a
dead master or worker. The simulated engine uses the same thresholds
for its master watchdog; the logic here is pure and engine-agnostic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.telemetry.metrics import MetricsRegistry, NULL_METRICS


class Liveness(str, enum.Enum):
    HEALTHY = "healthy"
    SUSPECTED = "suspected"
    DEAD = "dead"
    UNKNOWN = "unknown"  # never heard from


@dataclass(frozen=True)
class HeartbeatConfig:
    """Silence thresholds (seconds)."""

    #: Silence after which a component is suspected.
    suspect_after: float = 5.0
    #: Silence after which it is declared dead.
    dead_after: float = 15.0

    def __post_init__(self) -> None:
        if not 0 < self.suspect_after < self.dead_after:
            raise ValueError("need 0 < suspect_after < dead_after")


class HeartbeatMonitor:
    """Tracks last-heard times and classifies component liveness."""

    def __init__(
        self,
        config: HeartbeatConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.config = config or HeartbeatConfig()
        self._last_heard: dict[str, float] = {}
        self._declared_dead: set[str] = set()
        #: Components currently classified suspected — tracked so the
        #: metrics count state *transitions*, not repeated observations.
        self._suspected: set[str] = set()
        metrics = metrics if metrics is not None else NULL_METRICS
        self._m_beats = metrics.counter("heartbeat.beats")
        self._m_suspected = metrics.counter("heartbeat.suspected")
        self._m_dead = metrics.counter("heartbeat.dead")
        self._m_stale = metrics.counter("heartbeat.stale")
        # Round-trip times ride in on the beats that carry a measurement
        # (workers report the RTT of their last acked beat); the
        # histogram surfaces p50/p95/p99 through the metrics export.
        self._h_rtt = metrics.histogram("heartbeat.rtt_seconds")

    def beat(self, component: str, now: float, rtt: float | None = None) -> None:
        """Record a heartbeat. A beat resurrects a suspected component
        but never a declared-dead one (it must re-register).

        Out-of-order beats are tolerated: in the threaded runtime two
        threads can read the clock and race to ``beat()``, so a stale
        timestamp is benign — it carries no new information. Last-heard
        keeps the max; stale beats are counted in ``heartbeat.stale``.

        ``rtt`` is an optional round-trip measurement carried by the
        beat; it is recorded even for beats that arrive stale (the
        measurement is real regardless of delivery order).
        """
        if component in self._declared_dead:
            return
        if rtt is not None and rtt >= 0:
            self._h_rtt.observe(rtt)
        previous = self._last_heard.get(component)
        if previous is not None and now < previous:
            self._m_stale.inc()
            return
        self._last_heard[component] = now
        self._m_beats.inc()

    def forget(self, component: str) -> None:
        """Deregister a component (graceful shutdown)."""
        self._last_heard.pop(component, None)
        self._declared_dead.discard(component)
        self._suspected.discard(component)

    def liveness(self, component: str, now: float) -> Liveness:
        """Pure classification of one component at ``now``.

        Reading liveness never changes state: a component whose silence
        crosses ``dead_after`` reads as DEAD here but is only *declared*
        dead (sticky until re-registration, transition metrics bumped)
        by an explicit :meth:`sweep`.
        """
        if component in self._declared_dead:
            return Liveness.DEAD
        last = self._last_heard.get(component)
        if last is None:
            return Liveness.UNKNOWN
        silence = now - last
        if silence >= self.config.dead_after:
            return Liveness.DEAD
        if silence >= self.config.suspect_after:
            return Liveness.SUSPECTED
        return Liveness.HEALTHY

    def sweep(self, now: float) -> dict[str, Liveness]:
        """Classify every known component at ``now`` and commit state
        transitions: newly-dead components are declared dead (they stay
        dead until :meth:`forget`), suspicion is entered/cleared, and
        each *transition* — not repeated observation — is counted in
        the ``heartbeat.suspected`` / ``heartbeat.dead`` metrics."""
        states: dict[str, Liveness] = {}
        for component in list(self._last_heard):
            state = self.liveness(component, now)
            if state is Liveness.DEAD:
                if component not in self._declared_dead:
                    self._declared_dead.add(component)
                    self._suspected.discard(component)
                    self._m_dead.inc()
            elif state is Liveness.SUSPECTED:
                if component not in self._suspected:
                    self._suspected.add(component)
                    self._m_suspected.inc()
            else:
                self._suspected.discard(component)
            states[component] = state
        return states

    def dead_components(self, now: float) -> frozenset[str]:
        return frozenset(
            c for c, state in self.sweep(now).items() if state is Liveness.DEAD
        )


@dataclass(frozen=True)
class RecoveryAction:
    """What the controller should do about a dead component."""

    component: str
    action: str  # "restart_master" | "isolate_worker" | "none"
    reason: str


@dataclass(frozen=True)
class RecoveryPlan:
    """Policy: map dead components to controller actions.

    ``restart_master`` implements the paper's future-work master
    recovery; with it disabled a dead master is terminal (the §V-A
    single point of failure).
    """

    master_id: str = "master"
    restart_master: bool = False

    def decide(self, component: str, liveness: Liveness) -> RecoveryAction:
        if liveness is not Liveness.DEAD:
            return RecoveryAction(component, "none", f"component is {liveness.value}")
        if component == self.master_id:
            if self.restart_master:
                return RecoveryAction(
                    component, "restart_master", "master dead; recovery extension enabled"
                )
            return RecoveryAction(
                component,
                "none",
                "master dead and recovery disabled: run cannot continue "
                "(single point of failure, §V-A)",
            )
        return RecoveryAction(
            component, "isolate_worker", "worker silent past the dead threshold"
        )
