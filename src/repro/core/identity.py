"""Worker identity policy shared by every engine.

:class:`MasterScheduler.register_worker` treats a duplicate id as a
protocol error — the paper's master keys all bookkeeping by worker id,
so a crashed worker that reconnects under its old name would inherit
stale fault state and in-flight accounting.  Every engine therefore
mints a *fresh* id for each crash→rejoin cycle, and they must mint the
same way: in the multi-tenant service one physical worker serves many
jobs, so an id minted by one engine's rejoin path must never collide
with a registration another job already holds.

The policy is ``<base>:r<generation>``: ``worker:tcp:0`` rejoins as
``worker:tcp:0:r1``, then ``worker:tcp:0:r2``, and so on.  The base
survives every generation, so telemetry can group a worker's lives, and
the generation is strictly increasing per base, so no id is ever issued
twice by one minter.
"""

from __future__ import annotations

import re

_REJOIN_SUFFIX = re.compile(r"^(?P<base>.+):r(?P<gen>\d+)$")


def split_rejoin_id(worker_id: str) -> tuple[str, int]:
    """``("worker:tcp:0", 2)`` for ``"worker:tcp:0:r2"``; generation 0
    for an id with no rejoin suffix."""
    match = _REJOIN_SUFFIX.match(worker_id)
    if match is None:
        return worker_id, 0
    return match.group("base"), int(match.group("gen"))


def scratch_name(worker_id: str) -> str:
    """Filesystem-safe name for a worker's scratch directory."""
    return worker_id.replace(":", "_")


class RejoinIdMinter:
    """Mints fresh per-generation worker ids for crash→rejoin cycles.

    One minter per run (or per service worker pool): it remembers the
    highest generation issued per base, so a worker that crashes twice
    gets ``:r1`` then ``:r2`` even if the caller passes the original id
    both times.
    """

    def __init__(self) -> None:
        self._generation: dict[str, int] = {}

    def mint(self, worker_id: str) -> str:
        """A fresh id for the next life of ``worker_id``.

        Accepts either the base id or a previously minted one — both
        advance the same base's generation.
        """
        base, gen = split_rejoin_id(worker_id)
        nxt = max(self._generation.get(base, 0), gen) + 1
        self._generation[base] = nxt
        return f"{base}:r{nxt}"

    # -- durability ---------------------------------------------------------
    def to_state(self) -> dict:
        """JSON-safe snapshot of the issued generations.

        The minter's no-id-twice guarantee must survive a control-plane
        restart: a recovered service that forgot generation counters
        would re-issue ``:r1`` for a base that already has an ``:r1``
        registered in some job's scheduler.
        """
        return dict(self._generation)

    @classmethod
    def from_state(cls, state: dict) -> "RejoinIdMinter":
        minter = cls()
        minter._generation = {str(k): int(v) for k, v in state.items()}
        return minter
