"""The master's task-assignment logic (execution plane, §II-B/§II-C).

This is a pure state machine — no I/O, no clocks — shared by the
simulated engine and the real runtimes. It implements both assignment
disciplines of §III:

- **static** (pre-partitioning): task groups are chunked contiguously
  across the workers known at partition time; each worker only ever
  receives its own chunk. "The groups of files that will be processed
  by every worker is determined by the master at the beginning" (§II-F).
- **pull** (real-time): a single FIFO of task groups; whichever worker
  asks next gets the head. "Worker nodes that are heavily loaded
  process less compared to the nodes which are lightly loaded" — load
  balancing falls out of the pull discipline.

Failure semantics follow :mod:`repro.core.fault`: isolated workers get
no more data; with the retry extension enabled, tasks lost to a dead
worker are requeued (to the global queue, or to surviving workers'
chunks under static assignment).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Iterable, Optional, Sequence

from repro.core.fault import FaultTracker, RetryPolicy
from repro.core.strategies import DataManagementStrategy
from repro.data.partition import TaskGroup
from repro.errors import ProtocolError
from repro.telemetry.metrics import MetricsRegistry, NULL_METRICS


@dataclass(frozen=True)
class Assignment:
    """One task group handed to one worker."""

    group: TaskGroup
    worker_id: str
    attempt: int

    @property
    def task_id(self) -> int:
        return self.group.index


class MasterScheduler:
    """Assigns task groups to workers according to a strategy."""

    def __init__(
        self,
        groups: Sequence[TaskGroup],
        strategy: DataManagementStrategy,
        *,
        retry_policy: RetryPolicy | None = None,
        fault_tracker: FaultTracker | None = None,
        metrics: MetricsRegistry | None = None,
        clock: Callable[[], float] | None = None,
    ):
        self.strategy = strategy
        self.retry_policy = retry_policy or RetryPolicy.paper_faithful()
        self.faults = fault_tracker or FaultTracker()
        # The scheduler stays a pure state machine: metrics are plain
        # counters, cached here so assignment paths pay one method call.
        # ``clock`` is injected, never read ambiently — with it the
        # scheduler derives the latency-percentile signals (queue wait,
        # task latency, queue depth, completion rate) for every engine
        # from one implementation; without it those stay silent.
        metrics = metrics if metrics is not None else NULL_METRICS
        self._clock = clock
        self._m_assigned = metrics.counter("scheduler.assigned")
        self._m_completed = metrics.counter("scheduler.completed")
        self._m_duplicates = metrics.counter("scheduler.duplicate_results")
        self._m_errors = metrics.counter("scheduler.task_errors")
        self._m_retried = metrics.counter("scheduler.retried")
        self._m_lost = metrics.counter("scheduler.tasks_lost")
        self._m_rescinded = metrics.counter("scheduler.rescinded")
        self._m_workers_lost = metrics.counter("scheduler.workers_lost")
        self._m_speculated = metrics.counter("scheduler.speculated")
        self._m_partitions = metrics.counter("scheduler.partition_passes")
        self._h_queue_wait = metrics.histogram("queue.wait_seconds")
        self._h_latency = metrics.histogram("task.latency_seconds")
        self._g_depth = metrics.gauge("queue.depth")
        self._g_completion = metrics.gauge("run.completion_rate")
        self._groups = list(groups)
        self._pending = len(self._groups)
        self._g_depth.set(self._pending)
        if not self._groups:
            # An empty workload is trivially complete; without this a
            # zero-task job would report 0% completion forever.
            self._g_completion.set(1.0)
        self._ready_at: dict[int, float] = {}
        self._assigned_at: dict[tuple[str, int], float] = {}
        self._attempts: dict[int, int] = {g.index: 0 for g in self._groups}
        self._queue: Deque[TaskGroup] = deque(self._groups)
        self._static_chunks: dict[str, Deque[TaskGroup]] = {}
        self._partitioned = False
        self._workers: list[str] = []
        self._worker_set: set[str] = set()
        self._in_flight: dict[tuple[str, int], Assignment] = {}
        self.completed: dict[int, Assignment] = {}
        self.lost_tasks: list[Assignment] = []
        self.failed_tasks: list[Assignment] = []

    # -- membership --------------------------------------------------------
    def register_worker(self, worker_id: str) -> None:
        """A worker connected (Fig 4 "Initialize and register")."""
        if worker_id in self._worker_set:
            raise ProtocolError(f"worker {worker_id!r} registered twice")
        self._workers.append(worker_id)
        self._worker_set.add(worker_id)
        if self.strategy.static_assignment and self._partitioned:
            # Late joiner under static assignment: nothing was reserved
            # for it; it only gets work via retry requeues.
            self._static_chunks.setdefault(worker_id, deque())

    @property
    def workers(self) -> tuple[str, ...]:
        return tuple(self._workers)

    # -- speculation (extension) -------------------------------------------
    def speculate_for(self, worker_id: str) -> Optional[Assignment]:
        """Hand ``worker_id`` a *duplicate* of an in-flight task.

        Speculative execution (MapReduce-style backup tasks): when the
        queue is empty but tasks are still running elsewhere, an idle
        worker re-runs one — the first completion wins, the loser's
        report is discarded. Never duplicates a task already running on
        this worker, and at most one backup per task.
        """
        if self.faults.is_isolated(worker_id):
            return None
        candidates = [
            a
            for (wid, task_id), a in self._in_flight.items()
            if wid != worker_id
            and not any(w == worker_id and t == task_id for (w, t) in self._in_flight)
            and sum(1 for (_w, t) in self._in_flight if t == task_id) < 2
        ]
        if not candidates:
            return None
        # Back up the longest-outstanding task (lowest index is a
        # deterministic proxy for "assigned earliest").
        victim = min(candidates, key=lambda a: a.task_id)
        copy = Assignment(
            group=victim.group, worker_id=worker_id, attempt=victim.attempt
        )
        self._in_flight[(worker_id, copy.task_id)] = copy
        self._m_speculated.inc()
        if self._clock is not None:
            self._assigned_at[(worker_id, copy.task_id)] = self._clock()
        return copy

    # -- partitioning -------------------------------------------------------
    def partition_among(
        self,
        worker_ids: Iterable[str] | None = None,
        *,
        chunking: str = "contiguous",
        cost_hint: "Callable[[TaskGroup], float] | None" = None,
    ) -> None:
        """Fix the static chunking (no-op for pull strategies).

        ``chunking`` selects the division discipline:

        - ``"contiguous"`` (default, paper-faithful): contiguous slices
          in task order — the up-front division of §II-F, whose
          straggler skew is what real-time mode avoids in Table I.
        - ``"lpt_size"`` (extension): longest-processing-time greedy on
          group *byte size* — better when cost tracks input size.
        - ``"lpt_cost"`` (extension): LPT on a caller-provided
          ``cost_hint`` oracle — the idealized static division, useful
          as an upper bound in ablations.
        """
        if not self.strategy.static_assignment:
            self._partitioned = True
            self._mark_ready(self._queue)
            return
        ids = list(worker_ids) if worker_ids is not None else list(self._workers)
        if not ids:
            raise ProtocolError("cannot partition among zero workers")
        # A worker that was lost or isolated before partition time can
        # never serve a chunk (next_for refuses isolated workers), so
        # reserving work for it would strand those tasks outside every
        # accounting bucket and freeze queue.depth above zero — real in
        # the TCP plane, where a worker can register inside the window
        # and die before it closes.
        healthy = [w for w in ids if not self.faults.is_isolated(w)]
        if not healthy:
            # Every candidate is already gone: leave the work on the
            # overflow queue for late elastic joiners instead of carving
            # chunks nobody can serve.
            self._static_chunks = {}
            self._partitioned = True
            self._m_partitions.inc()
            self._mark_ready(self._queue)
            return
        ids = healthy
        # Under static assignment the chunks own the work; the global
        # queue only ever holds retry requeues that no chunk can take.
        self._queue.clear()
        self._static_chunks = {w: deque() for w in ids}
        if chunking == "contiguous":
            n = len(self._groups)
            k = len(ids)
            base, extra = divmod(n, k)
            start = 0
            for rank, worker_id in enumerate(ids):
                size = base + (1 if rank < extra else 0)
                for group in self._groups[start : start + size]:
                    self._static_chunks[worker_id].append(group)
                start += size
        elif chunking in ("lpt_size", "lpt_cost"):
            if chunking == "lpt_cost":
                if cost_hint is None:
                    raise ProtocolError("lpt_cost chunking needs a cost_hint")
                weight = cost_hint
            else:
                weight = lambda g: float(g.total_size)
            loads = {w: 0.0 for w in ids}
            # Stable LPT: heaviest group to the lightest worker; ties
            # break on registration order for determinism.
            for group in sorted(self._groups, key=weight, reverse=True):
                lightest = min(ids, key=lambda w: (loads[w], ids.index(w)))
                self._static_chunks[lightest].append(group)
                loads[lightest] += weight(group)
            # Keep per-worker task order by index (workers process their
            # chunk in order; LPT decided membership, not sequence).
            for worker_id in ids:
                ordered = sorted(self._static_chunks[worker_id], key=lambda g: g.index)
                self._static_chunks[worker_id] = deque(ordered)
        else:
            raise ProtocolError(f"unknown chunking discipline {chunking!r}")
        self._partitioned = True
        self._m_partitions.inc()
        self._mark_ready(self._groups)

    def _mark_ready(self, groups: Iterable[TaskGroup]) -> None:
        """Stamp when tasks became eligible for assignment (clock only)."""
        if self._clock is None:
            return
        now = self._clock()
        for group in groups:
            self._ready_at[group.index] = now

    def planned_chunk(self, worker_id: str) -> tuple[TaskGroup, ...]:
        """The chunk reserved for a worker (static strategies)."""
        return tuple(self._static_chunks.get(worker_id, ()))

    # -- assignment -----------------------------------------------------------
    def peek_pending(self) -> Optional[TaskGroup]:
        """The task group the pull queue would serve next, without
        drawing it.

        The service layer prices admission against per-tenant byte
        quotas before leasing a worker; peeking lets it see the next
        task's size without committing an assignment.
        """
        return self._queue[0] if self._queue else None

    def next_for(self, worker_id: str) -> Optional[Assignment]:
        """Hand the next task group to ``worker_id`` (None = drained).

        Isolated workers never receive data (§V-A: "automatically
        isolating the failed workers from doing further computation").
        """
        if not self._partitioned:
            raise ProtocolError("next_for() before partition_among()")
        if self.faults.is_isolated(worker_id):
            return None
        if self.strategy.static_assignment:
            source = self._static_chunks.get(worker_id)
            if not source:
                # Chunk drained (or late elastic joiner): serve retry
                # requeues from the overflow queue so no task is
                # stranded while a healthy worker is idle.
                source = self._queue
        else:
            source = self._queue
        if not source:
            return None
        group = source.popleft()
        self._attempts[group.index] += 1
        assignment = Assignment(
            group=group, worker_id=worker_id, attempt=self._attempts[group.index]
        )
        self._in_flight[(worker_id, group.index)] = assignment
        self._m_assigned.inc()
        self._pending -= 1
        self._g_depth.set(self._pending)
        if self._clock is not None:
            now = self._clock()
            ready = self._ready_at.pop(group.index, now)
            self._h_queue_wait.observe(now - ready)
            self._assigned_at[(worker_id, group.index)] = now
        return assignment

    def has_in_flight(self, worker_id: str, task_id: int) -> bool:
        """Whether this (worker, task) pair is on the books.

        A real master uses this to discard *stale* status reports: a
        worker the heartbeat sweep already declared dead (and whose
        task was requeued) may still deliver an ``EXEC_STATUS`` — that
        report must be ignored, not crash the master.
        """
        return (worker_id, task_id) in self._in_flight

    def assignment_in_flight(self, worker_id: str) -> Optional[Assignment]:
        """The worker's current in-flight assignment, if any (earliest
        task index when several are outstanding).

        Lets a master answer a *repeated* ``REQUEST_DATA`` — a worker
        whose reply frame was lost on the wire re-asks — by re-sending
        the same assignment instead of drawing a new one (at-least-once
        delivery without double-assignment).
        """
        mine = [a for (w, _t), a in self._in_flight.items() if w == worker_id]
        if not mine:
            return None
        return min(mine, key=lambda a: a.task_id)

    def abandon_outstanding(self, reason: str = "abandoned") -> list[Assignment]:
        """Terminal accounting when no master survives to drive retries.

        Every unresolved task (in flight, queued, or still reserved in
        a static chunk) becomes *lost* — the fate of work stranded by a
        master crash (§V-A single point of failure). Returns the newly
        lost assignments.
        """
        resolved = (
            set(self.completed)
            | {a.task_id for a in self.failed_tasks}
            | {a.task_id for a in self.lost_tasks}
        )
        in_flight = {a.task_id: a for a in self._in_flight.values()}
        newly_lost: list[Assignment] = []
        for group in self._groups:
            if group.index in resolved:
                continue
            assignment = in_flight.get(group.index) or Assignment(
                group=group, worker_id="", attempt=self._attempts[group.index]
            )
            self.lost_tasks.append(assignment)
            newly_lost.append(assignment)
            self._m_lost.inc()
        self._in_flight.clear()
        self._assigned_at.clear()
        self._ready_at.clear()
        self._queue.clear()
        for chunk in self._static_chunks.values():
            chunk.clear()
        self._pending = 0
        self._g_depth.set(0)
        return newly_lost

    # -- completion/failure ------------------------------------------------
    def _pop_in_flight(self, worker_id: str, task_id: int) -> Assignment:
        try:
            return self._in_flight.pop((worker_id, task_id))
        except KeyError:
            raise ProtocolError(
                f"status for task {task_id} not in flight on {worker_id!r}"
            ) from None

    def report_success(self, worker_id: str, task_id: int) -> None:
        assignment = self._pop_in_flight(worker_id, task_id)
        assigned_at = self._assigned_at.pop((worker_id, task_id), None)
        if task_id in self.completed:
            # A speculative copy lost the race; discard its result.
            self._m_duplicates.inc()
            return
        self.completed[task_id] = assignment
        self._m_completed.inc()
        if self._clock is not None and assigned_at is not None:
            self._h_latency.observe(self._clock() - assigned_at)
        if self._groups:
            self._g_completion.set(len(self.completed) / len(self._groups))

    def report_error(self, worker_id: str, task_id: int, message: str = "") -> bool:
        """Task exited with an error; returns True if it will be retried."""
        assignment = self._pop_in_flight(worker_id, task_id)
        self._assigned_at.pop((worker_id, task_id), None)
        self.faults.record_error(worker_id, message)
        if self.faults.is_isolated(worker_id):
            # Isolation by error count is a capacity loss too: the
            # worker's remaining reserved chunk can never be served
            # (next_for refuses isolated workers), so drain it through
            # the same retry/lost accounting a dead worker gets —
            # otherwise those tasks vanish from every bucket and the
            # queue.depth gauge stays frozen above zero.
            self._drain_reserved(worker_id)
            self._g_depth.set(self._pending)
        self._m_errors.inc()
        if task_id in self.completed:
            return False  # a speculative copy failed after the original won
        if any(t == task_id for (_w, t) in self._in_flight):
            return False  # another copy is still running; let it decide
        if self.retry_policy.should_retry(assignment.attempt, worker_loss=False):
            self._requeue(assignment)
            self._m_retried.inc()
            return True
        self.failed_tasks.append(assignment)
        return False

    def rescind(self, worker_id: str, task_id: int) -> Optional[Assignment]:
        """Take back an in-flight assignment as if it was never made.

        The master-failover primitive: a recovered control plane fences
        a stale-epoch report, and the fenced attempt must not count
        against the task's retry budget — the *master* failed, not the
        task or the worker.  The attempt counter is rolled back and the
        group requeued, so the next ``next_for`` re-issues the same
        attempt number (which keeps seeded per-attempt streams, fault
        injection included, byte-identical to an uninterrupted run).

        Returns the requeued assignment, or ``None`` when the task
        already resolved through another path (then only the in-flight
        entry is dropped).
        """
        assignment = self._pop_in_flight(worker_id, task_id)
        self._assigned_at.pop((worker_id, task_id), None)
        self._attempts[task_id] -= 1
        self._m_rescinded.inc()
        if task_id in self.completed or any(
            t == task_id for (_w, t) in self._in_flight
        ):
            return None  # a speculative copy already carried the task
        self._requeue(assignment)
        return assignment

    def worker_lost(self, worker_id: str, message: str = "") -> list[Assignment]:
        """A worker's VM/connection died. Returns the assignments requeued.

        Without the retry extension, in-flight and still-reserved tasks
        become *lost* (recorded, not rerun) — the paper's behaviour.
        """
        self.faults.record_loss(worker_id, message)
        self._m_workers_lost.inc()
        stranded = [
            a for (w, _t), a in list(self._in_flight.items()) if w == worker_id
        ]
        for assignment in stranded:
            del self._in_flight[(worker_id, assignment.task_id)]
            self._assigned_at.pop((worker_id, assignment.task_id), None)
        requeued: list[Assignment] = []
        for assignment in stranded:
            if assignment.task_id in self.completed or any(
                t == assignment.task_id for (_w, t) in self._in_flight
            ):
                continue  # a copy finished or is still running elsewhere
            if self.retry_policy.should_retry(assignment.attempt, worker_loss=True):
                self._requeue(assignment)
                requeued.append(assignment)
                self._m_retried.inc()
            else:
                self.lost_tasks.append(assignment)
                self._m_lost.inc()
        requeued.extend(self._drain_reserved(worker_id))
        self._g_depth.set(self._pending)
        return requeued

    def _drain_reserved(self, worker_id: str) -> list[Assignment]:
        """Redistribute a gone worker's still-reserved chunk.

        Tasks reserved for a worker that died or was isolated never
        started; each goes back through the retry policy (a lost
        reservation consumes an attempt, mirroring the in-flight path,
        so repeated worker loss exhausts ``max_attempts`` instead of
        requeueing forever) or is recorded lost.  Callers refresh the
        ``queue.depth`` gauge afterwards.
        """
        reserved = list(self._static_chunks.pop(worker_id, ()))
        self._pending -= len(reserved)
        requeued: list[Assignment] = []
        for group in reserved:
            attempt = self._attempts[group.index]
            pseudo = Assignment(group=group, worker_id=worker_id, attempt=attempt)
            if self.retry_policy.should_retry(attempt, worker_loss=True):
                self._attempts[group.index] = attempt + 1
                self._requeue(pseudo)
                requeued.append(pseudo)
                self._m_retried.inc()
            else:
                self.lost_tasks.append(pseudo)
                self._m_lost.inc()
        return requeued

    def _requeue(self, assignment: Assignment) -> None:
        self._pending += 1
        self._g_depth.set(self._pending)
        if self._clock is not None:
            self._ready_at[assignment.task_id] = self._clock()
        if self.strategy.static_assignment:
            # Rebalance onto the healthy worker with the shortest chunk.
            healthy = [
                (len(chunk), wid)
                for wid, chunk in self._static_chunks.items()
                if not self.faults.is_isolated(wid)
            ]
            if healthy:
                _, wid = min(healthy)
                self._static_chunks[wid].append(assignment.group)
                return
            # No healthy worker holds a chunk — fall through to the queue
            # so a future elastic worker can pick it up.
        self._queue.append(assignment.group)

    # -- progress -----------------------------------------------------------
    @property
    def outstanding(self) -> int:
        """Tasks not yet completed/failed/lost."""
        resolved = len(self.completed) + len(self.failed_tasks) + len(self.lost_tasks)
        return len(self._groups) - resolved

    @property
    def in_flight_count(self) -> int:
        return len(self._in_flight)

    @property
    def pending_count(self) -> int:
        """Tasks queued or reserved but not yet handed to a worker."""
        return self._pending

    @property
    def has_queued_work(self) -> bool:
        if self.strategy.static_assignment:
            return any(
                chunk and not self.faults.is_isolated(wid)
                for wid, chunk in self._static_chunks.items()
            ) or bool(self._queue)
        return bool(self._queue)

    @property
    def done(self) -> bool:
        """True when no task can make further progress.

        Either everything resolved, or nothing is queued/in flight, or
        work remains queued but every registered worker is isolated
        (the paper-faithful "lost tasks" terminal state).
        """
        if self.outstanding == 0:
            return True
        if self._in_flight:
            return False
        if not self.has_queued_work:
            return True
        if not self._partitioned or not self._workers:
            return False
        # Terminal only when *every* worker is isolated — stop at the
        # first healthy one, or every idle worker's poll goes O(workers).
        return not any(
            not self.faults.is_isolated(w) for w in self._workers
        )

    def summary(self) -> dict[str, int]:
        return {
            "total": len(self._groups),
            "completed": len(self.completed),
            "failed": len(self.failed_tasks),
            "lost": len(self.lost_tasks),
            "in_flight": len(self._in_flight),
        }

    # -- durability ----------------------------------------------------------
    def to_state(self) -> dict:
        """JSON-safe snapshot of every mutable field.

        Groups are *not* serialized — they are the job's spec, which the
        owner re-supplies to :meth:`from_state`; assignments round-trip
        as ``[task, worker, attempt]`` triples and rebind to the same
        group objects.  Every ordered container keeps its order: the
        queue decides who runs next, and restoring it shuffled would
        break the byte-identical-replay contract.
        """
        return {
            "attempts": [[t, n] for t, n in self._attempts.items()],
            "queue": [g.index for g in self._queue],
            "chunks": [
                [w, [g.index for g in chunk]]
                for w, chunk in self._static_chunks.items()
            ],
            "partitioned": self._partitioned,
            "workers": list(self._workers),
            "in_flight": [
                [a.task_id, w, a.attempt] for (w, _t), a in self._in_flight.items()
            ],
            "completed": [
                [a.task_id, a.worker_id, a.attempt] for a in self.completed.values()
            ],
            "failed": [
                [a.task_id, a.worker_id, a.attempt] for a in self.failed_tasks
            ],
            "lost": [[a.task_id, a.worker_id, a.attempt] for a in self.lost_tasks],
            "pending": self._pending,
            "ready_at": [[t, at] for t, at in self._ready_at.items()],
            "assigned_at": [
                [w, t, at] for (w, t), at in self._assigned_at.items()
            ],
        }

    @classmethod
    def from_state(
        cls,
        state: dict,
        groups: Sequence[TaskGroup],
        strategy: DataManagementStrategy,
        *,
        retry_policy: RetryPolicy | None = None,
        fault_tracker: FaultTracker | None = None,
        metrics: MetricsRegistry | None = None,
        clock: Callable[[], float] | None = None,
    ) -> "MasterScheduler":
        sched = cls(
            groups,
            strategy,
            retry_policy=retry_policy,
            fault_tracker=fault_tracker,
            metrics=metrics,
            clock=clock,
        )
        by_index = {g.index: g for g in sched._groups}

        def assignment(task: int, worker: str, attempt: int) -> Assignment:
            return Assignment(
                group=by_index[task], worker_id=worker, attempt=attempt
            )

        sched._attempts = {int(t): int(n) for t, n in state["attempts"]}
        sched._queue = deque(by_index[t] for t in state["queue"])
        sched._static_chunks = {
            w: deque(by_index[t] for t in ids) for w, ids in state["chunks"]
        }
        sched._partitioned = bool(state["partitioned"])
        sched._workers = list(state["workers"])
        sched._worker_set = set(sched._workers)
        sched._in_flight = {
            (w, int(t)): assignment(int(t), w, int(n))
            for t, w, n in state["in_flight"]
        }
        sched.completed = {
            int(t): assignment(int(t), w, int(n))
            for t, w, n in state["completed"]
        }
        sched.failed_tasks = [
            assignment(int(t), w, int(n)) for t, w, n in state["failed"]
        ]
        sched.lost_tasks = [
            assignment(int(t), w, int(n)) for t, w, n in state["lost"]
        ]
        sched._pending = int(state["pending"])
        sched._ready_at = {int(t): float(at) for t, at in state["ready_at"]}
        sched._assigned_at = {
            (w, int(t)): float(at) for w, t, at in state["assigned_at"]
        }
        sched._g_depth.set(sched._pending)
        if sched._groups:
            sched._g_completion.set(len(sched.completed) / len(sched._groups))
        return sched
