"""Execution-command templating (§II-D of the paper).

The controller initializes workers with the *execution syntax*:
``app arg1 arg2 $inp1`` where ``$inp1`` is replaced by the location of
the file at run time. FRIEDA never modifies application code — this
substitution is the whole integration surface.

:class:`CommandTemplate` supports:

- shell-style string templates with ``$inp1 .. $inpN`` (and ``$inp``
  as an alias for ``$inp1``, ``$out`` for an output location),
- Python callables for in-process runtimes (the callable receives the
  resolved input paths),
- arity validation against the partition grouping, so a pairwise
  grouping with a one-input template fails at configuration time, not
  mid-run.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.errors import ConfigurationError

_PLACEHOLDER_RE = re.compile(r"\$(?:\{)?(inp(\d*)|out)(?:\})?")


@dataclass(frozen=True)
class CommandTemplate:
    """An application invocation with input placeholders.

    Exactly one of ``template`` (string form) or ``function`` (callable
    form) must be provided.

    >>> ct = CommandTemplate(template="blastall -p blastp -i $inp1 -d $inp2")
    >>> ct.arity
    2
    >>> ct.build(["/data/q.fa", "/data/nr.db"])
    'blastall -p blastp -i /data/q.fa -d /data/nr.db'
    """

    template: Optional[str] = None
    function: Optional[Callable[..., object]] = None
    name: str = ""

    def __post_init__(self) -> None:
        if (self.template is None) == (self.function is None):
            raise ConfigurationError(
                "CommandTemplate needs exactly one of template= or function="
            )
        if self.template is not None and not self.template.strip():
            raise ConfigurationError("empty command template")

    @property
    def arity(self) -> Optional[int]:
        """Number of distinct input placeholders (None for callables —
        a callable accepts however many files the grouping yields)."""
        if self.template is None:
            return None
        indices = set()
        for match in _PLACEHOLDER_RE.finditer(self.template):
            kind, num = match.group(1), match.group(2)
            if kind == "out":
                continue
            indices.add(int(num) if num else 1)
        if not indices:
            return 0
        expected = set(range(1, max(indices) + 1))
        missing = expected - indices
        if missing:
            raise ConfigurationError(
                f"template references $inp{max(indices)} but is missing "
                f"{sorted('$inp%d' % i for i in missing)}"
            )
        return len(indices)

    def validate_group_size(self, group_size: int) -> None:
        """Raise unless a task of ``group_size`` files fits the template."""
        arity = self.arity
        if arity is None or arity == 0:
            return
        if arity != group_size:
            raise ConfigurationError(
                f"command expects {arity} input(s) but the partition "
                f"grouping yields {group_size} file(s) per task"
            )

    def build(self, input_paths: Sequence[str], output_path: str = "") -> str:
        """Render the shell command with real file locations."""
        if self.template is None:
            raise ConfigurationError("build() on a callable CommandTemplate")
        self.validate_group_size(len(input_paths))

        def replace(match: re.Match) -> str:
            kind, num = match.group(1), match.group(2)
            if kind == "out":
                return output_path
            index = (int(num) if num else 1) - 1
            return str(input_paths[index])

        return _PLACEHOLDER_RE.sub(replace, self.template)

    def call(self, input_paths: Sequence[str]) -> object:
        """Invoke the callable form with the resolved input paths."""
        if self.function is None:
            raise ConfigurationError("call() on a string CommandTemplate")
        return self.function(*input_paths)

    @property
    def display_name(self) -> str:
        if self.name:
            return self.name
        if self.template is not None:
            return self.template.split()[0]
        return getattr(self.function, "__name__", "callable")
