"""FRIEDA protocol messages (Figures 2–4 of the paper).

Message names follow the labels in the architecture figures:
``START_MASTER``, ``SET_PARTITION_INFO``, ``FORK_REMOTE_WORKERS``,
``REQUEST_DATA``, ``FILE_METADATA``, ``FILE_DATA``, plus the status and
elasticity messages §II-D describes. Each message is a frozen dataclass
with a JSON round-trip (:func:`encode_message` / :func:`decode_message`)
used verbatim by the asyncio TCP runtime; the simulated engine passes
the same objects through in-memory mailboxes.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields
from typing import Any, ClassVar, Type

from repro.errors import ProtocolError


@dataclass(frozen=True)
class Message:
    """Base protocol message."""

    #: Wire name of the message (class attribute, not serialized field).
    msg_type: ClassVar[str] = "MESSAGE"

    def to_dict(self) -> dict[str, Any]:
        payload = asdict(self)
        payload["type"] = self.msg_type
        return payload


_REGISTRY: dict[str, Type[Message]] = {}


def _register(cls: Type[Message]) -> Type[Message]:
    if cls.msg_type in _REGISTRY:
        raise ProtocolError(f"duplicate message type {cls.msg_type!r}")
    _REGISTRY[cls.msg_type] = cls
    return cls


@_register
@dataclass(frozen=True)
class StartMaster(Message):
    """Controller → master: start with a partition strategy (Fig 2a/4)."""

    msg_type: ClassVar[str] = "START_MASTER"
    strategy: str = "real_time"
    grouping: str = "single"
    multicore: bool = True


@_register
@dataclass(frozen=True)
class SetPartitionInfo(Message):
    """Controller → master: the generated partition table (Fig 3 step 2).

    ``groups`` is a list of lists of file names (the partition
    generator's output); sizes travel separately so the master can plan
    transfers without a catalog lookup.
    """

    msg_type: ClassVar[str] = "SET_PARTITION_INFO"
    groups: tuple[tuple[str, ...], ...] = ()
    sizes: tuple[tuple[int, ...], ...] = ()

    def __post_init__(self) -> None:
        if self.sizes and len(self.sizes) != len(self.groups):
            raise ProtocolError("sizes/groups length mismatch")


@_register
@dataclass(frozen=True)
class ForkRemoteWorkers(Message):  # frieda: allow[protocol-dead-kind] -- Fig 2a controller-plane kind, reserved for the multi-tenant service arc
    """Controller action: spawn workers on nodes (Fig 2a)."""

    msg_type: ClassVar[str] = "FORK_REMOTE_WORKERS"
    nodes: tuple[str, ...] = ()
    command_template: str = ""
    clones_per_node: int = 1


@_register
@dataclass(frozen=True)
class RegisterWorker(Message):
    """Worker → master: initialize and register (Fig 4)."""

    msg_type: ClassVar[str] = "REGISTER_WORKER"
    worker_id: str = ""
    node_id: str = ""
    cores: int = 1


@_register
@dataclass(frozen=True)
class ConnectionAck(Message):
    """Master → worker: connection acknowledgement (Fig 4)."""

    msg_type: ClassVar[str] = "CONNECTION_ACK"
    worker_id: str = ""
    accepted: bool = True
    reason: str = ""
    #: Whether the master wants this worker to run a local telemetry hub
    #: and ship batched spans/metrics back in ``TELEMETRY`` frames.
    ship_telemetry: bool = False


@_register
@dataclass(frozen=True)
class RequestData(Message):
    """Worker → master: ask for the next unit of work (Fig 4)."""

    msg_type: ClassVar[str] = "REQUEST_DATA"
    worker_id: str = ""


@_register
@dataclass(frozen=True)
class FileMetadata(Message):
    """Master → worker: what the next task's inputs are (Fig 2b)."""

    msg_type: ClassVar[str] = "FILE_METADATA"
    task_id: int = -1
    file_names: tuple[str, ...] = ()
    sizes: tuple[int, ...] = ()
    #: Whether the payload follows (remote modes) or the worker already
    #: holds the files locally (pre-partitioned local).
    transfer_required: bool = True
    #: Which attempt of the task this assignment is (1 = first try);
    #: lets workers stamp retry attempts into their task records.
    attempt: int = 1


@_register
@dataclass(frozen=True)
class FileData(Message):
    """Master → worker: one file's payload (Fig 2b FILE_DATA).

    The simulated engine never materializes ``payload`` (transfer cost
    is modeled by the flow network); the TCP runtime carries real bytes
    base64-free as a binary frame referenced by ``payload_len``.
    """

    msg_type: ClassVar[str] = "FILE_DATA"
    task_id: int = -1
    file_name: str = ""
    payload_len: int = 0
    #: CRC32 of the payload (8 hex digits); empty disables verification
    #: (the simulated engine never materializes payloads).
    checksum: str = ""


@_register
@dataclass(frozen=True)
class ExecStatus(Message):
    """Worker → master: execution result for one task (Fig 4)."""

    msg_type: ClassVar[str] = "EXEC_STATUS"
    worker_id: str = ""
    task_id: int = -1
    ok: bool = True
    duration: float = 0.0
    error: str = ""
    output_summary: str = ""


@_register
@dataclass(frozen=True)
class Heartbeat(Message):
    """Worker → master: liveness beat (§V-A monitoring extension).

    A worker whose connection stays open but whose beats stop — a hung
    process, a wedged VM — is *suspected* and then *declared dead* by
    the master's :class:`~repro.core.monitoring.HeartbeatMonitor`, and
    recovered through the same path as a broken connection.
    """

    msg_type: ClassVar[str] = "HEARTBEAT"
    worker_id: str = ""
    seq: int = 0
    #: Send time on the *worker's* clock (negative = not reported).
    #: The master pairs this with its own receive time to estimate the
    #: worker→master clock offset for trace merging.
    sent_at: float = -1.0
    #: Most recent heartbeat round-trip time measured by the worker from
    #: a :class:`HeartbeatAck` (negative = no measurement yet).
    rtt: float = -1.0


@_register
@dataclass(frozen=True)
class HeartbeatAck(Message):
    """Master → worker: echo of a heartbeat for RTT measurement.

    Carries the beat's ``seq`` and the worker-clock ``sent_at`` back so
    the worker can compute a round trip entirely on its own clock and
    report it in the next :class:`Heartbeat`.
    """

    msg_type: ClassVar[str] = "HEARTBEAT_ACK"
    worker_id: str = ""
    seq: int = 0
    sent_at: float = -1.0


@_register
@dataclass(frozen=True)
class ResendFile(Message):
    """Worker → master: re-request a payload that failed verification.

    Sent when a ``FILE_DATA`` payload's checksum does not match; the
    master re-reads and re-sends the file. Workers bound the number of
    re-requests per file so a persistently corrupt link degrades into a
    worker failure instead of an infinite loop.
    """

    msg_type: ClassVar[str] = "RESEND_FILE"
    worker_id: str = ""
    file_name: str = ""
    task_id: int = -1
    reason: str = "checksum mismatch"


@_register
@dataclass(frozen=True)
class TelemetryBatch(Message):
    """Worker → master: a batch of locally-recorded telemetry.

    The JSON body is only the envelope; the batch itself (spans, events,
    and metric deltas, encoded by :mod:`repro.telemetry.shipping`)
    travels as a binary frame payload referenced by ``payload_len`` and
    CRC-checked like ``FILE_DATA``. Telemetry is lossy-tolerant: a batch
    that fails verification is dropped and counted, never retransmitted.
    """

    msg_type: ClassVar[str] = "TELEMETRY"
    worker_id: str = ""
    #: Monotonic per-worker batch sequence number; the master folds
    #: batches in ``(worker_id, seq)`` order so merges are deterministic.
    seq: int = 0
    payload_len: int = 0
    #: CRC32 of the payload (8 hex digits); empty disables verification.
    checksum: str = ""


@_register
@dataclass(frozen=True)
class NoMoreData(Message):
    """Master → worker: all inputs processed; worker may exit (§II-C)."""

    msg_type: ClassVar[str] = "NO_MORE_DATA"
    worker_id: str = ""


@_register
@dataclass(frozen=True)
class WorkerFailed(Message):
    """Master → controller: a worker was lost (§II-D failure reporting)."""

    msg_type: ClassVar[str] = "WORKER_FAILED"
    worker_id: str = ""
    node_id: str = ""
    error: str = ""
    tasks_in_flight: tuple[int, ...] = ()


@_register
@dataclass(frozen=True)
class AddWorker(Message):  # frieda: allow[protocol-dead-kind] -- elastic add (SV-A), reserved for the multi-tenant service arc
    """User/controller: elastically add a worker (§V-A Elastic)."""

    msg_type: ClassVar[str] = "ADD_WORKER"
    node_id: str = ""
    cores: int = 1


@_register
@dataclass(frozen=True)
class RemoveWorker(Message):  # frieda: allow[protocol-dead-kind] -- elastic drain, reserved for the multi-tenant service arc
    """User/controller: drain and remove a worker."""

    msg_type: ClassVar[str] = "REMOVE_WORKER"
    worker_id: str = ""
    drain: bool = True


@_register
@dataclass(frozen=True)
class ConfigUpdate(Message):  # frieda: allow[protocol-dead-kind] -- SII-D live reconfiguration, reserved for the multi-tenant service arc
    """Controller → master over the open channel (§II-D): change the
    execution configuration at run time without restarting the master."""

    msg_type: ClassVar[str] = "CONFIG_UPDATE"
    key: str = ""
    value: str = ""


def encode_message(message: Message) -> bytes:
    """Serialize a message to a JSON line (UTF-8, newline-free)."""
    return json.dumps(message.to_dict(), separators=(",", ":"), sort_keys=True).encode()


def _coerce(cls: Type[Message], payload: dict[str, Any]) -> Message:
    kwargs: dict[str, Any] = {}
    for f in fields(cls):
        if f.name not in payload:
            continue
        value = payload[f.name]
        # JSON produces lists; the dataclasses use tuples for hashability.
        if isinstance(value, list):
            value = tuple(tuple(v) if isinstance(v, list) else v for v in value)
        kwargs[f.name] = value
    return cls(**kwargs)


def decode_message(data: bytes | str | dict[str, Any]) -> Message:
    """Deserialize a message from JSON bytes/str or a dict."""
    if isinstance(data, (bytes, str)):
        try:
            payload = json.loads(data)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"undecodable message: {exc}") from exc
    else:
        payload = dict(data)
    if not isinstance(payload, dict) or "type" not in payload:
        raise ProtocolError(f"message without type: {payload!r}")
    msg_type = payload.pop("type")
    try:
        cls = _REGISTRY[msg_type]
    except KeyError:
        raise ProtocolError(f"unknown message type {msg_type!r}") from None
    try:
        return _coerce(cls, payload)
    except TypeError as exc:
        raise ProtocolError(f"bad fields for {msg_type}: {exc}") from exc
