"""FRIEDA core: the two-plane architecture.

Control plane (§II-A): :class:`~repro.core.controller.ControllerLogic`
plus the partition generator (:mod:`repro.data.partition`). Execution
plane (§II-B): the master scheduler
(:class:`~repro.core.scheduler.MasterScheduler`) and workers.

The state machines here are engine-agnostic pure logic; the simulated
engine (:mod:`repro.engines.simulated`) and the real runtimes
(:mod:`repro.runtime`) both drive them, which is exactly the
"separation of concerns" the paper claims enables plugging different
execution environments under one control plane (§II).
"""

from repro.core.messages import (
    AddWorker,
    ConfigUpdate,
    ConnectionAck,
    ExecStatus,
    FileData,
    FileMetadata,
    Message,
    NoMoreData,
    RegisterWorker,
    RemoveWorker,
    RequestData,
    SetPartitionInfo,
    StartMaster,
    WorkerFailed,
    decode_message,
    encode_message,
)
from repro.core.commands import CommandTemplate
from repro.core.strategies import DataManagementStrategy, StrategyKind, strategy_for
from repro.core.scheduler import Assignment, MasterScheduler
from repro.core.controller import ControllerLogic, ControllerEvent
from repro.core.worker import WorkerLogic
from repro.core.fault import FaultTracker, RetryPolicy
from repro.core.elasticity import ElasticityManager, ScaleEvent
from repro.core.advisor import StrategyAdvisor, RunRecord
from repro.core.framework import Frieda, FriedaConfig, RunOutcome, TaskRecord

__all__ = [
    "Message",
    "StartMaster",
    "SetPartitionInfo",
    "RegisterWorker",
    "ConnectionAck",
    "RequestData",
    "FileMetadata",
    "FileData",
    "ExecStatus",
    "NoMoreData",
    "WorkerFailed",
    "AddWorker",
    "RemoveWorker",
    "ConfigUpdate",
    "decode_message",
    "encode_message",
    "CommandTemplate",
    "DataManagementStrategy",
    "StrategyKind",
    "strategy_for",
    "Assignment",
    "MasterScheduler",
    "ControllerLogic",
    "ControllerEvent",
    "WorkerLogic",
    "FaultTracker",
    "RetryPolicy",
    "ElasticityManager",
    "ScaleEvent",
    "StrategyAdvisor",
    "RunRecord",
    "Frieda",
    "FriedaConfig",
    "RunOutcome",
    "TaskRecord",
]
