"""Storage-tier selection (§III-A, the control plane's "storage
selection" decision).

The paper describes the trade-off space — local disk is fastest but
tiny and transient; block stores are attachable and persistent;
network/iSCSI storage is large and shareable but contended — and puts
the decision in the controller. :func:`select_storage` encodes that
reasoning as an auditable policy: given the dataset, the cluster, and
what the application needs (sharing, persistence), it returns a tier
plus the rationale, and refuses configurations that cannot work (e.g. a
dataset larger than every tier).

This is pure decision logic; the engines act on the returned tier.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.cluster import ClusterSpec
from repro.cloud.storage import StorageTier
from repro.errors import ConfigurationError
from repro.util.units import format_bytes


@dataclass(frozen=True)
class StorageRequirements:
    """What the application needs from the data's home."""

    #: Bytes each worker node must be able to hold at once.
    per_node_bytes: float
    #: Bytes of data shared by all nodes (common database, etc.).
    shared_bytes: float = 0.0
    #: Data must survive VM failure/termination.
    needs_persistence: bool = False
    #: Multiple nodes read the same bytes concurrently.
    needs_sharing: bool = False
    #: Fraction of a node's local disk the policy is willing to commit
    #: (leave room for scratch/outputs).
    local_headroom: float = 0.8


@dataclass(frozen=True)
class StorageDecision:
    """The selected tier and why."""

    tier: StorageTier
    rationale: str
    #: Estimated single-client streaming rate for the chosen tier, bits/s.
    estimated_read_bps: float

    def __str__(self) -> str:
        return f"{self.tier.value}: {self.rationale}"


def select_storage(
    requirements: StorageRequirements,
    cluster: ClusterSpec,
) -> StorageDecision:
    """Pick the storage tier for a workload on a cluster.

    Preference order mirrors §III-A: local disk whenever the data fits
    and neither persistence nor sharing is required (fastest I/O);
    shared network storage when nodes must see one copy; block store
    for persistent single-attach data; network storage as the fallback
    for data too large for any node.
    """
    if requirements.per_node_bytes < 0 or requirements.shared_bytes < 0:
        raise ConfigurationError("storage requirements must be non-negative")
    if not 0 < requirements.local_headroom <= 1:
        raise ConfigurationError("local_headroom must be in (0, 1]")

    itype = cluster.instance_type
    local_budget = itype.local_disk_bytes * requirements.local_headroom
    resident = requirements.per_node_bytes + requirements.shared_bytes
    has_network_tier = cluster.network_storage_bytes > 0

    if requirements.needs_sharing:
        if not has_network_tier:
            raise ConfigurationError(
                "workload needs shared storage but the cluster spec has no "
                "network-storage tier (set network_storage_bytes)"
            )
        if requirements.shared_bytes > cluster.network_storage_bytes:
            raise ConfigurationError(
                f"shared data ({format_bytes(requirements.shared_bytes)}) exceeds "
                f"network storage ({format_bytes(cluster.network_storage_bytes)})"
            )
        return StorageDecision(
            tier=StorageTier.NETWORK,
            rationale=(
                "nodes share one copy; iSCSI-style storage holds "
                f"{format_bytes(requirements.shared_bytes)} behind the server uplink"
            ),
            estimated_read_bps=min(
                cluster.network_storage_bps, cluster.network_storage_server_bps
            ),
        )

    if requirements.needs_persistence:
        return StorageDecision(
            tier=StorageTier.BLOCK,
            rationale=(
                "data must survive VM loss; block store persists across the "
                "transient instance"
            ),
            estimated_read_bps=min(itype.nic_bps, itype.disk_read_bps),
        )

    if resident <= local_budget:
        return StorageDecision(
            tier=StorageTier.LOCAL,
            rationale=(
                f"{format_bytes(resident)} fits in "
                f"{format_bytes(local_budget)} of local disk — fastest I/O tier"
            ),
            estimated_read_bps=itype.disk_read_bps,
        )

    if has_network_tier and resident <= cluster.network_storage_bytes:
        return StorageDecision(
            tier=StorageTier.NETWORK,
            rationale=(
                f"{format_bytes(resident)} exceeds the "
                f"{format_bytes(local_budget)} local budget; spilling to network storage"
            ),
            estimated_read_bps=min(
                cluster.network_storage_bps, cluster.network_storage_server_bps
            ),
        )

    raise ConfigurationError(
        f"no tier can hold {format_bytes(resident)} per node: local budget is "
        f"{format_bytes(local_budget)}"
        + (
            f", network storage is {format_bytes(cluster.network_storage_bytes)}"
            if has_network_tier
            else ", and the cluster has no network-storage tier"
        )
    )
