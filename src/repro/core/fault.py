"""Fault tracking, isolation and the retry extension.

Paper-faithful behaviour (§V-A "Robust"):

- every worker error is reported to the controller,
- in real-time mode a failed worker is *isolated* — it stops receiving
  data — but its lost task is **not** restarted ("it is not capable of
  automatically restarting the failed task"),

:class:`RetryPolicy` implements the paper's named future work (task
restart and recovery) as an opt-in extension; the ablation benchmark
``benchmarks/bench_failures.py`` compares both behaviours.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class RetryPolicy:
    """Task-restart policy (extension; disabled reproduces the paper).

    ``max_attempts`` counts total tries per task including the first;
    ``retry_on_worker_loss`` requeues tasks that were in flight on a
    worker that died; ``retry_on_task_error`` requeues tasks whose
    program exited non-zero.
    """

    max_attempts: int = 1
    retry_on_worker_loss: bool = False
    retry_on_task_error: bool = False

    @classmethod
    def paper_faithful(cls) -> "RetryPolicy":
        """No restarts at all — the behaviour evaluated in the paper."""
        return cls(max_attempts=1, retry_on_worker_loss=False, retry_on_task_error=False)

    @classmethod
    def resilient(cls, max_attempts: int = 3) -> "RetryPolicy":
        """The future-work behaviour: restart on loss and error."""
        return cls(
            max_attempts=max_attempts,
            retry_on_worker_loss=True,
            retry_on_task_error=True,
        )

    def should_retry(self, attempt: int, *, worker_loss: bool) -> bool:
        """Whether a task on its ``attempt``-th try may run again."""
        if attempt >= self.max_attempts:
            return False
        return self.retry_on_worker_loss if worker_loss else self.retry_on_task_error


@dataclass
class WorkerHealth:
    """Error bookkeeping for one worker."""

    worker_id: str
    errors: int = 0
    lost: bool = False
    isolated: bool = False
    error_messages: list[str] = field(default_factory=list)


class FaultTracker:
    """Controller-side record of all worker errors (§II-D: "Information
    on any failed worker gets reported to the controller").

    ``isolate_after`` is the error count at which a worker stops
    receiving further data (1 = isolate on first error, the real-time
    mode's automatic behaviour).
    """

    def __init__(self, isolate_after: int = 1):
        if isolate_after < 1:
            raise ValueError("isolate_after must be >= 1")
        self.isolate_after = isolate_after
        self._health: dict[str, WorkerHealth] = {}
        #: Optional callback fired exactly once per worker, on its
        #: transition into isolation: ``on_isolate(worker_id, health)``.
        #: The engine wires this to the elasticity manager so the
        #: auto-scaler sees true capacity (detection → rescale).
        self.on_isolate = None

    def _entry(self, worker_id: str) -> WorkerHealth:
        return self._health.setdefault(worker_id, WorkerHealth(worker_id))

    def _isolate(self, entry: WorkerHealth) -> None:
        if entry.isolated:
            return
        entry.isolated = True
        if self.on_isolate is not None:
            self.on_isolate(entry.worker_id, entry)

    def record_error(self, worker_id: str, message: str = "") -> bool:
        """Record a task error; returns True if the worker is now isolated."""
        entry = self._entry(worker_id)
        entry.errors += 1
        if message:
            entry.error_messages.append(message)
        if entry.errors >= self.isolate_after:
            self._isolate(entry)
        return entry.isolated

    def record_loss(self, worker_id: str, message: str = "") -> None:
        """Record that a worker's connection/VM is gone."""
        entry = self._entry(worker_id)
        entry.lost = True
        if message:
            entry.error_messages.append(message)
        self._isolate(entry)

    def is_isolated(self, worker_id: str) -> bool:
        entry = self._health.get(worker_id)
        return bool(entry and entry.isolated)

    def is_lost(self, worker_id: str) -> bool:
        entry = self._health.get(worker_id)
        return bool(entry and entry.lost)

    def health(self, worker_id: str) -> Optional[WorkerHealth]:
        return self._health.get(worker_id)

    @property
    def isolated_workers(self) -> frozenset[str]:
        return frozenset(w for w, h in self._health.items() if h.isolated)

    @property
    def total_errors(self) -> int:
        return sum(h.errors for h in self._health.values())

    # -- durability ---------------------------------------------------------
    def to_state(self) -> dict:
        """JSON-safe snapshot (``on_isolate`` is wiring, not state —
        the owner re-attaches it after :meth:`from_state`)."""
        return {
            "isolate_after": self.isolate_after,
            "health": [
                {
                    "worker": h.worker_id,
                    "errors": h.errors,
                    "lost": h.lost,
                    "isolated": h.isolated,
                    "messages": list(h.error_messages),
                }
                for h in self._health.values()
            ],
        }

    @classmethod
    def from_state(cls, state: dict) -> "FaultTracker":
        tracker = cls(isolate_after=int(state["isolate_after"]))
        for entry in state["health"]:
            tracker._health[entry["worker"]] = WorkerHealth(
                worker_id=entry["worker"],
                errors=int(entry["errors"]),
                lost=bool(entry["lost"]),
                isolated=bool(entry["isolated"]),
                error_messages=list(entry["messages"]),
            )
        return tracker
