"""Data-management strategies (§III of the paper).

Figure 5 names three classes — *pre-partitioning remote*,
*pre-partitioning local*, *real-time partitioning* — and §III-B adds
the common-data mode. Each strategy is a declarative
:class:`DataManagementStrategy` descriptor that tells the engines:

- where the data starts (``data_local_to_workers``),
- whether the whole dataset is replicated (``replicate_all``),
- whether transfer is an up-front staging phase
  (``staged_before_execution``) or lazy per-request (``lazy``),
- whether the assignment of tasks to workers is fixed up front
  (``static_assignment``) or pull-based.

The engines contain no per-strategy branches beyond these flags — that
is the plug-and-play extensibility §V-B claims.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError


class StrategyKind(str, enum.Enum):
    """The built-in strategies (paper §III-B)."""

    #: "Pre-Partitioned Task and Common Data": every node receives the
    #: full dataset before execution (the BLAST database pattern).
    COMMON_DATA = "common_data"
    #: "Pre-partitioning local" (Fig 5b): data already sits on worker
    #: local disks (e.g. baked into the VM image); no transfers.
    PRE_PARTITIONED_LOCAL = "pre_partitioned_local"
    #: "Pre-partitioning remote" (Fig 5a): partitions staged from the
    #: master/source to workers, then execution starts (phases
    #: sequential, §II-C).
    PRE_PARTITIONED_REMOTE = "pre_partitioned_remote"
    #: "Real-time partitioning" (Fig 5c): lazy pull — the master
    #: "doesn't transfer a file until a worker asks for it" (§II-F);
    #: transfer overlaps computation; inherently load-balanced.
    REAL_TIME = "real_time"


@dataclass(frozen=True)
class DataManagementStrategy:
    """Behavioural descriptor the engines interpret."""

    kind: StrategyKind
    #: Task→worker assignment fixed before execution (contiguous chunks).
    static_assignment: bool
    #: All data transferred before any task runs (sequential phases).
    staged_before_execution: bool
    #: Workers pull data on demand (overlapped transfer/compute).
    lazy: bool
    #: Full dataset replicated to every worker node.
    replicate_all: bool
    #: Inputs are already resident on the worker's local storage.
    data_local_to_workers: bool
    #: Real-time failure isolation: a failed worker simply stops being
    #: handed data (§V-A Robust). Static assignment cannot isolate
    #: without the retry extension.
    isolates_failures: bool

    def __post_init__(self) -> None:
        if self.lazy and self.staged_before_execution:
            raise ConfigurationError("a strategy cannot be both lazy and staged")


_STRATEGIES: dict[StrategyKind, DataManagementStrategy] = {
    StrategyKind.COMMON_DATA: DataManagementStrategy(
        kind=StrategyKind.COMMON_DATA,
        static_assignment=True,
        staged_before_execution=True,
        lazy=False,
        replicate_all=True,
        data_local_to_workers=False,
        isolates_failures=False,
    ),
    StrategyKind.PRE_PARTITIONED_LOCAL: DataManagementStrategy(
        kind=StrategyKind.PRE_PARTITIONED_LOCAL,
        static_assignment=True,
        staged_before_execution=False,
        lazy=False,
        replicate_all=False,
        data_local_to_workers=True,
        isolates_failures=False,
    ),
    StrategyKind.PRE_PARTITIONED_REMOTE: DataManagementStrategy(
        kind=StrategyKind.PRE_PARTITIONED_REMOTE,
        static_assignment=True,
        staged_before_execution=True,
        lazy=False,
        replicate_all=False,
        data_local_to_workers=False,
        isolates_failures=False,
    ),
    StrategyKind.REAL_TIME: DataManagementStrategy(
        kind=StrategyKind.REAL_TIME,
        static_assignment=False,
        staged_before_execution=False,
        lazy=True,
        replicate_all=False,
        data_local_to_workers=False,
        isolates_failures=True,
    ),
}


def strategy_for(kind: StrategyKind | str) -> DataManagementStrategy:
    """Look up the descriptor for a strategy kind (accepts the string name)."""
    try:
        return _STRATEGIES[StrategyKind(kind)]
    except ValueError:
        valid = ", ".join(k.value for k in StrategyKind)
        raise ConfigurationError(
            f"unknown strategy {kind!r}; valid strategies: {valid}"
        ) from None
