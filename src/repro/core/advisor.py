"""Adaptive strategy selection from execution history (extension).

§V-A ("Intelligent") and §VII both promise future work where FRIEDA
"selects the best data management strategy based on past executions of
an application". :class:`StrategyAdvisor` implements that: it keeps
:class:`RunRecord` history per application and recommends the strategy
with the best observed makespan; with no history it falls back to a
workload-feature heuristic derived from the paper's own findings:

- transfer-dominated workloads (ALS-like, bytes/flop high) → real-time
  (overlap hides the transfer, Fig 6a),
- compute-dominated workloads (BLAST-like) with variable task costs →
  real-time (load balancing, Fig 6b),
- compute-dominated with uniform task costs → pre-partitioned
  (no pull round-trips, §III-A: "works best if every computation is
  more or less identical").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.strategies import StrategyKind
from repro.util.stats import RunningStats


@dataclass(frozen=True)
class RunRecord:
    """Outcome of one past execution."""

    app_name: str
    strategy: StrategyKind
    makespan: float
    transfer_time: float = 0.0
    execution_time: float = 0.0
    tasks: int = 0


@dataclass(frozen=True)
class WorkloadFeatures:
    """Coarse workload description for the cold-start heuristic."""

    #: Bytes moved per second of single-core compute.
    bytes_per_compute_second: float
    #: Coefficient of variation of per-task compute cost.
    task_cost_cv: float = 0.0


class StrategyAdvisor:
    """Recommends a strategy from history, else from workload features."""

    #: Above this many transfer-bytes per compute-second, the workload is
    #: transfer-bound on a 100 Mbit/s-class link (12.5 MB/s).
    TRANSFER_BOUND_THRESHOLD = 1.25e6  # 10% of a 100 Mbit link
    #: Task-cost CV above which static chunks straggle noticeably.
    SKEW_THRESHOLD = 0.25

    def __init__(self) -> None:
        self._history: dict[tuple[str, StrategyKind], RunningStats] = {}
        self.records: list[RunRecord] = []

    def record(self, record: RunRecord) -> None:
        """Fold one finished run into the history."""
        self.records.append(record)
        key = (record.app_name, record.strategy)
        self._history.setdefault(key, RunningStats()).add(record.makespan)

    def observed_strategies(self, app_name: str) -> dict[StrategyKind, float]:
        """Mean makespan per strategy seen for this application."""
        return {
            strategy: stats.mean
            for (app, strategy), stats in self._history.items()
            if app == app_name and stats.count > 0
        }

    def recommend(
        self,
        app_name: str,
        features: Optional[WorkloadFeatures] = None,
    ) -> StrategyKind:
        """Best-known strategy for the application.

        History wins when present (lowest mean makespan); otherwise the
        feature heuristic; otherwise real-time (the paper's overall
        winner in §IV-B).
        """
        observed = self.observed_strategies(app_name)
        if observed:
            return min(observed.items(), key=lambda kv: kv[1])[0]
        if features is not None:
            if features.bytes_per_compute_second >= self.TRANSFER_BOUND_THRESHOLD:
                return StrategyKind.REAL_TIME
            if features.task_cost_cv >= self.SKEW_THRESHOLD:
                return StrategyKind.REAL_TIME
            return StrategyKind.PRE_PARTITIONED_REMOTE
        return StrategyKind.REAL_TIME
