"""Elasticity management (§V-A "Elastic").

"The controller in FRIEDA handles the addition and removal of workers.
Addition of any new worker goes through the controller which establishes
the connection between the master and the workers."

:class:`ElasticityManager` is that bookkeeping plus the *transparent
elasticity* extension the paper lists as future work: an optional
:class:`AutoScalePolicy` that watches queue depth and recommends scale
actions without user interaction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.telemetry.metrics import MetricsRegistry, NULL_METRICS


@dataclass(frozen=True)
class ScaleEvent:
    """One elasticity action that happened."""

    time: float
    action: str  # "add" | "remove" | "recommend_add" | "recommend_remove"
    node_id: str
    reason: str = ""


@dataclass(frozen=True)
class AutoScalePolicy:
    """Threshold policy for transparent elasticity (extension).

    Recommends adding a node while ``queued / active_workers`` exceeds
    ``scale_up_ratio`` (up to ``max_nodes``), and removing one when the
    queue has drained below ``scale_down_ratio`` tasks per worker.
    """

    scale_up_ratio: float = 8.0
    scale_down_ratio: float = 1.0
    max_nodes: int = 16
    min_nodes: int = 1

    def recommend(self, queued: int, active_nodes: int) -> str:
        if active_nodes <= 0:
            return "add"
        per_worker = queued / active_nodes
        if per_worker > self.scale_up_ratio and active_nodes < self.max_nodes:
            return "add"
        if per_worker < self.scale_down_ratio and active_nodes > self.min_nodes:
            return "remove"
        return "hold"


class ElasticityManager:
    """Tracks membership changes and applies the auto-scale policy."""

    def __init__(
        self,
        policy: AutoScalePolicy | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.policy = policy
        self.events: list[ScaleEvent] = []
        self.active_nodes: set[str] = set()
        metrics = metrics if metrics is not None else NULL_METRICS
        self._m_added = metrics.counter("elasticity.added")
        self._m_removed = metrics.counter("elasticity.removed")
        self._metrics = metrics

    def node_added(self, time: float, node_id: str, reason: str = "user") -> None:
        self.active_nodes.add(node_id)
        self.events.append(ScaleEvent(time, "add", node_id, reason))
        self._m_added.inc()

    def node_removed(self, time: float, node_id: str, reason: str = "user") -> None:
        self.active_nodes.discard(node_id)
        self.events.append(ScaleEvent(time, "remove", node_id, reason))
        self._m_removed.inc()

    def evaluate(self, time: float, queued: int) -> str:
        """Consult the auto-scale policy; returns add/remove/hold."""
        if self.policy is None:
            return "hold"
        action = self.policy.recommend(queued, len(self.active_nodes))
        if action != "hold":
            self.events.append(
                ScaleEvent(time, f"recommend_{action}", "", f"queued={queued}")
            )
            self._metrics.counter("elasticity.recommendations", action=action).inc()
        return action

    @property
    def additions(self) -> int:
        return sum(1 for e in self.events if e.action == "add")

    @property
    def removals(self) -> int:
        return sum(1 for e in self.events if e.action == "remove")
