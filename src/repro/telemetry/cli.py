"""``repro trace`` subcommand implementations.

Kept separate from the main CLI module so the exporter/summary logic
is importable without argparse, and so the no-print lint exemption for
``*.cli`` modules covers the user-facing output here.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.telemetry.export import iter_trace_events, summarize_trace_events


def add_trace_parser(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser(
        "trace", help="inspect exported trace-event JSON files"
    )
    actions = parser.add_subparsers(dest="trace_action", required=True)
    summarize = actions.add_parser(
        "summarize", help="human summary of a --trace output file"
    )
    summarize.add_argument("path", help="trace-event JSON file to summarize")


def run_trace_command(args: argparse.Namespace) -> int:
    if args.trace_action == "summarize":
        return summarize_command(args.path)
    raise SystemExit(f"unknown trace action {args.trace_action!r}")


def summarize_command(path: str, stream=None) -> int:
    stream = stream if stream is not None else sys.stdout
    # Stream the traceEvents array instead of json.load()ing the whole
    # file — --trace exports from macro-scale runs reach GB sizes.
    try:
        with open(path, "r", encoding="utf-8") as handle:
            summarize_trace_events(iter_trace_events(handle), stream)
    except OSError as exc:
        print(f"error: cannot read trace {path}: {exc}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: cannot read trace {path}: {exc}", file=sys.stderr)
        return 2
    except ValueError:
        print(f"error: {path} is not a trace-event JSON file", file=sys.stderr)
        return 2
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-trace", description="trace inspection tools"
    )
    sub = parser.add_subparsers(dest="trace_action", required=True)
    summarize = sub.add_parser("summarize")
    summarize.add_argument("path")
    return run_trace_command(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
