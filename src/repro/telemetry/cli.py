"""``repro trace`` / ``repro report`` subcommand implementations.

Kept separate from the main CLI module so the exporter/summary logic
is importable without argparse, and so the no-print lint exemption for
``*.cli`` modules covers the user-facing output here.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.telemetry.export import iter_trace_events, summarize_trace_events
from repro.telemetry.report import build_report, diff_traces, render_report


def add_trace_parser(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser(
        "trace", help="inspect exported trace-event JSON files"
    )
    actions = parser.add_subparsers(dest="trace_action", required=True)
    summarize = actions.add_parser(
        "summarize", help="human summary of a --trace output file"
    )
    summarize.add_argument("path", help="trace-event JSON file to summarize")
    diff = actions.add_parser(
        "diff", help="structural diff of two trace exports"
    )
    diff.add_argument("path_a", help="first trace-event JSON file")
    diff.add_argument("path_b", help="second trace-event JSON file")
    diff.add_argument(
        "--tolerance-us",
        type=float,
        default=0.0,
        help="ignore total-duration drift up to this many microseconds "
        "(0 = exact; use for wall-clock runs)",
    )


def add_report_parser(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser(
        "report", help="operator report from a trace export"
    )
    parser.add_argument("trace", help="trace-event JSON file (--trace output)")
    parser.add_argument(
        "--metrics",
        default="",
        help="matching metrics JSON snapshot (adds latency percentiles)",
    )


def run_trace_command(args: argparse.Namespace) -> int:
    if args.trace_action == "summarize":
        return summarize_command(args.path)
    if args.trace_action == "diff":
        return diff_command(args.path_a, args.path_b, args.tolerance_us)
    raise SystemExit(f"unknown trace action {args.trace_action!r}")


def summarize_command(path: str, stream=None) -> int:
    stream = stream if stream is not None else sys.stdout
    # Stream the traceEvents array instead of json.load()ing the whole
    # file — --trace exports from macro-scale runs reach GB sizes.
    try:
        with open(path, "r", encoding="utf-8") as handle:
            summarize_trace_events(iter_trace_events(handle), stream)
    except OSError as exc:
        print(f"error: cannot read trace {path}: {exc}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: cannot read trace {path}: {exc}", file=sys.stderr)
        return 2
    except ValueError:
        print(f"error: {path} is not a trace-event JSON file", file=sys.stderr)
        return 2
    return 0


def diff_command(
    path_a: str, path_b: str, tolerance_us: float = 0.0, stream=None
) -> int:
    """``repro trace diff A B``: 0 identical, 1 differ, 2 unreadable."""
    stream = stream if stream is not None else sys.stdout
    try:
        with open(path_a, "r", encoding="utf-8") as ha, open(
            path_b, "r", encoding="utf-8"
        ) as hb:
            return diff_traces(
                iter_trace_events(ha),
                iter_trace_events(hb),
                stream,
                tolerance_us=tolerance_us,
            )
    except OSError as exc:
        print(f"error: cannot read trace: {exc}", file=sys.stderr)
        return 2
    except (json.JSONDecodeError, ValueError) as exc:
        print(f"error: not a trace-event JSON file: {exc}", file=sys.stderr)
        return 2


def run_report_command(args: argparse.Namespace) -> int:
    return report_command(args.trace, args.metrics)


def report_command(trace_path: str, metrics_path: str = "", stream=None) -> int:
    stream = stream if stream is not None else sys.stdout
    metrics = None
    try:
        if metrics_path:
            with open(metrics_path, "r", encoding="utf-8") as handle:
                metrics = json.load(handle)
        with open(trace_path, "r", encoding="utf-8") as handle:
            report = build_report(iter_trace_events(handle))
    except OSError as exc:
        print(f"error: cannot read {exc.filename}: {exc}", file=sys.stderr)
        return 2
    except (json.JSONDecodeError, ValueError) as exc:
        print(f"error: not a valid export: {exc}", file=sys.stderr)
        return 2
    render_report(report, stream, metrics=metrics)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-trace", description="trace inspection tools"
    )
    sub = parser.add_subparsers(dest="trace_action", required=True)
    summarize = sub.add_parser("summarize")
    summarize.add_argument("path")
    diff = sub.add_parser("diff")
    diff.add_argument("path_a")
    diff.add_argument("path_b")
    diff.add_argument("--tolerance-us", type=float, default=0.0)
    return run_trace_command(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
