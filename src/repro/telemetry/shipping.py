"""Shipping worker telemetry to the master and merging it into one run.

The distributed half of the telemetry plane.  A TCP worker records into
its *own* :class:`~repro.telemetry.spans.Telemetry` hub on its *own*
clock; a :class:`TelemetryShipper` cuts incremental batches (new spans
and events since the last cut, plus metric *deltas*) which travel to the
master as the binary payload of a ``TELEMETRY`` frame.  The master
buffers batches with a :class:`TelemetryMerger` and folds them into the
run hub once at drain, producing a single trace with per-worker tracks
and one merged metrics registry.

Determinism rules, in order:

* **Clock alignment is estimated, never sampled.**  Worker clocks are
  aligned with a min-delay estimator over heartbeat ``(sent_at,
  recv_at)`` pairs (:class:`ClockAligner`) — the same pairs the liveness
  monitor already sees.  No wall-clock reads happen at merge time, and
  the chosen offset is recorded in the trace as a ``clock.offset``
  event, so a merged trace is always auditable.
* **Fold order is total.**  Batches fold in ``(worker_id, seq)`` order
  at end of run, so merged span ids and record order depend only on
  what was received, not on arrival interleaving.
* **Metric merge is conflict-free.**  Counters and histogram buckets
  add (G-counters — associative, order-independent); gauges are
  last-write-wins *in fold order*, which the total order above makes
  deterministic.  Histograms whose bucket boundaries disagree with the
  master's are dropped and counted, never silently rebucketed.

Telemetry is lossy-tolerant by design: a batch that fails its CRC is
dropped and counted (``telemetry.batches_dropped``), never
retransmitted — observability must not add retry pressure to the data
path it observes.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import ProtocolError
from repro.telemetry.metrics import MetricsRegistry, NULL_METRICS
from repro.telemetry.spans import Telemetry

#: Format tag inside every encoded batch; bump on layout changes.
BATCH_VERSION = 1


def _tags_to_wire(tags: tuple[tuple[str, Any], ...]) -> list[list[Any]]:
    return [[k, v] for k, v in tags]


def _tags_from_wire(tags: list[list[Any]]) -> tuple[tuple[str, Any], ...]:
    return tuple((str(k), v) for k, v in tags)


class TelemetryShipper:
    """Cuts incremental, self-describing batches from a recording hub.

    Keeps a read cursor into the hub's span/event logs and the previous
    raw metrics state, so each :meth:`take_batch` returns only what is
    new since the last cut.  Batches carry a per-shipper ``seq`` the
    merger uses for total ordering and duplicate suppression.
    """

    def __init__(self, telemetry: Telemetry) -> None:
        if not telemetry.record:
            raise ValueError("TelemetryShipper needs a recording hub")
        self._tel = telemetry
        self._span_cursor = 0
        self._event_cursor = 0
        self._counter_base: dict[str, float] = {}
        self._hist_base: dict[str, tuple[list[int], int, float]] = {}
        self.seq = 0

    def _metric_deltas(self) -> tuple[dict, dict, dict]:
        registry = self._tel.metrics
        counters: dict[str, float] = {}
        for key, inst in registry._counters.items():
            delta = inst.value - self._counter_base.get(key, 0)
            if delta:
                counters[key] = delta
                self._counter_base[key] = inst.value
        gauges = {key: inst.value for key, inst in registry._gauges.items()}
        hists: dict[str, dict[str, Any]] = {}
        for key, h in registry._histograms.items():
            base_counts, base_count, base_sum = self._hist_base.get(
                key, ([0] * len(h.counts), 0, 0.0)
            )
            if h.count == base_count:
                continue
            hists[key] = {
                "buckets": list(h.buckets),
                "counts": [c - b for c, b in zip(h.counts, base_counts)],
                "count": h.count - base_count,
                "sum": h.sum - base_sum,
            }
            self._hist_base[key] = (list(h.counts), h.count, h.sum)
        return counters, gauges, hists

    def take_batch(self) -> dict[str, Any] | None:
        """Return everything recorded since the last cut, or ``None``."""
        tel = self._tel
        spans = tel.spans[self._span_cursor : len(tel.spans)]
        events = tel.events[self._event_cursor : len(tel.events)]
        self._span_cursor += len(spans)
        self._event_cursor += len(events)
        counters, gauges, hists = self._metric_deltas()
        if not (spans or events or counters or gauges or hists):
            return None
        self.seq += 1
        return {
            "v": BATCH_VERSION,
            "seq": self.seq,
            "spans": [
                [
                    s.span_id,
                    s.parent_id,
                    s.key,
                    s.start,
                    s.end,
                    _tags_to_wire(s.tags),
                    s.track,
                ]
                for s in spans
            ],
            "events": [
                [e.key, e.time, e.value, _tags_to_wire(e.tags), e.track]
                for e in events
            ],
            "counters": counters,
            "gauges": gauges,
            "hists": hists,
        }


def encode_batch(batch: dict[str, Any]) -> bytes:
    """Serialize a batch for the wire (canonical JSON, UTF-8)."""
    return json.dumps(batch, separators=(",", ":"), sort_keys=True).encode()


def decode_batch(payload: bytes) -> dict[str, Any]:
    """Parse and structurally validate an encoded batch."""
    try:
        batch = json.loads(payload)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"undecodable telemetry batch: {exc}") from exc
    if not isinstance(batch, dict) or batch.get("v") != BATCH_VERSION:
        raise ProtocolError(f"unsupported telemetry batch: {batch!r:.80}")
    for field in ("seq", "spans", "events", "counters", "gauges", "hists"):
        if field not in batch:
            raise ProtocolError(f"telemetry batch missing {field!r}")
    return batch


class ClockAligner:
    """Min-delay offset estimation from heartbeat send/receive pairs.

    A beat observed at master time ``recv`` that left the worker at
    worker time ``sent`` gives ``recv - sent = offset + network_delay``.
    Delay is nonnegative, so the minimum over all pairs is the tightest
    upper bound on the worker→master clock offset — the classic NTP-style
    one-way estimator, computed purely from values already on the wire.

    **Degraded edges.** The estimator is only meaningful with at least
    :data:`MIN_PAIRS` observations (a single pair cannot separate offset
    from delay) and a nonnegative minimum delta (a negative one means
    the pair itself is inconsistent — e.g. a worker clock stepped
    backwards mid-run — so "offset + nonnegative delay" no longer
    describes it).  Both cases degrade to offset 0.0 — timestamps pass
    through unshifted rather than shifted by a misleading estimate —
    and each degraded :meth:`offset` decision increments the
    ``telemetry.unaligned`` counter so merged traces are auditable.
    """

    #: Fewest heartbeat pairs before the min-delay estimate is trusted.
    MIN_PAIRS = 2

    def __init__(self, metrics: "MetricsRegistry | None" = None) -> None:
        self._best: dict[str, float] = {}
        self._pairs: dict[str, int] = {}
        self._m_unaligned = (
            metrics if metrics is not None else NULL_METRICS
        ).counter("telemetry.unaligned")

    def observe(self, worker_id: str, sent_at: float, recv_at: float) -> None:
        if sent_at < 0:
            return
        delta = recv_at - sent_at
        self._pairs[worker_id] = self._pairs.get(worker_id, 0) + 1
        best = self._best.get(worker_id)
        if best is None or delta < best:
            self._best[worker_id] = delta

    def offset(self, worker_id: str) -> float:
        """Seconds to add to a worker timestamp to place it on the
        master clock; 0.0 (counted as ``telemetry.unaligned``) when the
        estimate is untrustworthy — fewer than :data:`MIN_PAIRS` pairs
        observed, or a negative minimum delta.  This is the decision
        point: call it once per worker per merge, as the fold does.
        """
        best = self._best.get(worker_id)
        if (
            best is None
            or self._pairs.get(worker_id, 0) < self.MIN_PAIRS
            or best < 0
        ):
            self._m_unaligned.inc()
            return 0.0
        return best

    def pairs(self, worker_id: str) -> int:
        """How many usable heartbeat pairs were observed for a worker."""
        return self._pairs.get(worker_id, 0)

    def known(self) -> dict[str, float]:
        return dict(self._best)


class TelemetryMerger:
    """Buffers worker batches and folds them into the master hub.

    ``add_batch`` is cheap and arrival-order-agnostic (batches are keyed
    by ``(worker_id, seq)``; duplicates are ignored).  :meth:`fold` runs
    once at drain: per worker in sorted order it fixes the clock offset,
    records it as a ``clock.offset`` event, remaps worker-local span ids
    onto fresh master ids (preserving parent links), shifts all
    timestamps by the offset, and merges metric deltas conflict-free.
    """

    def __init__(self, telemetry: Telemetry) -> None:
        self._tel = telemetry
        self._batches: dict[str, dict[int, dict[str, Any]]] = {}
        self.aligner = ClockAligner(metrics=telemetry.metrics)
        self.batches_received = 0
        self.merge_conflicts = 0

    def add_batch(self, worker_id: str, batch: dict[str, Any]) -> None:
        per_worker = self._batches.setdefault(worker_id, {})
        if int(batch["seq"]) not in per_worker:
            per_worker[int(batch["seq"])] = batch
            self.batches_received += 1

    def observe_clock(self, worker_id: str, sent_at: float, recv_at: float) -> None:
        self.aligner.observe(worker_id, sent_at, recv_at)

    def _merge_metrics(self, batch: dict[str, Any]) -> None:
        registry = self._tel.metrics
        for key in sorted(batch["counters"]):
            delta = batch["counters"][key]
            if delta > 0:
                registry.counter(key).inc(delta)
        for key in sorted(batch["gauges"]):
            registry.gauge(key).set(batch["gauges"][key])
        for key in sorted(batch["hists"]):
            spec = batch["hists"][key]
            try:
                hist = registry.histogram(key, buckets=tuple(spec["buckets"]))
                hist.absorb(spec["counts"], int(spec["count"]), float(spec["sum"]))
            except ValueError:
                self.merge_conflicts += 1
                registry.counter("telemetry.merge_conflicts").inc()

    def fold(self) -> dict[str, float]:
        """Fold every buffered batch into the master hub.

        Returns the per-worker clock offsets that were applied.  Call
        exactly once, after the last batch has been received.
        """
        tel = self._tel
        offsets: dict[str, float] = {}
        for worker_id in sorted(self._batches):
            offset = self.aligner.offset(worker_id)
            offsets[worker_id] = offset
            batches = [
                self._batches[worker_id][seq]
                for seq in sorted(self._batches[worker_id])
            ]
            # Pass 1: allocate a fresh master id for every shipped span,
            # in emission order, so parent links survive remapping even
            # when a child shipped before its (still-open) parent.
            id_map: dict[int, int] = {}
            for batch in batches:
                for row in batch["spans"]:
                    id_map.setdefault(int(row[0]), next(tel._ids))
            # Worker time 0 mapped onto the master clock — the alignment
            # applied to every record below, recorded so merged traces
            # are auditable.
            tel.event(
                "clock.offset",
                offset,
                time=offset,
                track=f"worker:{worker_id}",
                worker=worker_id,
            )
            for batch in batches:
                for row in batch["spans"]:
                    span_id, parent_id, key, start, end, tags, track = row
                    tel._emit_span(
                        (
                            id_map[int(span_id)],
                            id_map.get(parent_id) if parent_id is not None else None,
                            key,
                            float(start) + offset,
                            float(end) + offset,
                            _tags_from_wire(tags),
                            track,
                            tel.run,
                        )
                    )
                for key, time, value, tags, track in batch["events"]:
                    tel.event(
                        key,
                        value,
                        time=float(time) + offset,
                        track=track,
                        **dict(_tags_from_wire(tags)),
                    )
                self._merge_metrics(batch)
        self._batches.clear()
        return offsets
