"""Unified telemetry for both execution planes.

One hub (:class:`Telemetry`) carries three kinds of signal:

* **spans** — [start, end] slices with explicit parent/child links,
  forming the task-lifecycle trace tree (``spans``),
* **events** — instant points (VM boots, failures, rate changes),
* **metrics** — counters/gauges/fixed-bucket histograms aggregated in
  a :class:`MetricsRegistry` (``metrics``).

The simulated engine binds the hub to the virtual clock; the threaded
runtime binds a wall clock.  The sim :class:`~repro.sim.monitor.Monitor`
consumes the same stream through a sink adapter, so Figure 6/7 math
keeps reading monitor intervals while ``--trace`` exports the full
Perfetto tree.  When nothing is listening, use :data:`NULL_TELEMETRY`
— every call is a no-op and hot paths stay untouched.
"""

from repro.telemetry.export import (
    chrome_trace,
    dump_chrome_trace,
    dump_metrics_json,
    summarize_trace,
    write_chrome_trace,
    write_metrics_json,
)
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
)
from repro.telemetry.shipping import (
    ClockAligner,
    TelemetryMerger,
    TelemetryShipper,
    decode_batch,
    encode_batch,
)
from repro.telemetry.slo import SloBreach, SloEvaluator, SloProbe
from repro.telemetry.spans import (
    EventRecord,
    NULL_TELEMETRY,
    NullTelemetry,
    SpanHandle,
    SpanRecord,
    Telemetry,
    TelemetrySink,
)

__all__ = [
    "ClockAligner",
    "Counter",
    "DEFAULT_BUCKETS",
    "EventRecord",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "SloBreach",
    "SloEvaluator",
    "SloProbe",
    "SpanHandle",
    "SpanRecord",
    "Telemetry",
    "TelemetryMerger",
    "TelemetryShipper",
    "TelemetrySink",
    "chrome_trace",
    "decode_batch",
    "dump_chrome_trace",
    "dump_metrics_json",
    "encode_batch",
    "summarize_trace",
    "write_chrome_trace",
    "write_metrics_json",
]
