"""Declarative SLO probes over the live telemetry stream.

A :class:`SloProbe` states a requirement over one metric signal —
``p99 task latency < 0.5 s``, ``queue depth < 100``, ``completion rate
>= 0.95`` — and a :class:`SloEvaluator` checks all probes against the
run's :class:`~repro.telemetry.metrics.MetricsRegistry` whenever the
engine ticks it (heartbeat sweeps, task completions, end of run).

Evaluation is edge-triggered: the first failing check emits one
``slo.breach`` event, and the first passing check after a breach emits
``slo.recovered`` — the event stream carries state *transitions*, not
per-tick spam, which is exactly the shape a steering policy wants to
consume.  A signal that does not resolve yet (no observations) is
skipped, never breached: an empty run is not a failing run.

Everything is deterministic: signals come from the deterministic
registry, evaluation times from the engine clock, and probes evaluate
in declaration order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import ConfigurationError
from repro.telemetry.spans import Telemetry

_OPS: dict[str, Callable[[float, float], bool]] = {
    "<": lambda v, t: v < t,
    "<=": lambda v, t: v <= t,
    ">": lambda v, t: v > t,
    ">=": lambda v, t: v >= t,
}


@dataclass(frozen=True)
class SloProbe:
    """One requirement: ``signal OP threshold`` must hold.

    ``signal`` uses the registry's resolution grammar
    (:meth:`~repro.telemetry.metrics.MetricsRegistry.resolve_signal`):
    gauge/counter keys verbatim, or ``<histogram>.p99`` style derived
    quantiles.
    """

    name: str
    signal: str
    op: str
    threshold: float

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ConfigurationError(
                f"SLO probe {self.name!r}: unknown op {self.op!r};"
                f" expected one of {sorted(_OPS)}"
            )
        if not self.name or not self.signal:
            raise ConfigurationError("SLO probes need a name and a signal")

    def holds(self, value: float) -> bool:
        return _OPS[self.op](value, self.threshold)

    def describe(self) -> str:
        return f"{self.signal} {self.op} {self.threshold:g}"


@dataclass(frozen=True)
class SloBreach:
    """One recorded breach transition (for reports and outcomes)."""

    time: float
    probe: str
    signal: str
    value: float
    threshold: float


class SloEvaluator:
    """Evaluates a probe set against a hub's metrics; emits transitions.

    The evaluator never reads a clock itself — callers pass ``now`` so
    the simulated engine keeps virtual time and determinism.
    """

    def __init__(
        self,
        probes: Sequence[SloProbe],
        telemetry: Telemetry,
        *,
        track: str = "slo",
    ) -> None:
        names = [p.name for p in probes]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate SLO probe names in {names}")
        self.probes = tuple(probes)
        self._tel = telemetry
        self._track = track
        self._breached: set[str] = set()
        self.breaches: list[SloBreach] = []
        self.evaluations = 0

    @property
    def active_breaches(self) -> frozenset[str]:
        return frozenset(self._breached)

    def evaluate(self, now: float) -> dict[str, tuple[float, bool]]:
        """Check every probe; returns ``{name: (value, ok)}`` for the
        probes whose signal resolved."""
        tel = self._tel
        results: dict[str, tuple[float, bool]] = {}
        for probe in self.probes:
            value = tel.metrics.resolve_signal(probe.signal)
            if value is None:
                continue
            self.evaluations += 1
            ok = probe.holds(value)
            results[probe.name] = (value, ok)
            if not ok and probe.name not in self._breached:
                self._breached.add(probe.name)
                self.breaches.append(
                    SloBreach(now, probe.name, probe.signal, value, probe.threshold)
                )
                tel.metrics.counter("slo.breaches").inc()
                tel.event(
                    "slo.breach",
                    value,
                    time=now,
                    track=self._track,
                    probe=probe.name,
                    signal=probe.signal,
                    threshold=probe.threshold,
                )
            elif ok and probe.name in self._breached:
                self._breached.discard(probe.name)
                tel.metrics.counter("slo.recoveries").inc()
                tel.event(
                    "slo.recovered",
                    value,
                    time=now,
                    track=self._track,
                    probe=probe.name,
                    signal=probe.signal,
                    threshold=probe.threshold,
                )
        return results
