"""Span tracing over a pluggable clock.

A *span* is a named [start, end] slice of a run with tags and an
explicit parent, so a task's dispatch → fetch → transfer → execute →
report chain forms one tree in the exported trace.  An *event* is an
instant point (a sample, a state transition).

Design constraints, in order:

* **Determinism.**  Span ids come from a per-hub counter, timestamps
  from the bound clock (the sim clock on the simulated plane), and
  records are kept in emission order — same seed, same bytes out.
* **Explicit parents.**  Simulation processes interleave arbitrarily,
  so an ambient "current span" stack would cross-wire parents between
  concurrent generators.  Parents are passed by handle instead.
* **Zero cost when disabled.**  :data:`NULL_TELEMETRY` no-ops every
  method, and a recording hub only retains records when ``record=True``
  — sinks (e.g. the :class:`~repro.sim.monitor.Monitor` adapter) still
  see the stream either way.

The hub is plane-agnostic: the simulated engine binds ``env.now``, the
threaded runtime binds a wall clock.  Emission (`span_complete`,
`event`, `end_span`) is safe from worker threads — it only draws from
an atomic counter and appends to lists — but aggregate metrics are
not; the threaded runtime increments those under its scheduler lock.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Protocol

from repro.telemetry.metrics import MetricsRegistry, NULL_METRICS


@dataclass(frozen=True)
class SpanRecord:
    """One finished span, immutable once emitted."""

    span_id: int
    parent_id: int | None
    key: str
    start: float
    end: float
    tags: tuple[tuple[str, Any], ...]
    track: str
    run: str

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class EventRecord:
    """One instant event."""

    event_id: int
    key: str
    time: float
    value: Any
    tags: tuple[tuple[str, Any], ...]
    track: str
    run: str


class RecordLog:
    """Slab-backed append log of span/event records.

    Rows land in a preallocated fixed-size slab (a block of ``SLAB``
    slots filled left to right); a full slab is flushed wholesale onto
    the block list and a fresh one is preallocated.  Rows are plain
    field tuples — the frozen dataclass record is only materialized
    when someone *reads* the log (export, assertions), so the hot
    emission path never pays dataclass ``__init__`` for records nobody
    looks at until the run ends.  Reads present the log as an ordinary
    sequence of records, equal to the list it replaces.
    """

    __slots__ = ("_factory", "_blocks", "_slab", "_fill")

    #: Rows per slab.  Power of two, sized so a slab is a few KiB of
    #: pointers — big enough to amortize allocation, small enough that
    #: an idle hub wastes almost nothing.
    SLAB = 1024

    def __init__(self, factory: Callable[..., Any]) -> None:
        self._factory = factory
        self._blocks: list[list[Any]] = []
        self._slab: list[Any] = [None] * self.SLAB
        self._fill = 0

    def _append_fields(self, fields: tuple) -> None:
        slab = self._slab
        fill = self._fill
        slab[fill] = fields
        fill += 1
        if fill == self.SLAB:
            self._blocks.append(slab)
            self._slab = [None] * self.SLAB
            self._fill = 0
        else:
            self._fill = fill

    def __len__(self) -> int:
        return len(self._blocks) * self.SLAB + self._fill

    def _row(self, index: int) -> tuple:
        block, slot = divmod(index, self.SLAB)
        if block < len(self._blocks):
            return self._blocks[block][slot]
        return self._slab[slot]

    def __getitem__(self, index):
        size = len(self)
        if isinstance(index, slice):
            factory = self._factory
            return [
                factory(*self._row(i)) for i in range(*index.indices(size))
            ]
        if index < 0:
            index += size
        if not 0 <= index < size:
            raise IndexError("record log index out of range")
        return self._factory(*self._row(index))

    def __iter__(self):
        factory = self._factory
        for block in self._blocks:
            for fields in block:
                yield factory(*fields)
        slab = self._slab
        for i in range(self._fill):
            yield factory(*slab[i])

    def __bool__(self) -> bool:
        return bool(self._blocks) or self._fill > 0

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RecordLog):
            other = list(other)
        if isinstance(other, (list, tuple)):
            if len(self) != len(other):
                return False
            return all(mine == theirs for mine, theirs in zip(self, other))
        return NotImplemented

    __hash__ = None  # type: ignore[assignment] - mutable log

    def __repr__(self) -> str:
        return f"RecordLog({list(self)!r})"


class TelemetrySink(Protocol):
    """Consumer of the live span/event stream (e.g. the sim Monitor)."""

    def on_span(self, span: SpanRecord) -> None: ...

    def on_event(self, event: EventRecord) -> None: ...


class SpanHandle:
    """An open span; ``end()`` (or context-manager exit) closes it.

    Handles are what gets threaded through call chains as ``parent=``;
    ending twice is a no-op so error paths can close defensively.
    """

    __slots__ = ("_hub", "span_id", "parent_id", "key", "start", "track", "_tags", "_ended")

    def __init__(
        self,
        hub: "Telemetry",
        span_id: int,
        parent_id: int | None,
        key: str,
        start: float,
        track: str,
        tags: dict[str, Any],
    ) -> None:
        self._hub = hub
        self.span_id = span_id
        self.parent_id = parent_id
        self.key = key
        self.start = start
        self.track = track
        self._tags = tags
        self._ended = False

    def end(self, **extra_tags: Any) -> None:
        self._hub.end_span(self, **extra_tags)

    def __enter__(self) -> "SpanHandle":
        return self

    def __exit__(self, *exc: object) -> None:
        self.end()


def _parent_id(parent: "SpanHandle | SpanRecord | int | None") -> int | None:
    if parent is None or isinstance(parent, int):
        return parent
    return parent.span_id


class Telemetry:
    """The hub: allocates spans, fans records out to sinks.

    ``clock`` is any zero-argument callable; :meth:`bind` rebinds it
    (plus the run label and the per-run monitor sink) when a hub is
    shared across several engine runs, e.g. one ``--trace`` file for a
    whole strategy sweep.
    """

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        *,
        record: bool = False,
        run: str = "run",
    ) -> None:
        self.clock: Callable[[], float] = clock if clock is not None else lambda: 0.0
        self.record = record
        self.run = run
        self.metrics = MetricsRegistry()
        self.spans: RecordLog = RecordLog(SpanRecord)
        self.events: RecordLog = RecordLog(EventRecord)
        self._sinks: list[TelemetrySink] = []
        self._monitor_sink: TelemetrySink | None = None
        self._ids = itertools.count(1)

    # -- wiring -------------------------------------------------------------

    def bind(
        self,
        *,
        clock: Callable[[], float] | None = None,
        run: str | None = None,
        monitor: TelemetrySink | None = None,
    ) -> None:
        """Attach this hub to a (new) run.

        The monitor sink is a single replaceable slot — each engine run
        swaps in an adapter for *its* monitor, so a hub shared across a
        sweep never leaks one run's spans into another run's figures.
        """
        if clock is not None:
            self.clock = clock
        if run is not None:
            self.run = run
        if monitor is not None:
            self._monitor_sink = monitor

    def add_sink(self, sink: TelemetrySink) -> None:
        """Register a persistent sink (kept across :meth:`bind` calls)."""
        self._sinks.append(sink)

    @property
    def enabled(self) -> bool:
        """True when emitting has any observable effect."""
        return self.record or self._monitor_sink is not None or bool(self._sinks)

    # -- span API -----------------------------------------------------------

    def span(
        self,
        key: str,
        *,
        parent: SpanHandle | SpanRecord | int | None = None,
        track: str = "",
        start: float | None = None,
        **tags: Any,
    ) -> SpanHandle:
        """Open a span.  Usable as a context manager for non-yielding
        scopes; simulation processes hold the handle and call ``end()``
        explicitly because the scope crosses ``yield``\\ s."""
        return SpanHandle(
            self,
            next(self._ids),
            _parent_id(parent),
            key,
            self.clock() if start is None else start,
            track,
            tags,
        )

    # Alias that reads better at explicit start/end call sites.
    start_span = span

    def end_span(self, handle: SpanHandle, **extra_tags: Any) -> None:
        if handle._ended:
            return
        handle._ended = True
        tags = handle._tags
        if extra_tags:
            tags = {**tags, **extra_tags}
        self._emit_span(
            (
                handle.span_id,
                handle.parent_id,
                handle.key,
                handle.start,
                self.clock(),
                tuple(sorted(tags.items())),
                handle.track,
                self.run,
            )
        )

    def span_complete(
        self,
        key: str,
        start: float,
        end: float,
        *,
        parent: SpanHandle | SpanRecord | int | None = None,
        track: str = "",
        **tags: Any,
    ) -> SpanRecord:
        """Record a span whose start/end the caller already measured
        (flow retirement, completed transfers)."""
        fields = (
            next(self._ids),
            _parent_id(parent),
            key,
            start,
            end,
            tuple(sorted(tags.items())),
            track,
            self.run,
        )
        self._emit_span(fields)
        return SpanRecord(*fields)

    def event(
        self,
        key: str,
        value: Any = None,
        *,
        time: float | None = None,
        track: str = "",
        **tags: Any,
    ) -> None:
        """Record an instant event."""
        fields = (
            next(self._ids),
            key,
            self.clock() if time is None else time,
            value,
            tuple(sorted(tags.items())),
            track,
            self.run,
        )
        if self.record:
            self.events._append_fields(fields)
        sink = self._monitor_sink
        if sink is not None or self._sinks:
            record = EventRecord(*fields)
            if sink is not None:
                sink.on_event(record)
            for extra in self._sinks:
                extra.on_event(record)

    # -- internals ----------------------------------------------------------

    def _emit_span(self, fields: tuple) -> None:
        """Record/fan out one finished span, given its raw field tuple.

        The :class:`SpanRecord` is only built when a sink needs it —
        record-only runs (``--trace`` exports) stay on the tuple path.
        """
        if self.record:
            self.spans._append_fields(fields)
        sink = self._monitor_sink
        if sink is not None or self._sinks:
            record = SpanRecord(*fields)
            if sink is not None:
                sink.on_span(record)
            for extra in self._sinks:
                extra.on_span(record)


class _NullSpanHandle(SpanHandle):
    """Inert handle returned by :class:`NullTelemetry`; shared, never ends."""

    def __init__(self) -> None:
        super().__init__(None, 0, None, "", 0.0, "", {})  # type: ignore[arg-type]

    def end(self, **extra_tags: Any) -> None:
        pass

    def __exit__(self, *exc: object) -> None:
        pass


_NULL_SPAN = _NullSpanHandle()


class NullTelemetry(Telemetry):
    """A hub that discards everything — the zero-cost disabled path.

    Components default to this so instrumented code never branches on
    "is telemetry on"; every method is a cheap no-op and the metrics
    registry is :data:`~repro.telemetry.metrics.NULL_METRICS`.
    """

    def __init__(self) -> None:
        super().__init__()
        self.metrics = NULL_METRICS

    @property
    def enabled(self) -> bool:
        return False

    def bind(self, **kwargs: Any) -> None:  # type: ignore[override]
        pass

    def add_sink(self, sink: TelemetrySink) -> None:
        raise ValueError("cannot attach sinks to NULL_TELEMETRY")

    def span(self, key: str, **kwargs: Any) -> SpanHandle:  # type: ignore[override]
        return _NULL_SPAN

    start_span = span

    def end_span(self, handle: SpanHandle, **extra_tags: Any) -> None:
        pass

    def span_complete(self, key: str, start: float, end: float, **kw: Any):  # type: ignore[override]
        return None

    def event(self, key: str, value: Any = None, **kwargs: Any) -> None:
        pass


#: Shared inert hub, safe as a default argument anywhere.
NULL_TELEMETRY = NullTelemetry()
