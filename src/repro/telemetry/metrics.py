"""Deterministic metrics: counters, gauges, fixed-bucket histograms.

The registry is the aggregate half of the telemetry layer (spans are
the event half).  Instruments are cheap mutable cells keyed by
``name{label=value,...}``; a snapshot renders them into a plain dict
with sorted keys so the exported JSON is byte-stable across runs.

Determinism rules:

* Histogram bucket boundaries are fixed at creation time (defaulting
  to :data:`DEFAULT_BUCKETS`); observations never rebucket.
* Snapshots sort instruments by rendered name, and label rendering
  sorts label keys, so iteration order of the underlying dicts never
  leaks into output.
* No wall-clock anywhere — values are whatever the caller hands in.

Thread-safety: ``inc``/``set``/``observe`` are plain read-modify-write
operations.  The simulated plane is single-threaded so this is moot;
the threaded runtime calls them only while holding its scheduler lock
(see ``runtime/local.py``).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterable

#: Default histogram boundaries (seconds-flavoured, log-ish spacing).
#: Fixed boundaries — rather than adaptive ones — keep exported
#: histograms byte-identical across same-seed runs.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0,
    100.0, 500.0, 1000.0, 5000.0,
)

#: The control plane's durability signals, as emitted by the journal
#: writer (:mod:`repro.service.journal`) and the recovery/fencing paths
#: (:mod:`repro.service.core`).  Collected here so dashboards and SLO
#: probes have one authoritative list of names; every entry resolves
#: through :meth:`MetricsRegistry.resolve_signal`.
#:
#: - ``service.journal.records``         counter — records appended
#: - ``service.journal.snapshots``       counter — compactions taken
#: - ``service.journal.records_dropped`` counter — damaged-tail truncations
#: - ``service.journal.lag_records``     gauge — records since the last
#:   snapshot: the replay debt a crash right now would incur, and the
#:   signal an SLO probe should watch (a growing lag means slower
#:   recovery)
#: - ``service.recoveries``              counter — successful journal recoveries
#: - ``service.epoch``                   gauge — current service incarnation
#: - ``service.fenced_reports``          counter — stale-epoch lease reports
#:   dropped and requeued
DURABILITY_SIGNALS: tuple[str, ...] = (
    "service.journal.records",
    "service.journal.snapshots",
    "service.journal.records_dropped",
    "service.journal.lag_records",
    "service.recoveries",
    "service.epoch",
    "service.fenced_reports",
)


def render_name(name: str, labels: dict[str, Any]) -> str:
    """``name{k=v,...}`` with sorted label keys; bare name if unlabelled."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        self.value += amount


class Gauge:
    """Last-write-wins value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """Fixed-boundary histogram with count/sum, Prometheus-style.

    ``counts[i]`` counts observations ``<= buckets[i]``; one extra
    overflow slot at the end counts everything larger.
    """

    __slots__ = ("name", "buckets", "counts", "count", "sum")

    def __init__(self, name: str, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(a >= b for a, b in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name} buckets must strictly increase")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value

    def absorb(self, counts: Iterable[int], count: int, total: float) -> None:
        """Fold another histogram's raw state into this one.

        The donor must share this histogram's bucket boundaries (the
        telemetry merger enforces that); bucket-wise addition makes the
        merge associative and order-independent — a G-counter per slot.
        """
        other = list(counts)
        if len(other) != len(self.counts):
            raise ValueError(
                f"histogram {self.name} absorb: {len(other)} slots"
                f" vs {len(self.counts)}"
            )
        for i, c in enumerate(other):
            self.counts[i] += c
        self.count += count
        self.sum += total

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile by linear interpolation within buckets.

        Deterministic pure-arithmetic estimate from the fixed bucket
        counts (Prometheus ``histogram_quantile`` style). The overflow
        bucket has no upper bound, so mass there clamps to the last
        boundary. Returns 0.0 when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for i, c in enumerate(self.counts):
            cumulative += c
            if c and cumulative >= target:
                if i == len(self.buckets):
                    return self.buckets[-1]
                lower = self.buckets[i - 1] if i > 0 else 0.0
                upper = self.buckets[i]
                return lower + (upper - lower) * ((target - (cumulative - c)) / c)
        return self.buckets[-1]


class MetricsRegistry:
    """Named instruments, created on first use and shared thereafter.

    ``counter("scheduler.assigned")`` returns the same :class:`Counter`
    every call, so hot paths can cache the instrument once and call
    ``inc`` without a dict lookup.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str, **labels: Any) -> Counter:
        key = render_name(name, labels)
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter(key)
        return inst

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = render_name(name, labels)
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge(key)
        return inst

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] | None = None,
        **labels: Any,
    ) -> Histogram:
        key = render_name(name, labels)
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram(
                key, buckets if buckets is not None else DEFAULT_BUCKETS
            )
        elif buckets is not None and tuple(float(b) for b in buckets) != inst.buckets:
            raise ValueError(f"histogram {key} re-registered with different buckets")
        return inst

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def resolve_signal(self, signal: str) -> float | None:
        """Resolve a dotted signal name to a current value, or ``None``.

        Resolution order: exact gauge key, exact counter key, then
        histogram-derived forms ``<hist>.pNN`` (quantile), ``<hist>.mean``
        and ``<hist>.count``.  ``None`` means "no such instrument yet" —
        SLO probes treat that as not-yet-evaluable rather than a breach.
        """
        gauge = self._gauges.get(signal)
        if gauge is not None:
            return gauge.value
        counter = self._counters.get(signal)
        if counter is not None:
            return counter.value
        base, _, suffix = signal.rpartition(".")
        hist = self._histograms.get(base) if base else None
        if hist is None:
            return None
        if len(suffix) > 1 and suffix[0] == "p" and suffix[1:].isdigit():
            return hist.quantile(int(suffix[1:]) / 100.0)
        if suffix == "mean":
            return hist.sum / hist.count if hist.count else 0.0
        if suffix == "count":
            return float(hist.count)
        return None

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict view with sorted keys; safe to ``json.dumps``."""
        return {
            "counters": {
                k: self._counters[k].value for k in sorted(self._counters)
            },
            "gauges": {k: self._gauges[k].value for k in sorted(self._gauges)},
            "histograms": {
                k: {
                    "buckets": list(h.buckets),
                    "counts": list(h.counts),
                    "count": h.count,
                    "sum": h.sum,
                    "p50": h.quantile(0.50),
                    "p95": h.quantile(0.95),
                    "p99": h.quantile(0.99),
                }
                for k, h in sorted(self._histograms.items())
            },
        }

    def view(self, prefix: str) -> "MetricsRegistry":
        """A namespaced view over this registry.

        Every instrument the view creates lands in *this* registry under
        ``prefix + name`` — one flat export with sorted keys — while the
        view itself reads and resolves names with the prefix stripped.
        The multi-tenant service gives each job ``view(f"job.{id}.")``
        so shared components (scheduler gauges, fault counters) keep
        their single-run instrument names but never collide across
        concurrent jobs.
        """
        return PrefixedMetricsRegistry(self, prefix)


class PrefixedMetricsRegistry(MetricsRegistry):
    """A registry view that prefixes every instrument name.

    Storage lives in the parent (views are cheap and never own state);
    nesting composes: ``reg.view("job.7.").view("stage.")`` writes
    ``job.7.stage.<name>``.
    """

    def __init__(self, parent: MetricsRegistry, prefix: str) -> None:
        self._parent = parent
        self._prefix = prefix

    @property
    def prefix(self) -> str:
        return self._prefix

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._parent.counter(self._prefix + name, **labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._parent.gauge(self._prefix + name, **labels)

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] | None = None,
        **labels: Any,
    ) -> Histogram:
        return self._parent.histogram(self._prefix + name, buckets, **labels)

    def resolve_signal(self, signal: str) -> float | None:
        return self._parent.resolve_signal(self._prefix + signal)

    def __len__(self) -> int:
        counted = 0
        for group in ("_counters", "_gauges", "_histograms"):
            counted += sum(
                1
                for key in getattr(self._parent, group)
                if key.startswith(self._prefix)
            )
        return counted

    def snapshot(self) -> dict[str, Any]:
        """The parent's snapshot restricted to this namespace, with the
        prefix stripped — a job's status block reads ``queue.depth``,
        not ``job.42.queue.depth``."""
        full = self._parent.snapshot()
        n = len(self._prefix)
        return {
            group: {
                key[n:]: value
                for key, value in full[group].items()
                if key.startswith(self._prefix)
            }
            for group in ("counters", "gauges", "histograms")
        }


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for disabled telemetry."""

    __slots__ = ()
    name = "<null>"
    value = 0
    count = 0
    sum = 0.0
    buckets: tuple[float, ...] = ()
    counts: list[int] = []

    def inc(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def absorb(self, counts: Iterable[int], count: int, total: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry(MetricsRegistry):
    """Registry whose instruments discard everything.

    Components take ``metrics or NULL_METRICS`` so their hot paths can
    call ``inc()`` unconditionally — a no-op method call instead of an
    ``if`` at every site.
    """

    def counter(self, name: str, **labels: Any) -> Counter:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str, **labels: Any) -> Gauge:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(  # type: ignore[override]
        self,
        name: str,
        buckets: Iterable[float] | None = None,
        **labels: Any,
    ) -> Histogram:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def view(self, prefix: str) -> "MetricsRegistry":
        return self


#: Shared inert registry; never holds state, safe to use as a default.
NULL_METRICS = NullMetricsRegistry()
