"""Run reports and trace diffs over exported telemetry artifacts.

``repro report`` digests a ``--trace`` export (plus, optionally, the
matching metrics JSON) into the questions an operator actually asks:
how busy was each worker, where did the time go, what were the latency
percentiles, did any SLO probe fire.  ``repro trace diff`` compares two
trace exports structurally — the tool behind the determinism contract
(same seed ⇒ byte-identical export) and behind "what changed between
these two runs".

Both read the Trace Event Format written by
:func:`repro.telemetry.export.write_chrome_trace` in a single pass with
bounded state, so multi-GB macro-run exports stream fine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, TextIO

_US = 1e6

#: Histograms surfaced in the report's percentile table, in print order.
LATENCY_SIGNALS = (
    "task.latency_seconds",
    "queue.wait_seconds",
    "task.exec_seconds",
    "heartbeat.rtt_seconds",
)


@dataclass
class WorkerStats:
    """Aggregates for one ``worker:*`` track."""

    tasks: int = 0
    failed: int = 0
    exec_us: float = 0.0
    fetch_us: float = 0.0
    first_us: float = float("inf")
    last_us: float = 0.0
    clock_offset: float | None = None

    def absorb_span(self, name: str, ts: float, dur: float, args: dict) -> None:
        self.first_us = min(self.first_us, ts)
        self.last_us = max(self.last_us, ts + dur)
        if name == "task":
            self.tasks += 1
            if args.get("ok") is False:
                self.failed += 1
        elif name == "exec":
            self.exec_us += dur
        elif name == "fetch":
            self.fetch_us += dur


@dataclass
class TraceReport:
    """Everything ``repro report`` prints, as plain data."""

    runs: list[str] = field(default_factory=list)
    span_us: float = 0.0  # run wall span (first start .. last end)
    workers: dict[str, WorkerStats] = field(default_factory=dict)
    retransmits: int = 0
    breaches: list[dict[str, Any]] = field(default_factory=list)
    recoveries: int = 0
    queue_samples: int = 0
    queue_peak: float = 0.0
    events: int = 0


def build_report(events: Iterable[dict[str, Any]]) -> TraceReport:
    """Fold a trace-event stream into a :class:`TraceReport`.

    Single pass, state bounded by the number of tracks — never by the
    number of spans.
    """
    report = TraceReport()
    track_names: dict[tuple[int, int], str] = {}
    lo, hi = float("inf"), 0.0

    def worker_for(pid: int, tid: int) -> WorkerStats | None:
        track = track_names.get((pid, tid), "")
        if not track.startswith("worker:"):
            return None
        return report.workers.setdefault(track[len("worker:"):], WorkerStats())

    for ev in events:
        report.events += 1
        ph = ev.get("ph")
        args = ev.get("args", {})
        if ph == "M":
            if ev.get("name") == "process_name":
                report.runs.append(args.get("name", "?"))
            elif ev.get("name") == "thread_name":
                track_names[(ev["pid"], ev["tid"])] = args.get("name", "")
        elif ph == "X":
            ts, dur = ev.get("ts", 0.0), ev.get("dur", 0.0)
            lo, hi = min(lo, ts), max(hi, ts + dur)
            stats = worker_for(ev["pid"], ev["tid"])
            if stats is not None:
                stats.absorb_span(ev["name"], ts, dur, args)
            elif ev["name"] == "retransmit":
                report.retransmits += 1
        elif ph == "i":
            name = ev["name"]
            if name == "slo.breach":
                report.breaches.append(
                    {
                        "time_s": ev.get("ts", 0.0) / _US,
                        "probe": args.get("probe", "?"),
                        "signal": args.get("signal", "?"),
                        "value": args.get("value"),
                        "threshold": args.get("threshold"),
                    }
                )
            elif name == "slo.recovered":
                report.recoveries += 1
            elif name == "queue.depth":
                report.queue_samples += 1
                value = args.get("value")
                if isinstance(value, (int, float)):
                    report.queue_peak = max(report.queue_peak, value)
            elif name == "clock.offset":
                stats = worker_for(ev["pid"], ev["tid"])
                if stats is not None:
                    stats.clock_offset = args.get("value")
    if lo != float("inf"):
        report.span_us = hi - lo
    return report


def render_report(
    report: TraceReport, stream: TextIO, metrics: dict[str, Any] | None = None
) -> None:
    """Print a :class:`TraceReport` (plus optional metrics snapshot)."""
    runs = ", ".join(report.runs) or "?"
    stream.write(
        f"run {runs}: {report.events} events, "
        f"{report.span_us / _US:.3f}s traced\n"
    )
    if report.workers:
        stream.write("\nworkers:\n")
        stream.write(
            f"  {'worker':<14} {'tasks':>6} {'failed':>6} {'exec_s':>9}"
            f" {'fetch_s':>9} {'util%':>6} {'clk_off_s':>10}\n"
        )
        wall = report.span_us or 1.0
        for wid in sorted(report.workers):
            w = report.workers[wid]
            util = 100.0 * w.exec_us / wall
            offset = f"{w.clock_offset:.4f}" if w.clock_offset is not None else "-"
            stream.write(
                f"  {wid:<14} {w.tasks:>6} {w.failed:>6}"
                f" {w.exec_us / _US:>9.3f} {w.fetch_us / _US:>9.3f}"
                f" {util:>6.1f} {offset:>10}\n"
            )
    if metrics is not None:
        hists = metrics.get("histograms", {})
        rows = [(n, hists[n]) for n in LATENCY_SIGNALS if n in hists]
        if rows:
            stream.write("\nlatency percentiles (s):\n")
            stream.write(
                f"  {'signal':<24} {'count':>7} {'p50':>9} {'p95':>9} {'p99':>9}\n"
            )
            for name, h in rows:
                stream.write(
                    f"  {name:<24} {h.get('count', 0):>7}"
                    f" {h.get('p50', 0.0):>9.4f} {h.get('p95', 0.0):>9.4f}"
                    f" {h.get('p99', 0.0):>9.4f}\n"
                )
        counters = metrics.get("counters", {})
        dropped = counters.get("telemetry.batches_dropped", 0)
        if dropped:
            stream.write(f"\ntelemetry batches dropped: {dropped}\n")
    if report.retransmits:
        stream.write(f"\nretransmits: {report.retransmits}\n")
    if report.queue_samples:
        stream.write(
            f"queue depth: peak {report.queue_peak:g}"
            f" over {report.queue_samples} samples\n"
        )
    if report.breaches or report.recoveries:
        stream.write(
            f"\nSLO: {len(report.breaches)} breach(es),"
            f" {report.recoveries} recovery(ies)\n"
        )
        for b in report.breaches[:10]:
            stream.write(
                f"  t={b['time_s']:.3f}s {b['probe']}: {b['signal']}"
                f" = {b['value']} (threshold {b['threshold']})\n"
            )
        if len(report.breaches) > 10:
            stream.write(f"  ... {len(report.breaches) - 10} more\n")
    elif report.queue_samples or report.workers:
        stream.write("\nSLO: no breaches\n")


# -- trace diff --------------------------------------------------------------

@dataclass(frozen=True)
class _SideDigest:
    """Order-insensitive structural digest of one trace."""

    spans: dict[tuple[str, str], tuple[int, float]]  # (track, name) → (n, Σdur)
    instants: dict[tuple[str, str], int]
    tracks: frozenset[str]


def _digest(events: Iterable[dict[str, Any]]) -> _SideDigest:
    track_names: dict[tuple[int, int], str] = {}
    spans: dict[tuple[str, str], tuple[int, float]] = {}
    instants: dict[tuple[str, str], int] = {}
    for ev in events:
        ph = ev.get("ph")
        if ph == "M" and ev.get("name") == "thread_name":
            track_names[(ev["pid"], ev["tid"])] = ev.get("args", {}).get("name", "")
        elif ph == "X":
            track = track_names.get((ev["pid"], ev["tid"]), "?")
            n, total = spans.get((track, ev["name"]), (0, 0.0))
            spans[(track, ev["name"])] = (n + 1, total + ev.get("dur", 0.0))
        elif ph == "i":
            track = track_names.get((ev["pid"], ev["tid"]), "?")
            key = (track, ev["name"])
            instants[key] = instants.get(key, 0) + 1
    tracks = frozenset(track_names.values())
    return _SideDigest(spans, instants, tracks)


def diff_traces(
    events_a: Iterable[dict[str, Any]],
    events_b: Iterable[dict[str, Any]],
    stream: TextIO,
    *,
    tolerance_us: float = 0.0,
) -> int:
    """Structural diff of two trace-event streams.

    Compares tracks, span counts and total durations (within
    ``tolerance_us``), and instant-event counts — not raw bytes, so two
    runs that differ only in event *order* compare equal.  Returns 0
    when equivalent, 1 when they differ (the shell-friendly contract).
    """
    a, b = _digest(events_a), _digest(events_b)
    differences = 0

    for track in sorted(a.tracks - b.tracks):
        stream.write(f"- track {track!r} only in first trace\n")
        differences += 1
    for track in sorted(b.tracks - a.tracks):
        stream.write(f"+ track {track!r} only in second trace\n")
        differences += 1

    for key in sorted(set(a.spans) | set(b.spans)):
        track, name = key
        na, ta = a.spans.get(key, (0, 0.0))
        nb, tb = b.spans.get(key, (0, 0.0))
        if na != nb:
            stream.write(
                f"~ span {track}/{name}: count {na} -> {nb}\n"
            )
            differences += 1
        elif abs(ta - tb) > tolerance_us:
            stream.write(
                f"~ span {track}/{name}: total "
                f"{ta / _US:.6f}s -> {tb / _US:.6f}s\n"
            )
            differences += 1

    for key in sorted(set(a.instants) | set(b.instants)):
        track, name = key
        ca, cb = a.instants.get(key, 0), b.instants.get(key, 0)
        if ca != cb:
            stream.write(f"~ event {track}/{name}: count {ca} -> {cb}\n")
            differences += 1

    if differences == 0:
        stream.write("traces are structurally identical\n")
        return 0
    stream.write(f"{differences} difference(s)\n")
    return 1
