"""Exporters: Chrome/Perfetto trace-event JSON, flat metrics JSON.

The trace format is the Trace Event Format consumed by Perfetto and
``chrome://tracing``: a ``traceEvents`` list of complete (``ph="X"``),
instant (``ph="i"``) and metadata (``ph="M"``) events.  Runs map to
processes and tracks to threads, both numbered in deterministic
first-appearance order, and serialization uses sorted keys with fixed
separators — the determinism contract is that a same-seed run exports
byte-identical JSON.

Timestamps: trace-event ``ts``/``dur`` are microseconds.  Sim time is
seconds, so spans are scaled by 1e6 and rounded to 3 decimals (ns
resolution), which keeps float repr stable.
"""

from __future__ import annotations

import json
from typing import Any, TextIO

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import Telemetry

_US = 1e6


def _ts(seconds: float) -> float:
    return round(seconds * _US, 3)


def chrome_trace(telemetry: Telemetry) -> dict[str, Any]:
    """Build a Trace-Event-Format dict from a recording hub."""
    events: list[dict[str, Any]] = []
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}

    def pid_for(run: str) -> int:
        pid = pids.get(run)
        if pid is None:
            pid = pids[run] = len(pids) + 1
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": run},
                }
            )
        return pid

    def tid_for(run: str, track: str) -> tuple[int, int]:
        pid = pid_for(run)
        tid = tids.get((run, track))
        if tid is None:
            tid = tids[(run, track)] = len(tids) + 1
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": track or "main"},
                }
            )
        return pid, tid

    for span in telemetry.spans:
        pid, tid = tid_for(span.run, span.track)
        args: dict[str, Any] = dict(span.tags)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append(
            {
                "ph": "X",
                "name": span.key,
                "cat": "span",
                "pid": pid,
                "tid": tid,
                "ts": _ts(span.start),
                "dur": _ts(span.duration),
                "args": args,
            }
        )
    for ev in telemetry.events:
        pid, tid = tid_for(ev.run, ev.track)
        args = dict(ev.tags)
        if ev.value is not None:
            args["value"] = ev.value
        events.append(
            {
                "ph": "i",
                "name": ev.key,
                "cat": "event",
                "s": "t",
                "pid": pid,
                "tid": tid,
                "ts": _ts(ev.time),
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def dump_chrome_trace(telemetry: Telemetry) -> str:
    """Serialize deterministically (sorted keys, fixed separators)."""
    return json.dumps(chrome_trace(telemetry), sort_keys=True, separators=(",", ":"))


def write_chrome_trace(telemetry: Telemetry, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dump_chrome_trace(telemetry))
        handle.write("\n")


def dump_metrics_json(metrics: MetricsRegistry) -> str:
    """Flat metrics snapshot as stable, human-diffable JSON."""
    return json.dumps(metrics.snapshot(), sort_keys=True, indent=2)


def write_metrics_json(metrics: MetricsRegistry, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dump_metrics_json(metrics))
        handle.write("\n")


# -- summaries ---------------------------------------------------------------

def summarize_trace(trace: dict[str, Any], stream: TextIO) -> None:
    """Render a human summary of a trace-event dict onto ``stream``.

    Groups complete spans by name with count / total / max duration,
    lists processes (runs) with their wall span, and counts instants.
    Used by ``repro trace summarize``.
    """
    events = trace.get("traceEvents", [])
    process_names: dict[int, str] = {}
    bounds: dict[int, tuple[float, float]] = {}
    span_agg: dict[str, list[float]] = {}
    instants: dict[str, int] = {}
    for ev in events:
        ph = ev.get("ph")
        if ph == "M" and ev.get("name") == "process_name":
            process_names[ev["pid"]] = ev.get("args", {}).get("name", "?")
        elif ph == "X":
            span_agg.setdefault(ev["name"], []).append(ev.get("dur", 0.0))
            ts, dur = ev.get("ts", 0.0), ev.get("dur", 0.0)
            lo, hi = bounds.get(ev["pid"], (ts, ts + dur))
            bounds[ev["pid"]] = (min(lo, ts), max(hi, ts + dur))
        elif ph == "i":
            instants[ev["name"]] = instants.get(ev["name"], 0) + 1

    stream.write(f"{len(events)} events, {len(process_names)} run(s)\n")
    for pid in sorted(process_names):
        lo, hi = bounds.get(pid, (0.0, 0.0))
        stream.write(
            f"  run {process_names[pid]}: {(hi - lo) / _US:.3f}s traced\n"
        )
    if span_agg:
        stream.write("\nspans:\n")
        header = f"  {'name':<14} {'count':>7} {'total_s':>10} {'max_s':>10}\n"
        stream.write(header)
        rows = sorted(
            span_agg.items(), key=lambda kv: (-sum(kv[1]), kv[0])
        )
        for name, durs in rows:
            stream.write(
                f"  {name:<14} {len(durs):>7} {sum(durs) / _US:>10.3f}"
                f" {max(durs) / _US:>10.3f}\n"
            )
    if instants:
        stream.write("\ninstants:\n")
        for name in sorted(instants):
            stream.write(f"  {name:<22} {instants[name]:>5}\n")
