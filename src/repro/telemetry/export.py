"""Exporters: Chrome/Perfetto trace-event JSON, flat metrics JSON.

The trace format is the Trace Event Format consumed by Perfetto and
``chrome://tracing``: a ``traceEvents`` list of complete (``ph="X"``),
instant (``ph="i"``) and metadata (``ph="M"``) events.  Runs map to
processes and tracks to threads, both numbered in deterministic
first-appearance order, and serialization uses sorted keys with fixed
separators — the determinism contract is that a same-seed run exports
byte-identical JSON.

Timestamps: trace-event ``ts``/``dur`` are microseconds.  Sim time is
seconds, so spans are scaled by 1e6 and rounded to 3 decimals (ns
resolution), which keeps float repr stable.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Iterator, TextIO

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import Telemetry

_US = 1e6


def _ts(seconds: float) -> float:
    return round(seconds * _US, 3)


def chrome_trace(telemetry: Telemetry) -> dict[str, Any]:
    """Build a Trace-Event-Format dict from a recording hub."""
    events: list[dict[str, Any]] = []
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}

    def pid_for(run: str) -> int:
        pid = pids.get(run)
        if pid is None:
            pid = pids[run] = len(pids) + 1
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": run},
                }
            )
        return pid

    def tid_for(run: str, track: str) -> tuple[int, int]:
        pid = pid_for(run)
        tid = tids.get((run, track))
        if tid is None:
            tid = tids[(run, track)] = len(tids) + 1
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": track or "main"},
                }
            )
        return pid, tid

    for span in telemetry.spans:
        pid, tid = tid_for(span.run, span.track)
        args: dict[str, Any] = dict(span.tags)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append(
            {
                "ph": "X",
                "name": span.key,
                "cat": "span",
                "pid": pid,
                "tid": tid,
                "ts": _ts(span.start),
                "dur": _ts(span.duration),
                "args": args,
            }
        )
    for ev in telemetry.events:
        pid, tid = tid_for(ev.run, ev.track)
        args = dict(ev.tags)
        if ev.value is not None:
            args["value"] = ev.value
        events.append(
            {
                "ph": "i",
                "name": ev.key,
                "cat": "event",
                "s": "t",
                "pid": pid,
                "tid": tid,
                "ts": _ts(ev.time),
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def dump_chrome_trace(telemetry: Telemetry) -> str:
    """Serialize deterministically (sorted keys, fixed separators)."""
    return json.dumps(chrome_trace(telemetry), sort_keys=True, separators=(",", ":"))


def write_chrome_trace(telemetry: Telemetry, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dump_chrome_trace(telemetry))
        handle.write("\n")


def dump_metrics_json(metrics: MetricsRegistry) -> str:
    """Flat metrics snapshot as stable, human-diffable JSON."""
    return json.dumps(metrics.snapshot(), sort_keys=True, indent=2)


def write_metrics_json(metrics: MetricsRegistry, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dump_metrics_json(metrics))
        handle.write("\n")


# -- streaming reader --------------------------------------------------------

class _TraceStream:
    """Incremental JSON reader for trace-event files.

    Keeps a bounded text window over ``handle`` and decodes one JSON
    value at a time with :meth:`json.JSONDecoder.raw_decode`, refilling
    the window when a value is cut off at a chunk boundary — a
    multi-GB ``--trace`` export never has to fit in memory.
    """

    def __init__(self, handle: TextIO, chunk_size: int) -> None:
        self._handle = handle
        self._chunk = chunk_size
        self._buf = ""
        self._pos = 0
        self._decoder = json.JSONDecoder()

    def _fill(self) -> bool:
        """Pull one more chunk; drop the consumed prefix.  False at EOF."""
        data = self._handle.read(self._chunk)
        if not data:
            return False
        if self._pos:
            self._buf = self._buf[self._pos :]
            self._pos = 0
        self._buf += data
        return True

    def take(self) -> str:
        """Consume and return the next non-whitespace character."""
        while True:
            buf, pos = self._buf, self._pos
            while pos < len(buf):
                ch = buf[pos]
                pos += 1
                if ch not in " \t\n\r":
                    self._pos = pos
                    return ch
            self._pos = pos
            if not self._fill():
                raise ValueError("truncated trace file")

    def value(self) -> Any:
        """Decode the next JSON value, skipping leading whitespace."""
        # raw_decode rejects leading whitespace; take()+pushback eats it
        # (refilling across chunk edges) and lands on the first token.
        self.take()
        self._pos -= 1
        while True:
            try:
                obj, end = self._decoder.raw_decode(self._buf, self._pos)
            except json.JSONDecodeError:
                if not self._fill():
                    raise
                continue
            # A value flush against the window edge may continue in the
            # next chunk (e.g. the number 12|34 split across reads).
            if end == len(self._buf) and self._fill():
                continue
            self._pos = end
            return obj


def iter_trace_events(
    handle: TextIO, *, chunk_size: int = 1 << 16
) -> Iterator[dict[str, Any]]:
    """Yield ``traceEvents`` entries from an open trace file one at a
    time, without loading the file into memory.

    Parses the top-level object incrementally: other keys are decoded
    and discarded; once the ``traceEvents`` array has been streamed the
    rest of the file is ignored.  Raises :class:`ValueError` (or its
    subclass :class:`json.JSONDecodeError`) for files that are not
    trace-event JSON.
    """
    stream = _TraceStream(handle, chunk_size)
    if stream.take() != "{":
        raise ValueError("not a trace-event JSON object")
    ch = stream.take()
    if ch == "}":
        raise ValueError("no traceEvents array")
    first = True
    while True:
        if not first:
            if ch == "}":
                raise ValueError("no traceEvents array")
            if ch != ",":
                raise ValueError("malformed trace object")
            ch = stream.take()
        first = False
        if ch != '"':
            raise ValueError("malformed trace object")
        stream._pos -= 1  # re-include the quote
        key = stream.value()
        if stream.take() != ":":
            raise ValueError("malformed trace object")
        if key == "traceEvents":
            if stream.take() != "[":
                raise ValueError("traceEvents is not an array")
            ch = stream.take()
            if ch == "]":
                return
            stream._pos -= 1  # ch starts the first element
            while True:
                yield stream.value()
                ch = stream.take()
                if ch == "]":
                    return
                if ch != ",":
                    raise ValueError("malformed traceEvents array")
                ch = stream.take()
                stream._pos -= 1  # ch starts the next element
        stream.value()  # skip this key's value
        ch = stream.take()


# -- summaries ---------------------------------------------------------------

def summarize_trace(trace: dict[str, Any], stream: TextIO) -> None:
    """Render a human summary of an in-memory trace-event dict.

    Thin wrapper over :func:`summarize_trace_events`; the CLI streams
    from disk instead via :func:`iter_trace_events`.
    """
    summarize_trace_events(trace.get("traceEvents", []), stream)


def summarize_trace_events(
    events: Iterable[dict[str, Any]], stream: TextIO
) -> None:
    """Render a human summary of a trace-event stream onto ``stream``.

    Groups complete spans by name with count / total / max duration,
    lists processes (runs) with their wall span, and counts instants.
    Single pass, bounded state — safe for arbitrarily large traces.
    Used by ``repro trace summarize``.
    """
    count = 0
    process_names: dict[int, str] = {}
    bounds: dict[int, tuple[float, float]] = {}
    # Per span name: (count, total_dur, max_dur) — O(names), not O(spans).
    span_agg: dict[str, tuple[int, float, float]] = {}
    instants: dict[str, int] = {}
    for ev in events:
        count += 1
        ph = ev.get("ph")
        if ph == "M" and ev.get("name") == "process_name":
            process_names[ev["pid"]] = ev.get("args", {}).get("name", "?")
        elif ph == "X":
            dur = ev.get("dur", 0.0)
            n, total, peak = span_agg.get(ev["name"], (0, 0.0, 0.0))
            span_agg[ev["name"]] = (n + 1, total + dur, max(peak, dur))
            ts = ev.get("ts", 0.0)
            lo, hi = bounds.get(ev["pid"], (ts, ts + dur))
            bounds[ev["pid"]] = (min(lo, ts), max(hi, ts + dur))
        elif ph == "i":
            instants[ev["name"]] = instants.get(ev["name"], 0) + 1

    stream.write(f"{count} events, {len(process_names)} run(s)\n")
    for pid in sorted(process_names):
        lo, hi = bounds.get(pid, (0.0, 0.0))
        stream.write(
            f"  run {process_names[pid]}: {(hi - lo) / _US:.3f}s traced\n"
        )
    if span_agg:
        stream.write("\nspans:\n")
        header = f"  {'name':<14} {'count':>7} {'total_s':>10} {'max_s':>10}\n"
        stream.write(header)
        rows = sorted(
            span_agg.items(), key=lambda kv: (-kv[1][1], kv[0])
        )
        for name, (n, total, peak) in rows:
            stream.write(
                f"  {name:<14} {n:>7} {total / _US:>10.3f}"
                f" {peak / _US:>10.3f}\n"
            )
    if instants:
        stream.write("\ninstants:\n")
        for name in sorted(instants):
            stream.write(f"  {name:<22} {instants[name]:>5}\n")
