"""File and dataset model.

FRIEDA's unit of data management is the *input file*: the partition
generator groups files, the master transfers files, workers substitute
file paths into the execution command. :class:`DataFile` is a metadata
handle (name + size + optional real path); the simulated engine only
needs metadata, while the real runtimes resolve ``path`` to bytes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional

import numpy as np

from repro.errors import StorageError
from repro.util.seeding import make_rng
from repro.util.units import format_bytes, parse_size


@dataclass(frozen=True, order=True)
class DataFile:
    """Metadata handle for one input file.

    ``name`` is unique within a dataset; ``size`` is in bytes. ``path``
    points at real bytes for the non-simulated runtimes and is ``None``
    for purely simulated files.
    """

    name: str
    size: int
    path: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"negative file size for {self.name!r}")

    def __str__(self) -> str:
        return f"{self.name} ({format_bytes(self.size)})"


class Dataset:
    """An ordered collection of :class:`DataFile` with unique names.

    Order matters: the ``pairwise_adjacent`` grouping pairs files in
    dataset order, exactly like the paper pairs adjacent files of the
    input directory listing.
    """

    def __init__(self, name: str, files: Iterable[DataFile] = ()):
        self.name = name
        self._files: list[DataFile] = []
        self._by_name: dict[str, DataFile] = {}
        for file in files:
            self.add(file)

    def add(self, file: DataFile) -> None:
        if file.name in self._by_name:
            raise StorageError(f"duplicate file name {file.name!r} in dataset {self.name!r}")
        self._by_name[file.name] = file
        self._files.append(file)

    def __len__(self) -> int:
        return len(self._files)

    def __iter__(self) -> Iterator[DataFile]:
        return iter(self._files)

    def __getitem__(self, index: int) -> DataFile:
        return self._files[index]

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def get(self, name: str) -> DataFile:
        try:
            return self._by_name[name]
        except KeyError:
            raise StorageError(f"no file {name!r} in dataset {self.name!r}") from None

    @property
    def files(self) -> tuple[DataFile, ...]:
        return tuple(self._files)

    @property
    def total_size(self) -> int:
        """Total bytes across all files."""
        return sum(f.size for f in self._files)

    def sorted_by_name(self) -> "Dataset":
        """A copy with files in lexicographic name order (ls-like)."""
        return Dataset(self.name, sorted(self._files, key=lambda f: f.name))

    @classmethod
    def from_directory(
        cls,
        directory: str,
        name: str | None = None,
        pattern: Callable[[str], bool] | None = None,
    ) -> "Dataset":
        """Scan a real directory into a dataset (sorted, like ``ls``).

        ``pattern`` filters file names; subdirectories are ignored —
        FRIEDA's partition generator works on a flat input directory.
        """
        if not os.path.isdir(directory):
            raise StorageError(f"input directory not found: {directory}")
        files = []
        for entry in sorted(os.listdir(directory)):
            full = os.path.join(directory, entry)
            if not os.path.isfile(full):
                continue
            if pattern is not None and not pattern(entry):
                continue
            files.append(DataFile(name=entry, size=os.path.getsize(full), path=full))
        return cls(name or os.path.basename(directory.rstrip("/")) or "dataset", files)

    def __repr__(self) -> str:
        return (
            f"Dataset({self.name!r}, files={len(self)}, "
            f"total={format_bytes(self.total_size)})"
        )


class FileCatalog:
    """Tracks which node holds a replica of which file.

    The master consults the catalog to decide whether a worker already
    has a file (pre-partitioned local) or needs a transfer; the
    elasticity manager updates it when workers join or leave.
    """

    def __init__(self) -> None:
        self._replicas: dict[str, set[str]] = {}

    def add_replica(self, file_name: str, node_id: str) -> None:
        self._replicas.setdefault(file_name, set()).add(node_id)

    def drop_node(self, node_id: str) -> int:
        """Forget all replicas on ``node_id``; returns how many were dropped."""
        dropped = 0
        for holders in self._replicas.values():
            if node_id in holders:
                holders.discard(node_id)
                dropped += 1
        return dropped

    def holders(self, file_name: str) -> frozenset[str]:
        return frozenset(self._replicas.get(file_name, ()))

    def has_replica(self, file_name: str, node_id: str) -> bool:
        return node_id in self._replicas.get(file_name, ())

    def replica_count(self, file_name: str) -> int:
        return len(self._replicas.get(file_name, ()))

    def files_on(self, node_id: str) -> frozenset[str]:
        return frozenset(
            name for name, holders in self._replicas.items() if node_id in holders
        )


def synthetic_dataset(
    name: str,
    count: int,
    mean_size: str | int,
    *,
    size_cv: float = 0.0,
    seed: int | np.random.Generator | None = 0,
    prefix: str = "file",
    suffix: str = ".dat",
) -> Dataset:
    """Build a purely simulated dataset of ``count`` files.

    ``mean_size`` accepts humane strings ("7 MB"); ``size_cv`` is the
    coefficient of variation of a lognormal size distribution (0 for
    constant sizes). Used by the workload builders to model the 1250
    beamline images / 7500 protein sequence files of §IV-A.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    mean = parse_size(mean_size)
    rng = make_rng(seed, "dataset", name)
    width = max(4, len(str(max(count - 1, 0))))
    files = []
    for index in range(count):
        if size_cv > 0:
            # Lognormal with the requested mean and CV.
            sigma2 = np.log(1.0 + size_cv**2)
            mu = np.log(mean) - sigma2 / 2.0
            size = int(rng.lognormal(mu, np.sqrt(sigma2)))
            size = max(1, size)
        else:
            size = mean
        files.append(DataFile(name=f"{prefix}{index:0{width}d}{suffix}", size=size))
    return Dataset(name, files)
