"""The partition generator (§II-E of the paper).

The partition generator turns the input directory's file list into
*task groups*: the lists of files each program instance receives. The
paper ships three pairwise groupings plus a default:

- ``SINGLE`` (default): one file per program instance,
- ``ONE_TO_ALL``: one chosen file paired with every other file,
- ``PAIRWISE_ADJACENT``: adjacent files paired (the ALS image workload),
- ``ALL_TO_ALL``: every unordered pair of distinct files.

"The design allows other schemes to be easily added" — the registry
(:func:`register_scheme`) provides that extension point, and two
extra schemes used by the benchmarks (``ROUND_ROBIN_CHUNKS`` and
``SIZE_BALANCED_CHUNKS``) are registered out of the box.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.data.files import DataFile, Dataset
from repro.errors import PartitionError


@dataclass(frozen=True)
class TaskGroup:
    """The input files for one program instance.

    ``index`` is the task's position in generation order — the master
    hands out groups in this order, and the pre-partitioning strategies
    chunk by it.
    """

    index: int
    files: tuple[DataFile, ...]

    @property
    def total_size(self) -> int:
        return sum(f.size for f in self.files)

    @property
    def file_names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.files)


class PartitionScheme(str, enum.Enum):
    """Built-in grouping schemes of the partition generator."""

    SINGLE = "single"
    ONE_TO_ALL = "one_to_all"
    PAIRWISE_ADJACENT = "pairwise_adjacent"
    ALL_TO_ALL = "all_to_all"
    ROUND_ROBIN_CHUNKS = "round_robin_chunks"
    SIZE_BALANCED_CHUNKS = "size_balanced_chunks"


SchemeFn = Callable[[Sequence[DataFile], dict], Iterable[tuple[DataFile, ...]]]

_REGISTRY: dict[str, SchemeFn] = {}


def register_scheme(name: str, fn: SchemeFn, *, overwrite: bool = False) -> None:
    """Register a custom grouping scheme under ``name``.

    The callable receives the ordered file list and an options dict and
    yields tuples of files, one per task.
    """
    key = str(name)
    if key in _REGISTRY and not overwrite:
        raise PartitionError(f"scheme {key!r} already registered")
    _REGISTRY[key] = fn


def _scheme_single(files: Sequence[DataFile], _opts: dict) -> Iterable[tuple[DataFile, ...]]:
    for f in files:
        yield (f,)


def _scheme_one_to_all(files: Sequence[DataFile], opts: dict) -> Iterable[tuple[DataFile, ...]]:
    if not files:
        return
    pivot_name = opts.get("pivot")
    if pivot_name is None:
        pivot = files[0]
    else:
        matches = [f for f in files if f.name == pivot_name]
        if not matches:
            raise PartitionError(f"one_to_all pivot {pivot_name!r} not in dataset")
        pivot = matches[0]
    for f in files:
        if f is not pivot:
            yield (pivot, f)


def _scheme_pairwise_adjacent(files: Sequence[DataFile], opts: dict) -> Iterable[tuple[DataFile, ...]]:
    if len(files) % 2 != 0 and not opts.get("allow_odd", False):
        raise PartitionError(
            "pairwise_adjacent needs an even number of files "
            f"(got {len(files)}); pass allow_odd=True to drop the last"
        )
    for i in range(0, len(files) - 1, 2):
        yield (files[i], files[i + 1])


def _scheme_all_to_all(files: Sequence[DataFile], _opts: dict) -> Iterable[tuple[DataFile, ...]]:
    for i in range(len(files)):
        for j in range(i + 1, len(files)):
            yield (files[i], files[j])


def _scheme_round_robin_chunks(files: Sequence[DataFile], opts: dict) -> Iterable[tuple[DataFile, ...]]:
    chunks = int(opts.get("chunks", 0))
    if chunks < 1:
        raise PartitionError("round_robin_chunks requires chunks >= 1")
    buckets: list[list[DataFile]] = [[] for _ in range(chunks)]
    for index, f in enumerate(files):
        buckets[index % chunks].append(f)
    for bucket in buckets:
        if bucket:
            yield tuple(bucket)


def _scheme_size_balanced_chunks(files: Sequence[DataFile], opts: dict) -> Iterable[tuple[DataFile, ...]]:
    chunks = int(opts.get("chunks", 0))
    if chunks < 1:
        raise PartitionError("size_balanced_chunks requires chunks >= 1")
    # Longest-processing-time greedy: biggest file to currently lightest
    # bucket. Classic LPT bin balancing. Ties on load break on item
    # count, so equal-sized (including zero-sized) files spread across
    # buckets instead of piling into the first one.
    buckets: list[list[DataFile]] = [[] for _ in range(chunks)]
    loads = [0] * chunks
    for f in sorted(files, key=lambda f: f.size, reverse=True):
        lightest = min(range(chunks), key=lambda i: (loads[i], len(buckets[i])))
        buckets[lightest].append(f)
        loads[lightest] += f.size
    for bucket in buckets:
        if bucket:
            yield tuple(bucket)


for _name, _fn in {
    PartitionScheme.SINGLE: _scheme_single,
    PartitionScheme.ONE_TO_ALL: _scheme_one_to_all,
    PartitionScheme.PAIRWISE_ADJACENT: _scheme_pairwise_adjacent,
    PartitionScheme.ALL_TO_ALL: _scheme_all_to_all,
    PartitionScheme.ROUND_ROBIN_CHUNKS: _scheme_round_robin_chunks,
    PartitionScheme.SIZE_BALANCED_CHUNKS: _scheme_size_balanced_chunks,
}.items():
    register_scheme(_name.value, _fn)


def expected_group_count(scheme: PartitionScheme | str, n_files: int, **options) -> int:
    """Closed-form number of groups a scheme yields for ``n_files`` inputs.

    Used by tests and by the master to size progress reporting without
    materializing the grouping.
    """
    scheme = PartitionScheme(scheme)
    if scheme is PartitionScheme.SINGLE:
        return n_files
    if scheme is PartitionScheme.ONE_TO_ALL:
        return max(0, n_files - 1)
    if scheme is PartitionScheme.PAIRWISE_ADJACENT:
        if n_files % 2 != 0 and not options.get("allow_odd", False):
            raise PartitionError("pairwise_adjacent needs an even count")
        return n_files // 2
    if scheme is PartitionScheme.ALL_TO_ALL:
        return n_files * (n_files - 1) // 2
    if scheme in (PartitionScheme.ROUND_ROBIN_CHUNKS, PartitionScheme.SIZE_BALANCED_CHUNKS):
        return min(int(options.get("chunks", 0)), n_files)
    raise PartitionError(f"no closed form for scheme {scheme}")  # pragma: no cover


@dataclass
class PartitionGenerator:
    """Generates :class:`TaskGroup` lists from a dataset.

    ``scheme`` may be a :class:`PartitionScheme` or the name of a
    custom scheme registered via :func:`register_scheme`.
    """

    scheme: PartitionScheme | str = PartitionScheme.SINGLE
    options: dict = field(default_factory=dict)

    def generate(self, dataset: Dataset | Sequence[DataFile]) -> list[TaskGroup]:
        files: Sequence[DataFile]
        if isinstance(dataset, Dataset):
            files = dataset.files
        else:
            files = tuple(dataset)
        key = self.scheme.value if isinstance(self.scheme, PartitionScheme) else str(self.scheme)
        try:
            fn = _REGISTRY[key]
        except KeyError:
            raise PartitionError(f"unknown partition scheme {key!r}") from None
        groups = []
        for index, file_tuple in enumerate(fn(files, dict(self.options))):
            if not file_tuple:
                raise PartitionError(f"scheme {key!r} produced an empty group")
            groups.append(TaskGroup(index=index, files=tuple(file_tuple)))
        return groups


def generate_groups(
    dataset: Dataset | Sequence[DataFile],
    scheme: PartitionScheme | str = PartitionScheme.SINGLE,
    **options,
) -> list[TaskGroup]:
    """Convenience wrapper: ``PartitionGenerator(scheme, options).generate()``."""
    return PartitionGenerator(scheme=scheme, options=options).generate(dataset)
