"""Placement policies: move data to computation, or computation to data.

Figure 7 of the paper compares the two choices. In this reproduction a
*placement plan* decides, per task group, which node executes it and
which transfers that implies:

- ``DATA_TO_COMPUTE``: tasks run on the provisioned compute VMs; every
  input file the worker lacks is shipped from the data source.
- ``COMPUTE_TO_DATA``: tasks run on nodes co-located with the data
  (reads are local/LAN); no wide transfers, but the compute pool is the
  (typically smaller/slower) set of data-side nodes.

The simulated engine interprets the plan; the policy itself is pure
logic and unit-testable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.data.files import FileCatalog
from repro.data.partition import TaskGroup
from repro.errors import ConfigurationError


class PlacementPolicy(str, enum.Enum):
    """Which side moves: the bytes or the program."""

    DATA_TO_COMPUTE = "data_to_compute"
    COMPUTE_TO_DATA = "compute_to_data"


@dataclass(frozen=True)
class TaskPlacement:
    """Where one task group runs and what must be transferred first."""

    group: TaskGroup
    node_id: str
    transfers: tuple[str, ...]  # file names that must be shipped to node_id

    @property
    def transfer_bytes(self) -> int:
        by_name = {f.name: f.size for f in self.group.files}
        return sum(by_name[name] for name in self.transfers)


@dataclass
class PlacementPlan:
    """A full assignment of task groups to nodes."""

    policy: PlacementPolicy
    placements: list[TaskPlacement] = field(default_factory=list)

    @property
    def total_transfer_bytes(self) -> int:
        return sum(p.transfer_bytes for p in self.placements)

    def tasks_on(self, node_id: str) -> list[TaskPlacement]:
        return [p for p in self.placements if p.node_id == node_id]


def plan_placement(
    groups: Sequence[TaskGroup],
    policy: PlacementPolicy,
    *,
    compute_nodes: Sequence[str],
    data_nodes: Sequence[str],
    catalog: FileCatalog | None = None,
    data_node_weights: Mapping[str, float] | None = None,
) -> PlacementPlan:
    """Assign each task group to a node under ``policy``.

    ``catalog`` (optional) records which files already sit on which
    node: files with a replica on the chosen node need no transfer.
    Assignment is round-robin weighted by node count — the dynamic
    (real-time) refinement happens inside the engines; this plan is the
    static view both Figure-7 variants share.
    """
    if policy is PlacementPolicy.DATA_TO_COMPUTE:
        pool = list(compute_nodes)
    else:
        pool = list(data_nodes)
    if not pool:
        raise ConfigurationError(f"placement policy {policy.value} has an empty node pool")

    catalog = catalog or FileCatalog()
    placements = []
    for index, group in enumerate(groups):
        node = pool[index % len(pool)]
        if policy is PlacementPolicy.COMPUTE_TO_DATA:
            # Prefer a data node that already holds most of the group's bytes.
            best, best_hit = node, -1
            for candidate in pool:
                hit = sum(
                    f.size for f in group.files if catalog.has_replica(f.name, candidate)
                )
                if hit > best_hit:
                    best, best_hit = candidate, hit
            node = best
        transfers = tuple(
            f.name for f in group.files if not catalog.has_replica(f.name, node)
        )
        if policy is PlacementPolicy.COMPUTE_TO_DATA and catalog is not None:
            # Executing next to the data: anything already on *some* data
            # node is a LAN-local read, not a wide transfer.
            transfers = tuple(
                name
                for name in transfers
                if not any(catalog.has_replica(name, d) for d in data_nodes)
            )
        placements.append(TaskPlacement(group=group, node_id=node, transfers=transfers))
    return PlacementPlan(policy=policy, placements=placements)
