"""Data model, partition generator and placement policies.

This package implements §II-E ("Data Partitioning") of the paper: the
*partition generator* produces file groupings (``single``,
``one_to_all``, ``pairwise_adjacent``, ``all_to_all`` plus extensions),
and :mod:`repro.data.placement` captures the Figure-7 question of moving
data to computation versus computation to data.
"""

from repro.data.files import DataFile, Dataset, FileCatalog, synthetic_dataset
from repro.data.partition import (
    PartitionGenerator,
    PartitionScheme,
    TaskGroup,
    generate_groups,
    register_scheme,
)
from repro.data.placement import PlacementPolicy, PlacementPlan, plan_placement

__all__ = [
    "DataFile",
    "Dataset",
    "FileCatalog",
    "synthetic_dataset",
    "PartitionGenerator",
    "PartitionScheme",
    "TaskGroup",
    "generate_groups",
    "register_scheme",
    "PlacementPolicy",
    "PlacementPlan",
    "plan_placement",
]
