"""The ``frieda`` command line: run any program over a directory of files.

This is the paper's §II-C promise made concrete: *"FRIEDA does not
modify any program code nor do we provide a separate programming
model"* — point it at an input directory, give it the execution syntax
with ``$inp1..$inpN`` placeholders, pick a strategy and a grouping:

    python -m repro run ./frames --command 'compare $inp1 $inp2' \\
        --grouping pairwise_adjacent --strategy real_time --workers 4

Subcommands:

- ``run`` — execute over the threaded or TCP runtime,
- ``strategies`` — list strategies and groupings with their semantics,
- ``advise`` — ask the adaptive advisor for a strategy given workload
  features,
- ``trace`` — inspect exported trace-event JSON (``trace summarize``,
  ``trace diff``),
- ``report`` — operator report (worker utilization, latency
  percentiles, SLO breaches) from a ``--trace`` export.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.advisor import StrategyAdvisor, WorkloadFeatures
from repro.core.commands import CommandTemplate
from repro.core.strategies import StrategyKind, strategy_for
from repro.data.files import Dataset
from repro.data.partition import PartitionScheme
from repro.errors import FriedaError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="frieda", description="FRIEDA data-parallel execution"
    )
    sub = parser.add_subparsers(dest="subcommand", required=True)

    run = sub.add_parser("run", help="run a program over an input directory")
    run.add_argument("input_dir", help="directory whose files are the inputs")
    run.add_argument(
        "--command",
        required=True,
        help="execution syntax with $inp1..$inpN placeholders (shell)",
    )
    run.add_argument("--workers", type=int, default=4)
    run.add_argument(
        "--strategy",
        choices=[k.value for k in StrategyKind],
        default=StrategyKind.REAL_TIME.value,
    )
    run.add_argument(
        "--grouping",
        choices=[s.value for s in PartitionScheme],
        default=PartitionScheme.SINGLE.value,
    )
    run.add_argument("--chunks", type=int, default=0, help="for chunk groupings")
    run.add_argument(
        "--engine", choices=["local", "tcp"], default="local",
        help="threaded in-process workers or TCP master/worker",
    )
    run.add_argument("--pattern", default="", help="only files containing this substring")
    run.add_argument("--report", default="", help="write a JSON run report here")
    run.add_argument("--timeline", action="store_true", help="print the worker timeline")
    run.add_argument(
        "--command-timeout", type=float, default=300.0, help="per-task timeout (s)"
    )
    run.add_argument(
        "--trace",
        metavar="OUT.json",
        default="",
        help="record a Chrome/Perfetto trace-event JSON of the run "
        "(open in ui.perfetto.dev; with --engine tcp, workers ship "
        "their spans to the master over TELEMETRY frames)",
    )
    run.add_argument(
        "--metrics-out",
        metavar="OUT.json",
        default="",
        help="with --trace: also write the metrics snapshot "
        "(counters/gauges/histograms with p50/p95/p99) here",
    )

    sub.add_parser("strategies", help="list strategies and groupings")

    advise = sub.add_parser("advise", help="recommend a strategy for a workload")
    advise.add_argument(
        "--bytes-per-compute-second",
        type=float,
        required=True,
        help="input bytes moved per second of single-core compute",
    )
    advise.add_argument(
        "--task-cost-cv", type=float, default=0.0, help="per-task cost variability"
    )

    from repro.telemetry.cli import add_report_parser, add_trace_parser

    add_trace_parser(sub)
    add_report_parser(sub)
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    dataset = Dataset.from_directory(
        args.input_dir,
        pattern=(lambda name: args.pattern in name) if args.pattern else None,
    )
    if len(dataset) == 0:
        print(f"no input files in {args.input_dir}", file=sys.stderr)
        return 2
    grouping_options = {"chunks": args.chunks} if args.chunks else {}
    command = CommandTemplate(template=args.command)

    if args.engine == "local":
        from repro.runtime.local import ThreadedEngine

        engine = ThreadedEngine(
            num_workers=args.workers, command_timeout=args.command_timeout
        )
    else:
        from repro.runtime.tcp import TcpEngine

        # TCP workers execute callables; wrap the shell command.
        import subprocess

        shell_command = command

        def run_shell(*paths: str) -> None:
            rendered = shell_command.build(list(paths))
            proc = subprocess.run(
                rendered, shell=True, capture_output=True, timeout=args.command_timeout
            )
            if proc.returncode != 0:
                raise FriedaError(
                    (proc.stderr or b"").decode(errors="replace")[:500]
                    or f"exit code {proc.returncode}"
                )

        command = CommandTemplate(function=run_shell, name=args.command.split()[0])
        # Tracing turns heartbeats on: the beats carry the send/receive
        # pairs that clock-align worker spans (and the RTT histogram).
        engine = TcpEngine(
            num_workers=args.workers,
            heartbeat_interval=0.5 if args.trace else 0.0,
        )

    telemetry = None
    run_kwargs = {}
    if args.trace:
        from repro.telemetry import Telemetry

        telemetry = Telemetry(record=True)
        run_kwargs["telemetry"] = telemetry
    outcome = engine.run(
        dataset,
        command=command,
        strategy=args.strategy,
        grouping=args.grouping,
        grouping_options=grouping_options,
        **run_kwargs,
    )
    if telemetry is not None:
        from repro.telemetry import write_chrome_trace, write_metrics_json

        write_chrome_trace(telemetry, args.trace)
        print(f"trace written to {args.trace} ({len(telemetry.spans)} spans)")
        if args.metrics_out:
            write_metrics_json(telemetry.metrics, args.metrics_out)
            print(f"metrics written to {args.metrics_out}")
    print(outcome.summary_line())
    if args.timeline:
        from repro.experiments.report import timeline

        print(timeline(outcome))
    if args.report:
        from repro.experiments.report import save_report

        save_report(outcome, args.report)
        print(f"report written to {args.report}")
    return 0 if outcome.tasks_failed == 0 and outcome.tasks_lost == 0 else 1


def _cmd_strategies() -> int:
    print("strategies (§III of the paper):")
    for kind in StrategyKind:
        descriptor = strategy_for(kind)
        traits = []
        if descriptor.data_local_to_workers:
            traits.append("data pre-placed on workers")
        if descriptor.staged_before_execution:
            traits.append("staged before execution")
        if descriptor.lazy:
            traits.append("lazy pull, overlaps transfer/compute")
        if descriptor.replicate_all:
            traits.append("full dataset on every node")
        if descriptor.isolates_failures:
            traits.append("isolates failed workers")
        print(f"  {kind.value:>24s}: {'; '.join(traits)}")
    print("groupings (§II-E):")
    for scheme in PartitionScheme:
        print(f"  {scheme.value}")
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    features = WorkloadFeatures(
        bytes_per_compute_second=args.bytes_per_compute_second,
        task_cost_cv=args.task_cost_cv,
    )
    recommendation = StrategyAdvisor().recommend("cli-workload", features)
    print(recommendation.value)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.subcommand == "run":
            return _cmd_run(args)
        if args.subcommand == "strategies":
            return _cmd_strategies()
        if args.subcommand == "advise":
            return _cmd_advise(args)
        if args.subcommand == "trace":
            from repro.telemetry.cli import run_trace_command

            return run_trace_command(args)
        if args.subcommand == "report":
            from repro.telemetry.cli import run_report_command

            return run_report_command(args)
    except FriedaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
