"""Pairwise image-similarity metrics.

All metrics are fully vectorized NumPy over float64 working copies;
each takes two equal-shaped 2-D arrays.
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np

from repro.errors import ApplicationError


def _check_pair(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2:
        raise ApplicationError("similarity metrics need 2-D images")
    if a.shape != b.shape:
        raise ApplicationError(f"image shapes differ: {a.shape} vs {b.shape}")
    return a, b


def normalized_cross_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Pearson correlation of pixel intensities, in [-1, 1]."""
    a, b = _check_pair(a, b)
    da = a - a.mean()
    db = b - b.mean()
    denom = math.sqrt(float((da * da).sum()) * float((db * db).sum()))
    if denom == 0.0:
        return 1.0 if np.array_equal(a, b) else 0.0
    return float((da * db).sum() / denom)


def mean_squared_error(a: np.ndarray, b: np.ndarray) -> float:
    a, b = _check_pair(a, b)
    diff = a - b
    return float((diff * diff).mean())


def psnr(a: np.ndarray, b: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB (inf for identical images)."""
    a, b = _check_pair(a, b)
    mse = mean_squared_error(a, b)
    if mse == 0.0:
        return math.inf
    peak = float(max(a.max(), b.max()))
    if peak <= 0:
        return 0.0
    return 10.0 * math.log10(peak * peak / mse)


def histogram_intersection(a: np.ndarray, b: np.ndarray, bins: int = 64) -> float:
    """Normalized histogram overlap in [0, 1]."""
    if bins < 2:
        raise ApplicationError("bins must be >= 2")
    a, b = _check_pair(a, b)
    lo = float(min(a.min(), b.min()))
    hi = float(max(a.max(), b.max()))
    if hi <= lo:
        return 1.0
    ha, _ = np.histogram(a, bins=bins, range=(lo, hi))
    hb, _ = np.histogram(b, bins=bins, range=(lo, hi))
    ha = ha / ha.sum()
    hb = hb / hb.sum()
    return float(np.minimum(ha, hb).sum())


def ssim_global(a: np.ndarray, b: np.ndarray) -> float:
    """Global (single-window) SSIM — luminance/contrast/structure terms
    over the whole frame. Good enough as a third member of the metric
    ensemble without a full sliding-window implementation."""
    a, b = _check_pair(a, b)
    peak = float(max(a.max(), b.max(), 1.0))
    c1 = (0.01 * peak) ** 2
    c2 = (0.03 * peak) ** 2
    mu_a, mu_b = a.mean(), b.mean()
    var_a, var_b = a.var(), b.var()
    cov = float(((a - mu_a) * (b - mu_b)).mean())
    return float(
        ((2 * mu_a * mu_b + c1) * (2 * cov + c2))
        / ((mu_a**2 + mu_b**2 + c1) * (var_a + var_b + c2))
    )


def similarity_report(a: np.ndarray, b: np.ndarray) -> Mapping[str, float]:
    """All metrics at once (what the pipeline program emits)."""
    return {
        "ncc": normalized_cross_correlation(a, b),
        "mse": mean_squared_error(a, b),
        "psnr": psnr(a, b),
        "hist_intersection": histogram_intersection(a, b),
        "ssim": ssim_global(a, b),
    }
