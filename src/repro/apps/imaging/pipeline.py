"""The image-comparison "program" FRIEDA executes.

This is the two-input task of §IV-A: given two image files, load them,
compute the similarity ensemble, and decide whether the frames match.
It is intentionally a plain function over file paths — FRIEDA "does not
modify any program code" (§II-C); the runtimes invoke it through the
command template.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, asdict

import numpy as np

from repro.apps.imaging.similarity import similarity_report
from repro.errors import ApplicationError


@dataclass(frozen=True)
class ComparisonResult:
    """Outcome of comparing two frames."""

    file_a: str
    file_b: str
    ncc: float
    mse: float
    psnr: float
    hist_intersection: float
    ssim: float
    similar: bool

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)


def compare_images(
    a: np.ndarray,
    b: np.ndarray,
    *,
    ncc_threshold: float = 0.6,
    name_a: str = "a",
    name_b: str = "b",
) -> ComparisonResult:
    """Compare two in-memory frames."""
    report = similarity_report(a, b)
    return ComparisonResult(
        file_a=name_a,
        file_b=name_b,
        ncc=report["ncc"],
        mse=report["mse"],
        psnr=report["psnr"],
        hist_intersection=report["hist_intersection"],
        ssim=report["ssim"],
        similar=report["ncc"] >= ncc_threshold,
    )


def compare_image_files(
    path_a: str,
    path_b: str,
    *,
    ncc_threshold: float = 0.6,
) -> ComparisonResult:
    """Load two ``.npy`` frames from disk and compare them."""
    for path in (path_a, path_b):
        if not os.path.isfile(path):
            raise ApplicationError(f"image file not found: {path}")
    a = np.load(path_a)
    b = np.load(path_b)
    return compare_images(
        a,
        b,
        ncc_threshold=ncc_threshold,
        name_a=os.path.basename(path_a),
        name_b=os.path.basename(path_b),
    )
