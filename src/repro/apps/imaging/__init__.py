"""Light-source image analysis: the paper's ALS workload.

"The data consists of a set of images. The simple program we use here
basically compares images to see similarity between the images. The
image analysis requires two files for every execution." (§IV-A)

- :mod:`generate` — synthetic beamline-style diffraction images
  (concentric rings + Bragg-like peaks + Poisson noise),
- :mod:`similarity` — pairwise metrics (normalized cross-correlation,
  histogram intersection, MSE/PSNR, simplified SSIM),
- :mod:`pipeline` — the two-input "program" FRIEDA runs: load two
  image files, compute similarity, emit a verdict.
"""

from repro.apps.imaging.generate import BeamlineImageConfig, generate_image, write_image_dataset
from repro.apps.imaging.similarity import (
    histogram_intersection,
    mean_squared_error,
    normalized_cross_correlation,
    psnr,
    similarity_report,
    ssim_global,
)
from repro.apps.imaging.pipeline import ComparisonResult, compare_image_files, compare_images
from repro.apps.imaging.analysis import (
    RadialProfile,
    find_rings,
    radial_profile,
    ring_similarity,
)

__all__ = [
    "BeamlineImageConfig",
    "generate_image",
    "write_image_dataset",
    "histogram_intersection",
    "mean_squared_error",
    "normalized_cross_correlation",
    "psnr",
    "similarity_report",
    "ssim_global",
    "ComparisonResult",
    "compare_image_files",
    "compare_images",
    "RadialProfile",
    "find_rings",
    "radial_profile",
    "ring_similarity",
]
