"""Quantitative beamline-frame analysis: radial profiles and ring finding.

Beyond whole-frame similarity, real light-source pipelines extract the
*radial intensity profile* (azimuthal average as a function of radius —
the 1-D powder-diffraction pattern) and locate its peaks (the ring
radii). These give the image workload a second, physically meaningful
program to run under FRIEDA, and make the synthetic generator testable
against ground truth: the rings it draws must be the peaks we recover.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ApplicationError


@dataclass(frozen=True)
class RadialProfile:
    """Azimuthally averaged intensity vs radius."""

    radii: np.ndarray  # bin centers, pixels
    intensity: np.ndarray  # mean counts per bin

    def __post_init__(self) -> None:
        if self.radii.shape != self.intensity.shape:
            raise ApplicationError("radii/intensity shape mismatch")


def radial_profile(image: np.ndarray, *, num_bins: int | None = None) -> RadialProfile:
    """Compute the azimuthal average around the frame center.

    Fully vectorized: pixels are binned by integer radius with
    ``np.bincount`` — no Python loop over pixels.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ApplicationError("radial_profile needs a 2-D image")
    ny, nx = image.shape
    cy, cx = (ny - 1) / 2.0, (nx - 1) / 2.0
    yy, xx = np.mgrid[0:ny, 0:nx]
    radius = np.hypot(xx - cx, yy - cy)
    max_radius = int(np.floor(radius.max()))
    bins = num_bins or max_radius + 1
    if bins < 2:
        raise ApplicationError("need at least 2 radial bins")
    indices = np.minimum((radius / (max_radius + 1e-12) * bins).astype(np.intp), bins - 1)
    sums = np.bincount(indices.ravel(), weights=image.ravel(), minlength=bins)
    counts = np.bincount(indices.ravel(), minlength=bins)
    intensity = np.divide(sums, counts, out=np.zeros_like(sums), where=counts > 0)
    centers = (np.arange(bins) + 0.5) * (max_radius + 1e-12) / bins
    return RadialProfile(radii=centers, intensity=intensity)


def find_rings(
    profile: RadialProfile,
    *,
    min_prominence: float = 0.1,
    min_separation: float = 4.0,
) -> list[float]:
    """Locate ring radii as prominent local maxima of the profile.

    ``min_prominence`` is relative to the profile's dynamic range;
    peaks closer than ``min_separation`` pixels collapse into the
    stronger one. Returns radii sorted ascending.
    """
    if not 0 < min_prominence <= 1:
        raise ApplicationError("min_prominence must be in (0, 1]")
    intensity = profile.intensity
    if intensity.size < 3:
        return []
    lo, hi = float(intensity.min()), float(intensity.max())
    dynamic = hi - lo
    if dynamic <= 0:
        return []
    threshold = lo + min_prominence * dynamic
    # Local maxima: strictly above both neighbours and the threshold.
    inner = intensity[1:-1]
    is_peak = (inner > intensity[:-2]) & (inner >= intensity[2:]) & (inner > threshold)
    candidates = [
        (float(profile.radii[i + 1]), float(inner[i])) for i in np.nonzero(is_peak)[0]
    ]
    # Greedy non-maximum suppression by separation.
    candidates.sort(key=lambda rv: -rv[1])
    kept: list[float] = []
    for radius, _value in candidates:
        if all(abs(radius - other) >= min_separation for other in kept):
            kept.append(radius)
    return sorted(kept)


def ring_similarity(radii_a: list[float], radii_b: list[float], *, tolerance: float = 5.0) -> float:
    """Fraction of rings that match between two frames (symmetric).

    Two rings match when their radii differ by at most ``tolerance``
    pixels. Returns matched_pairs / max(len(a), len(b)); 1.0 for
    identical ring systems, 1.0 also for two ringless frames.
    """
    if not radii_a and not radii_b:
        return 1.0
    if not radii_a or not radii_b:
        return 0.0
    remaining = list(radii_b)
    matches = 0
    for radius in radii_a:
        best = None
        for other in remaining:
            if abs(radius - other) <= tolerance:
                if best is None or abs(radius - other) < abs(radius - best):
                    best = other
        if best is not None:
            remaining.remove(best)
            matches += 1
    return matches / max(len(radii_a), len(radii_b))
