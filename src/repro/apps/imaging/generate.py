"""Synthetic beamline (diffraction) image generation.

Real ALS beamline frames are unavailable; these synthetic frames keep
the properties the workload depends on: large 2-D arrays (megabytes per
file), structured signal (concentric diffraction rings and bright
Bragg-like peaks) plus shot noise, and controllable similarity between
frames (consecutive frames of one "sample" share ring structure).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.errors import ApplicationError
from repro.util.seeding import make_rng


@dataclass(frozen=True)
class BeamlineImageConfig:
    """Parameters of the synthetic diffraction frame generator."""

    size: int = 512
    num_rings: int = 6
    ring_width: float = 4.0
    num_peaks: int = 24
    peak_sigma: float = 2.5
    background: float = 40.0
    signal: float = 400.0
    #: Poisson shot noise toggle (dominant noise source on detectors).
    shot_noise: bool = True

    def __post_init__(self) -> None:
        if self.size < 16:
            raise ApplicationError("image size must be >= 16")
        if self.num_rings < 0 or self.num_peaks < 0:
            raise ApplicationError("ring/peak counts must be non-negative")


def generate_image(
    config: BeamlineImageConfig,
    *,
    sample_seed: int = 0,
    frame: int = 0,
) -> np.ndarray:
    """One detector frame as float32.

    ``sample_seed`` fixes the ring radii and peak layout (the
    "sample"); ``frame`` perturbs peak intensities and adds fresh shot
    noise, so frames of the same sample are similar but not identical —
    like consecutive exposures on a beamline.
    """
    structure_rng = make_rng(sample_seed, "als-structure")
    frame_rng = make_rng(sample_seed, "als-frame", frame)
    n = config.size
    yy, xx = np.mgrid[0:n, 0:n].astype(np.float32)
    cx = cy = (n - 1) / 2.0
    radius = np.hypot(xx - cx, yy - cy)

    image = np.full((n, n), config.background, dtype=np.float32)
    # Concentric diffraction rings (Gaussian profiles at fixed radii).
    max_r = n / 2.0
    ring_radii = np.sort(structure_rng.uniform(0.15 * max_r, 0.95 * max_r, config.num_rings))
    ring_gains = structure_rng.uniform(0.3, 1.0, config.num_rings)
    for r0, gain in zip(ring_radii, ring_gains):
        image += (
            config.signal
            * gain
            * np.exp(-0.5 * ((radius - r0) / config.ring_width) ** 2)
        ).astype(np.float32)
    # Bragg-like peaks on the rings; intensities flicker per frame.
    for _ in range(config.num_peaks):
        ring = int(structure_rng.integers(max(config.num_rings, 1)))
        r0 = ring_radii[ring] if config.num_rings else 0.3 * max_r
        theta = structure_rng.uniform(0, 2 * np.pi)
        px = cx + r0 * np.cos(theta)
        py = cy + r0 * np.sin(theta)
        gain = float(frame_rng.uniform(1.0, 4.0))
        dist2 = (xx - px) ** 2 + (yy - py) ** 2
        image += (config.signal * gain * np.exp(-dist2 / (2 * config.peak_sigma**2))).astype(
            np.float32
        )
    if config.shot_noise:
        image = frame_rng.poisson(np.maximum(image, 0.0)).astype(np.float32)
    return image


def write_image_dataset(
    directory: str,
    count: int,
    *,
    config: BeamlineImageConfig | None = None,
    frames_per_sample: int = 2,
    seed: int = 0,
) -> list[str]:
    """Write ``count`` frames as .npy files; returns their paths.

    Frames are grouped into samples of ``frames_per_sample`` consecutive
    files, so the ``pairwise_adjacent`` grouping compares frames of the
    same sample — the realistic beamline comparison.
    """
    if count < 0:
        raise ApplicationError("count must be non-negative")
    config = config or BeamlineImageConfig()
    os.makedirs(directory, exist_ok=True)
    paths = []
    width = max(4, len(str(max(count - 1, 0))))
    for i in range(count):
        sample = i // max(frames_per_sample, 1)
        frame = i % max(frames_per_sample, 1)
        image = generate_image(config, sample_seed=seed * 100003 + sample, frame=frame)
        path = os.path.join(directory, f"img{i:0{width}d}.npy")
        np.save(path, image)
        paths.append(path)
    return paths
