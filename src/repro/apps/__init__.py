"""The paper's two evaluation applications, implemented from scratch.

- :mod:`repro.apps.blast` — a miniature BLAST (protein sequence search:
  FASTA I/O, BLOSUM62, k-mer seeding with neighbourhood expansion,
  ungapped X-drop extension, banded gapped alignment, Karlin–Altschul
  E-values). This is the compute-heavy, common-database workload.
- :mod:`repro.apps.imaging` — a light-source image-analysis pipeline
  (synthetic diffraction images + pairwise similarity metrics). This is
  the large-file, cheap-compute workload.
"""
