"""Mini-BLAST: protein sequence search against a database.

BLAST in the paper is the archetypal *compute-dominated, common-data*
workload: "comparing n sequences to a database containing m sequences
require approx (n*m) comparisons" (§IV-B). This package implements the
real algorithmic pipeline so per-task compute cost genuinely varies
with match structure — the property that makes real-time partitioning
win through load balancing.

Pipeline: :mod:`fasta` I/O → :mod:`scoring` (BLOSUM62) → :mod:`seed`
(k-mer index + neighbourhood words) → :mod:`extend` (X-drop ungapped,
banded gapped) → :mod:`search` (driver + Karlin–Altschul E-values).
"""

from repro.apps.blast.fasta import SequenceRecord, parse_fasta, read_fasta, write_fasta
from repro.apps.blast.scoring import BLOSUM62, PROTEIN_ALPHABET, encode_sequence, score_pair
from repro.apps.blast.seed import KmerIndex, neighborhood_words
from repro.apps.blast.extend import (
    AlignmentResult,
    banded_gapped_extend,
    ungapped_extend,
)
from repro.apps.blast.search import BlastDatabase, BlastHit, BlastParams, blast_search
from repro.apps.blast.generate import synthetic_database, synthetic_queries
from repro.apps.blast.mask import SegParams, low_complexity_mask, mask_sequence, masked_fraction
from repro.apps.blast.align import TracedAlignment, smith_waterman
from repro.apps.blast.report import tabular_report, trace_hit

__all__ = [
    "SequenceRecord",
    "parse_fasta",
    "read_fasta",
    "write_fasta",
    "BLOSUM62",
    "PROTEIN_ALPHABET",
    "encode_sequence",
    "score_pair",
    "KmerIndex",
    "neighborhood_words",
    "AlignmentResult",
    "ungapped_extend",
    "banded_gapped_extend",
    "BlastDatabase",
    "BlastHit",
    "BlastParams",
    "blast_search",
    "synthetic_database",
    "synthetic_queries",
    "SegParams",
    "low_complexity_mask",
    "mask_sequence",
    "masked_fraction",
    "TracedAlignment",
    "smith_waterman",
    "tabular_report",
    "trace_hit",
]
