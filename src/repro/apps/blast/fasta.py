"""FASTA parsing and writing.

Plain-text FASTA is the interchange format both for the synthetic
database and for the query files the workers receive; parsing is
strict about structure but tolerant of wrapping and blank lines.
"""

from __future__ import annotations

import io
import os
from dataclasses import dataclass
from typing import Iterable, Iterator, TextIO

from repro.errors import ApplicationError


@dataclass(frozen=True)
class SequenceRecord:
    """One FASTA record: ``>id description`` + residues."""

    seq_id: str
    description: str
    residues: str

    def __len__(self) -> int:
        return len(self.residues)

    @property
    def header(self) -> str:
        if self.description:
            return f"{self.seq_id} {self.description}"
        return self.seq_id


def parse_fasta(text: str | TextIO) -> list[SequenceRecord]:
    """Parse FASTA text into records.

    Raises :class:`ApplicationError` on residues before the first
    header or on records with empty sequences.
    """
    stream = io.StringIO(text) if isinstance(text, str) else text
    records: list[SequenceRecord] = []
    seq_id = ""
    description = ""
    chunks: list[str] = []
    started = False

    def flush() -> None:
        if not started:
            return
        residues = "".join(chunks).upper()
        if not residues:
            raise ApplicationError(f"FASTA record {seq_id!r} has no residues")
        records.append(SequenceRecord(seq_id, description, residues))

    for raw in stream:
        line = raw.strip()
        if not line:
            continue
        if line.startswith(">"):
            flush()
            header = line[1:].strip()
            if not header:
                raise ApplicationError("FASTA header with no identifier")
            parts = header.split(None, 1)
            seq_id = parts[0]
            description = parts[1] if len(parts) > 1 else ""
            chunks = []
            started = True
        else:
            if not started:
                raise ApplicationError("FASTA residues before any header line")
            chunks.append(line)
    flush()
    return records


def read_fasta(path: str) -> list[SequenceRecord]:
    """Parse a FASTA file from disk."""
    if not os.path.isfile(path):
        raise ApplicationError(f"FASTA file not found: {path}")
    with open(path, "r", encoding="utf-8") as fh:
        return parse_fasta(fh)


def write_fasta(
    records: Iterable[SequenceRecord],
    path_or_stream: str | TextIO,
    *,
    width: int = 60,
) -> None:
    """Write records as wrapped FASTA."""
    if width < 1:
        raise ApplicationError("FASTA wrap width must be >= 1")

    def emit(stream: TextIO) -> None:
        for record in records:
            stream.write(f">{record.header}\n")
            residues = record.residues
            for start in range(0, len(residues), width):
                stream.write(residues[start : start + width] + "\n")

    if isinstance(path_or_stream, str):
        with open(path_or_stream, "w", encoding="utf-8") as fh:
            emit(fh)
    else:
        emit(path_or_stream)


def iter_fasta(path: str, batch_size: int = 1) -> Iterator[list[SequenceRecord]]:
    """Stream records from a FASTA file in batches (memory-bounded)."""
    if batch_size < 1:
        raise ApplicationError("batch_size must be >= 1")
    batch: list[SequenceRecord] = []
    for record in read_fasta(path):
        batch.append(record)
        if len(batch) >= batch_size:
            yield batch
            batch = []
    if batch:
        yield batch
