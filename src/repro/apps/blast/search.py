"""The BLAST search driver: seeds → extensions → ranked hits.

:class:`BlastDatabase` packages the indexed subject sequences (built
once, reused by every query — this object is the "large database that
needs to be available on every node", §IV-B). :func:`blast_search`
runs one query through the full pipeline and reports
Karlin–Altschul-style E-values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


from repro.apps.blast.extend import AlignmentResult, banded_gapped_extend, ungapped_extend
from repro.apps.blast.fasta import SequenceRecord
from repro.apps.blast.scoring import encode_sequence
from repro.apps.blast.seed import KmerIndex, find_seed_hits
from repro.errors import ApplicationError


@dataclass(frozen=True)
class BlastParams:
    """Search parameters (NCBI protein defaults)."""

    k: int = 3
    seed_threshold: int = 11
    x_drop: int = 7
    #: Ungapped score that triggers the gapped pass.
    gapped_trigger: int = 22
    gap_open: int = 11
    gap_extend: int = 1
    band: int = 12
    max_hits: int = 25
    e_value_cutoff: float = 10.0
    #: Karlin–Altschul parameters for BLOSUM62 with 11/1 gaps.
    ka_lambda: float = 0.267
    ka_kappa: float = 0.041
    #: Two-hit heuristic (gapped-BLAST refinement): only extend a
    #: diagonal with two non-overlapping word hits within
    #: ``two_hit_window`` residues — prunes most decoy extensions.
    two_hit: bool = False
    two_hit_window: int = 40


@dataclass(frozen=True)
class BlastHit:
    """One reported alignment against a database sequence."""

    query_id: str
    subject_id: str
    score: int
    e_value: float
    bit_score: float
    alignment: AlignmentResult


class BlastDatabase:
    """Indexed subject sequences."""

    def __init__(self, records: Sequence[SequenceRecord], params: BlastParams | None = None):
        if not records:
            raise ApplicationError("empty BLAST database")
        self.params = params or BlastParams()
        self.records = list(records)
        self.encoded = [encode_sequence(r.residues) for r in self.records]
        self.index = KmerIndex(self.params.k)
        for enc in self.encoded:
            self.index.add_sequence(enc)
        self.total_residues = self.index.total_residues

    def __len__(self) -> int:
        return len(self.records)


def _e_value(score: int, query_len: int, db_residues: int, params: BlastParams) -> float:
    """Karlin–Altschul E = K·m·n·e^(−λS)."""
    return params.ka_kappa * query_len * db_residues * math.exp(-params.ka_lambda * score)


def _bit_score(score: int, params: BlastParams) -> float:
    return (params.ka_lambda * score - math.log(params.ka_kappa)) / math.log(2.0)


def _two_hit_seeds(
    seeds: list[tuple[int, int, int]],
    k: int,
    window: int,
) -> list[tuple[int, int, int]]:
    """Keep one seed per diagonal that has a qualifying second hit.

    Gapped-BLAST's refinement: an extension is only attempted where two
    non-overlapping word hits fall on the same (subject, diagonal)
    within ``window`` residues. Returns the *second* hit of each
    qualifying pair (extension proceeds from there, as in NCBI BLAST).
    """
    by_diagonal: dict[tuple[int, int], list[tuple[int, int]]] = {}
    for q_off, subject_id, s_off in seeds:
        by_diagonal.setdefault((subject_id, s_off - q_off), []).append((q_off, s_off))
    qualified: list[tuple[int, int, int]] = []
    for (subject_id, _diag), positions in by_diagonal.items():
        positions.sort()
        anchor: int | None = None
        for q_off, s_off in positions:
            if anchor is None:
                anchor = q_off
                continue
            gap = q_off - anchor
            if gap < k:
                # Overlapping hit: keep the earlier anchor (NCBI
                # semantics) so a dense identity run still pairs.
                continue
            if gap <= window:
                qualified.append((q_off, subject_id, s_off))
                break  # one extension per diagonal
            # Too far apart: this hit becomes the new anchor.
            anchor = q_off
    return qualified


def blast_search(
    query: SequenceRecord,
    database: BlastDatabase,
    params: BlastParams | None = None,
    *,
    stats: dict | None = None,
) -> list[BlastHit]:
    """Search one query against the database; hits sorted by E-value.

    Per subject sequence only the best-scoring alignment is reported
    (single-HSP policy — keeps the driver simple while preserving the
    ranking behaviour the workload depends on). Pass a dict as
    ``stats`` to receive counters (seeds, extensions, gapped passes).
    """
    params = params or database.params
    encoded = encode_sequence(query.residues)
    if encoded.size < params.k:
        return []
    seeds = find_seed_hits(encoded, database.index, params.seed_threshold)
    if stats is not None:
        stats["seeds"] = len(seeds)
    if params.two_hit:
        seeds = _two_hit_seeds(seeds, params.k, params.two_hit_window)
    # Deduplicate seeds by (subject, diagonal): one extension per
    # diagonal region is the classic optimization.
    best_per_subject: dict[int, AlignmentResult] = {}
    seen_diagonals: set[tuple[int, int]] = set()
    extensions = 0
    gapped_passes = 0
    for q_off, subject_id, s_off in seeds:
        diagonal = (subject_id, s_off - q_off)
        if diagonal in seen_diagonals:
            continue
        seen_diagonals.add(diagonal)
        extensions += 1
        subject = database.encoded[subject_id]
        hsp = ungapped_extend(
            encoded, subject, q_off, s_off, params.k, x_drop=params.x_drop
        )
        if hsp.score >= params.gapped_trigger:
            gapped_passes += 1
            hsp = banded_gapped_extend(
                encoded,
                subject,
                hsp,
                band=params.band,
                gap_open=params.gap_open,
                gap_extend=params.gap_extend,
            )
        current = best_per_subject.get(subject_id)
        if current is None or hsp.score > current.score:
            best_per_subject[subject_id] = hsp
    if stats is not None:
        stats["extensions"] = extensions
        stats["gapped_passes"] = gapped_passes
    hits: list[BlastHit] = []
    for subject_id, alignment in best_per_subject.items():
        e_value = _e_value(alignment.score, encoded.size, database.total_residues, params)
        if e_value > params.e_value_cutoff:
            continue
        hits.append(
            BlastHit(
                query_id=query.seq_id,
                subject_id=database.records[subject_id].seq_id,
                score=alignment.score,
                e_value=e_value,
                bit_score=_bit_score(alignment.score, params),
                alignment=alignment,
            )
        )
    hits.sort(key=lambda h: (h.e_value, -h.score))
    return hits[: params.max_hits]


def blast_search_many(
    queries: Sequence[SequenceRecord],
    database: BlastDatabase,
    params: BlastParams | None = None,
) -> dict[str, list[BlastHit]]:
    """Search a batch of queries (the per-task unit in the examples)."""
    return {q.seq_id: blast_search(q, database, params) for q in queries}
