"""k-mer seeding: the word index and neighbourhood expansion.

BLAST's speed comes from only extending around *seed hits*: database
positions whose k-mer scores at least ``threshold`` against some query
k-mer under BLOSUM62. This module builds the database word index once
(shared across all queries — the "common data" of the workload) and
computes, per query, its high-scoring neighbourhood words with a fully
vectorized score over all 20^k candidate words.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

import numpy as np

from repro.apps.blast.scoring import AMINO_ACIDS, BLOSUM62, PROTEIN_ALPHABET
from repro.errors import ApplicationError

#: Indices (into PROTEIN_ALPHABET) of the 20 unambiguous residues.
_AA_INDICES = np.array([PROTEIN_ALPHABET.index(ch) for ch in AMINO_ACIDS], dtype=np.uint8)


def _word_to_code(word: np.ndarray, k: int) -> int:
    """Pack an encoded k-mer into one integer (base-24 positional code)."""
    code = 0
    for idx in word[:k]:
        code = code * 24 + int(idx)
    return code


def _all_words(k: int) -> np.ndarray:
    """All 20^k unambiguous words as an (20^k, k) index array."""
    grids = np.meshgrid(*([_AA_INDICES] * k), indexing="ij")
    return np.stack([g.ravel() for g in grids], axis=1)


class KmerIndex:
    """Word → positions index over a set of database sequences."""

    def __init__(self, k: int = 3):
        if not 1 <= k <= 5:
            raise ApplicationError(f"k must be in [1, 5], got {k}")
        self.k = k
        #: word code → list of (sequence index, offset) pairs.
        self._table: dict[int, list[tuple[int, int]]] = defaultdict(list)
        self.num_sequences = 0
        self.total_residues = 0

    def add_sequence(self, encoded: np.ndarray) -> int:
        """Index one encoded sequence; returns its sequence id."""
        seq_id = self.num_sequences
        self.num_sequences += 1
        self.total_residues += int(encoded.size)
        k = self.k
        for offset in range(encoded.size - k + 1):
            code = _word_to_code(encoded[offset : offset + k], k)
            self._table[code].append((seq_id, offset))
        return seq_id

    def lookup(self, code: int) -> Sequence[tuple[int, int]]:
        """Database positions for a word code (empty when unseen)."""
        return self._table.get(code, ())

    def __len__(self) -> int:
        return len(self._table)


def neighborhood_words(
    query: np.ndarray,
    k: int = 3,
    threshold: int = 11,
) -> list[tuple[int, int]]:
    """High-scoring word hits for every query position.

    Returns ``(query_offset, word_code)`` pairs: each word scores at
    least ``threshold`` against the query k-mer starting at
    ``query_offset``. BLAST's default for proteins is W=3, T=11.

    Vectorized: for each query offset the scores of all 20^k candidate
    words are computed as a sum of k table lookups (one (20^k,) add per
    position) — no Python loop over the 8000 words.
    """
    if query.size < k:
        return []
    words = _all_words(k)  # (W, k)
    # Per-position score contribution: BLOSUM62[query[pos+j], words[:, j]]
    out: list[tuple[int, int]] = []
    # Precompute word codes once.
    codes = np.zeros(words.shape[0], dtype=np.int64)
    for j in range(k):
        codes = codes * 24 + words[:, j]
    for offset in range(query.size - k + 1):
        scores = np.zeros(words.shape[0], dtype=np.int32)
        for j in range(k):
            scores += BLOSUM62[int(query[offset + j])][words[:, j]]
        hits = np.nonzero(scores >= threshold)[0]
        for word_index in hits:
            out.append((offset, int(codes[word_index])))
    return out


def find_seed_hits(
    query: np.ndarray,
    index: KmerIndex,
    threshold: int = 11,
) -> list[tuple[int, int, int]]:
    """All (query_offset, db_sequence_id, db_offset) seed hits."""
    hits: list[tuple[int, int, int]] = []
    for q_offset, code in neighborhood_words(query, index.k, threshold):
        for seq_id, d_offset in index.lookup(code):
            hits.append((q_offset, seq_id, d_offset))
    return hits
