"""Full local alignment with traceback (Smith–Waterman, affine gaps).

The search driver (:mod:`repro.apps.blast.search`) only needs scores;
this module produces the *alignment itself* — the aligned query/subject
strings with gaps, the match line, and identity statistics — for the
hits a user wants to inspect. Quadratic DP with full traceback, meant
for the handful of reported hits, not the seeding hot path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.blast.scoring import BLOSUM62, decode_sequence, encode_sequence
from repro.errors import ApplicationError

#: Traceback moves.
_STOP, _DIAG, _UP, _LEFT = 0, 1, 2, 3


@dataclass(frozen=True)
class TracedAlignment:
    """A local alignment with explicit gapped strings."""

    score: int
    query_start: int
    query_end: int  # exclusive
    subject_start: int
    subject_end: int  # exclusive
    aligned_query: str
    aligned_subject: str

    @property
    def length(self) -> int:
        return len(self.aligned_query)

    @property
    def identities(self) -> int:
        return sum(
            1 for a, b in zip(self.aligned_query, self.aligned_subject) if a == b and a != "-"
        )

    @property
    def identity_fraction(self) -> float:
        if self.length == 0:
            return 0.0
        return self.identities / self.length

    @property
    def gaps(self) -> int:
        return self.aligned_query.count("-") + self.aligned_subject.count("-")

    @property
    def midline(self) -> str:
        """BLAST-style match line: letter for identity, ``+`` for a
        positive substitution score, space otherwise."""
        out = []
        for a, b in zip(self.aligned_query, self.aligned_subject):
            if a == b and a != "-":
                out.append(a)
            elif a != "-" and b != "-" and _pair_score(a, b) > 0:
                out.append("+")
            else:
                out.append(" ")
        return "".join(out)

    def pretty(self, *, width: int = 60) -> str:
        """Multi-line rendering like BLAST's pairwise output."""
        lines = [
            f"Score = {self.score}, Identities = {self.identities}/{self.length} "
            f"({self.identity_fraction:.0%}), Gaps = {self.gaps}/{self.length}"
        ]
        q_pos, s_pos = self.query_start, self.subject_start
        for offset in range(0, self.length, width):
            q_chunk = self.aligned_query[offset : offset + width]
            m_chunk = self.midline[offset : offset + width]
            s_chunk = self.aligned_subject[offset : offset + width]
            q_step = sum(1 for c in q_chunk if c != "-")
            s_step = sum(1 for c in s_chunk if c != "-")
            lines.append(f"Query  {q_pos + 1:>5}  {q_chunk}  {q_pos + q_step}")
            lines.append(f"              {m_chunk}")
            lines.append(f"Sbjct  {s_pos + 1:>5}  {s_chunk}  {s_pos + s_step}")
            q_pos += q_step
            s_pos += s_step
        return "\n".join(lines)


def _pair_score(a: str, b: str) -> int:
    return int(BLOSUM62[encode_sequence(a)[0], encode_sequence(b)[0]])


def smith_waterman(
    query: str | np.ndarray,
    subject: str | np.ndarray,
    *,
    gap_open: int = 11,
    gap_extend: int = 1,
) -> TracedAlignment:
    """Optimal local alignment with affine gaps and full traceback.

    Gotoh's three-state DP: ``H`` (match), ``E`` (gap in query),
    ``F`` (gap in subject). Opening a gap costs ``gap_open``, each
    further residue ``gap_extend`` (NCBI's 11/1 convention counts the
    first gapped residue inside ``gap_open + gap_extend``).
    """
    if gap_open < 0 or gap_extend < 0:
        raise ApplicationError("gap penalties must be non-negative")
    q = encode_sequence(query) if isinstance(query, str) else query
    s = encode_sequence(subject) if isinstance(subject, str) else subject
    n, m = q.size, s.size
    if n == 0 or m == 0:
        return TracedAlignment(0, 0, 0, 0, 0, "", "")
    neg = -(10**9)
    open_cost = gap_open + gap_extend
    H = np.zeros((n + 1, m + 1), dtype=np.int64)
    E = np.full((n + 1, m + 1), neg, dtype=np.int64)
    F = np.full((n + 1, m + 1), neg, dtype=np.int64)
    move = np.zeros((n + 1, m + 1), dtype=np.uint8)
    best = 0
    best_pos = (0, 0)
    sub_matrix = BLOSUM62.astype(np.int64)
    for i in range(1, n + 1):
        qi = int(q[i - 1])
        row_sub = sub_matrix[qi]
        for j in range(1, m + 1):
            E[i, j] = max(E[i, j - 1] - gap_extend, H[i, j - 1] - open_cost)
            F[i, j] = max(F[i - 1, j] - gap_extend, H[i - 1, j] - open_cost)
            diag = H[i - 1, j - 1] + row_sub[int(s[j - 1])]
            h = max(0, diag, E[i, j], F[i, j])
            H[i, j] = h
            if h == 0:
                move[i, j] = _STOP
            elif h == diag:
                move[i, j] = _DIAG
            elif h == E[i, j]:
                move[i, j] = _LEFT
            else:
                move[i, j] = _UP
            if h > best:
                best = int(h)
                best_pos = (i, j)
    if best == 0:
        return TracedAlignment(0, 0, 0, 0, 0, "", "")
    # Traceback: explicit three-state machine (Gotoh). In state "H" the
    # recorded move decides; in "E"/"F" we extend the gap run until the
    # cell where the run was opened from H.
    i, j = best_pos
    q_out: list[str] = []
    s_out: list[str] = []
    state = "H"
    while i > 0 and j > 0:
        if state == "H":
            step = move[i, j]
            if step == _STOP:
                break
            if step == _DIAG:
                q_out.append(decode_sequence(q[i - 1 : i]))
                s_out.append(decode_sequence(s[j - 1 : j]))
                i -= 1
                j -= 1
            elif step == _LEFT:
                state = "E"
            else:
                state = "F"
        elif state == "E":
            # Gap in query: consume one subject residue, then decide
            # whether this E cell extended a longer run or opened here.
            q_out.append("-")
            s_out.append(decode_sequence(s[j - 1 : j]))
            opened_from_h = E[i, j] == H[i, j - 1] - open_cost
            extended = E[i, j] == E[i, j - 1] - gap_extend
            j -= 1
            if opened_from_h or not extended:
                state = "H"
        else:  # state == "F": gap in subject
            q_out.append(decode_sequence(q[i - 1 : i]))
            s_out.append("-")
            opened_from_h = F[i, j] == H[i - 1, j] - open_cost
            extended = F[i, j] == F[i - 1, j] - gap_extend
            i -= 1
            if opened_from_h or not extended:
                state = "H"
    return TracedAlignment(
        score=best,
        query_start=i,
        query_end=best_pos[0],
        subject_start=j,
        subject_end=best_pos[1],
        aligned_query="".join(reversed(q_out)),
        aligned_subject="".join(reversed(s_out)),
    )
