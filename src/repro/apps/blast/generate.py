"""Synthetic protein data generation.

The paper's 7500 real protein sequences and reference database are not
available; these generators build statistically similar FASTA data:
database sequences drawn from amino-acid background frequencies, and
queries that are *mutated fragments* of database sequences (with
configurable probability), so searches find genuine homologs and
per-query compute cost varies with match structure — the property
behind BLAST's load imbalance in the paper.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.apps.blast.fasta import SequenceRecord
from repro.apps.blast.scoring import AMINO_ACIDS
from repro.errors import ApplicationError
from repro.util.seeding import make_rng

#: Robinson & Robinson style background amino-acid frequencies.
_BACKGROUND = np.array(
    [
        0.078,  # A
        0.051,  # R
        0.045,  # N
        0.054,  # D
        0.019,  # C
        0.043,  # Q
        0.063,  # E
        0.074,  # G
        0.022,  # H
        0.052,  # I
        0.091,  # L
        0.057,  # K
        0.022,  # M
        0.039,  # F
        0.052,  # P
        0.071,  # S
        0.058,  # T
        0.013,  # W
        0.032,  # Y
        0.064,  # V
    ]
)
_BACKGROUND = _BACKGROUND / _BACKGROUND.sum()


def _random_sequence(rng: np.random.Generator, length: int) -> str:
    indices = rng.choice(len(AMINO_ACIDS), size=length, p=_BACKGROUND)
    return "".join(AMINO_ACIDS[i] for i in indices)


def synthetic_database(
    num_sequences: int,
    *,
    mean_length: int = 350,
    seed: int = 0,
) -> list[SequenceRecord]:
    """Background-frequency database sequences (lengths ~ gamma)."""
    if num_sequences < 1:
        raise ApplicationError("database needs at least one sequence")
    rng = make_rng(seed, "blast-db")
    records = []
    for i in range(num_sequences):
        length = max(30, int(rng.gamma(shape=4.0, scale=mean_length / 4.0)))
        records.append(
            SequenceRecord(f"db{i:05d}", f"synthetic subject {i}", _random_sequence(rng, length))
        )
    return records


def mutate_fragment(
    residues: str,
    rng: np.random.Generator,
    *,
    substitution_rate: float = 0.15,
    indel_rate: float = 0.02,
) -> str:
    """Point-mutate and indel a sequence fragment (homolog simulation)."""
    out: list[str] = []
    for ch in residues:
        r = rng.random()
        if r < indel_rate / 2:
            continue  # deletion
        if r < indel_rate:
            out.append(AMINO_ACIDS[int(rng.integers(len(AMINO_ACIDS)))])  # insertion
        if rng.random() < substitution_rate:
            out.append(AMINO_ACIDS[int(rng.integers(len(AMINO_ACIDS)))])
        else:
            out.append(ch)
    return "".join(out) if out else residues[:1]


def synthetic_queries(
    database: Sequence[SequenceRecord],
    num_queries: int,
    *,
    homolog_fraction: float = 0.6,
    mean_length: int = 240,
    seed: int = 1,
) -> list[SequenceRecord]:
    """Queries: a mix of mutated database fragments and random decoys.

    ``homolog_fraction`` of queries derive from database sequences (and
    therefore hit), the rest are background noise (and mostly miss) —
    giving the heavy-tailed per-query cost distribution of §IV-B.
    """
    if not 0.0 <= homolog_fraction <= 1.0:
        raise ApplicationError("homolog_fraction must be in [0, 1]")
    rng = make_rng(seed, "blast-queries")
    queries = []
    for i in range(num_queries):
        length = max(20, int(rng.gamma(shape=4.0, scale=mean_length / 4.0)))
        if database and rng.random() < homolog_fraction:
            source = database[int(rng.integers(len(database)))]
            if len(source.residues) > length:
                start = int(rng.integers(len(source.residues) - length + 1))
                fragment = source.residues[start : start + length]
            else:
                fragment = source.residues
            residues = mutate_fragment(fragment, rng)
            kind = "homolog"
        else:
            residues = _random_sequence(rng, length)
            kind = "decoy"
        queries.append(SequenceRecord(f"q{i:05d}", f"synthetic {kind}", residues))
    return queries
