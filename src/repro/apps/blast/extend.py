"""Seed extension: X-drop ungapped extension and banded gapped alignment.

Around each seed hit BLAST first runs a cheap *ungapped* extension in
both directions, abandoning a direction once the running score drops
``x_drop`` below the best seen. Seeds whose ungapped HSP clears a
trigger score get the expensive *gapped* pass: an affine-gap
Smith–Waterman restricted to a diagonal band around the HSP.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.blast.scoring import BLOSUM62
from repro.errors import ApplicationError


@dataclass(frozen=True)
class AlignmentResult:
    """One (possibly gapped) local alignment."""

    score: int
    query_start: int
    query_end: int  # exclusive
    subject_start: int
    subject_end: int  # exclusive
    gapped: bool = False

    @property
    def query_span(self) -> int:
        return self.query_end - self.query_start

    @property
    def subject_span(self) -> int:
        return self.subject_end - self.subject_start


def ungapped_extend(
    query: np.ndarray,
    subject: np.ndarray,
    q_seed: int,
    s_seed: int,
    k: int,
    *,
    x_drop: int = 7,
) -> AlignmentResult:
    """Extend a k-word seed along its diagonal with X-drop cutoff.

    Returns the best HSP containing the seed. Matches NCBI semantics:
    extension in each direction stops when the running score falls more
    than ``x_drop`` below the best score seen in that direction.
    """
    if q_seed < 0 or s_seed < 0 or q_seed + k > query.size or s_seed + k > subject.size:
        raise ApplicationError("seed outside sequence bounds")
    seed_score = int(
        BLOSUM62[
            query[q_seed : q_seed + k].astype(np.intp),
            subject[s_seed : s_seed + k].astype(np.intp),
        ].sum()
    )
    # Rightward extension.
    best_right = 0
    running = 0
    right = 0  # residues beyond the seed
    qi, si = q_seed + k, s_seed + k
    while qi < query.size and si < subject.size:
        running += int(BLOSUM62[int(query[qi]), int(subject[si])])
        if running > best_right:
            best_right = running
            right = qi - (q_seed + k) + 1
        if running < best_right - x_drop:
            break
        qi += 1
        si += 1
    # Leftward extension.
    best_left = 0
    running = 0
    left = 0
    qi, si = q_seed - 1, s_seed - 1
    while qi >= 0 and si >= 0:
        running += int(BLOSUM62[int(query[qi]), int(subject[si])])
        if running > best_left:
            best_left = running
            left = q_seed - qi
        if running < best_left - x_drop:
            break
        qi -= 1
        si -= 1
    return AlignmentResult(
        score=seed_score + best_left + best_right,
        query_start=q_seed - left,
        query_end=q_seed + k + right,
        subject_start=s_seed - left,
        subject_end=s_seed + k + right,
        gapped=False,
    )


def banded_gapped_extend(
    query: np.ndarray,
    subject: np.ndarray,
    hsp: AlignmentResult,
    *,
    band: int = 12,
    gap_open: int = 11,
    gap_extend: int = 1,
    window: int = 40,
) -> AlignmentResult:
    """Affine-gap local alignment in a band around an HSP's diagonal.

    The search region is the HSP extended by ``window`` residues on
    both sides; cells farther than ``band`` from the HSP diagonal are
    excluded. Row-wise vectorized over the band (NumPy), so cost is
    O(rows × band) with array ops rather than a Python cell loop.
    """
    if band < 1:
        raise ApplicationError("band must be >= 1")
    q_lo = max(0, hsp.query_start - window)
    q_hi = min(query.size, hsp.query_end + window)
    s_lo = max(0, hsp.subject_start - window)
    s_hi = min(subject.size, hsp.subject_end + window)
    q_sub = query[q_lo:q_hi].astype(np.intp)
    s_sub = subject[s_lo:s_hi].astype(np.intp)
    n, m = q_sub.size, s_sub.size
    if n == 0 or m == 0:
        return hsp
    diag = (hsp.subject_start - s_lo) - (hsp.query_start - q_lo)
    width = 2 * band + 1
    neg = -(10**6)
    # Banded DP in diagonal coordinates: column b of row i corresponds
    # to subject index j = i + diag + (b - band).
    H = np.full(width, neg, dtype=np.int32)  # match/mismatch state
    E = np.full(width, neg, dtype=np.int32)  # gap in query
    F = np.full(width, neg, dtype=np.int32)  # gap in subject
    best_score = 0
    best_pos = (0, 0)
    offsets = np.arange(width) - band
    for i in range(n):
        j_idx = i + diag + offsets  # subject indices for this row's band
        valid = (j_idx >= 0) & (j_idx < m)
        sub = np.where(valid, BLOSUM62[q_sub[i]][s_sub[np.clip(j_idx, 0, m - 1)]], neg)
        # H_prev[b] is H[i-1][same diagonal] = match continuation.
        H_diag = H  # previous row, same band column == (i-1, j-1)
        # E: gap in query (move in subject): from (i, j-1) = same row,
        # previous band column.
        new_H = np.maximum(H_diag + sub, sub)  # local alignment restart
        new_H = np.maximum(new_H, 0)
        # Compute E/F against the previous row's states.
        # F: gap in subject (move in query): from (i-1, j) which in band
        # coordinates is column b+1 of the previous row.
        F_src = np.full(width, neg, dtype=np.int32)
        F_src[:-1] = np.maximum(H[1:] - gap_open, F[1:] - gap_extend)
        new_F = F_src
        new_H = np.maximum(new_H, new_F + np.where(valid, 0, neg))
        # E needs a left-to-right scan within the row (gap runs), done
        # iteratively over the (small) band width.
        new_E = np.full(width, neg, dtype=np.int32)
        for b in range(1, width):
            new_E[b] = max(new_H[b - 1] - gap_open, new_E[b - 1] - gap_extend)
            if valid[b] and new_E[b] > new_H[b]:
                new_H[b] = new_E[b]
        new_H = np.where(valid, np.maximum(new_H, 0), neg)
        row_best = int(new_H.max(initial=0))
        if row_best > best_score:
            best_score = row_best
            b = int(new_H.argmax())
            best_pos = (i, int(j_idx[b]))
        H, E, F = new_H, new_E, new_F
    if best_score <= hsp.score:
        return hsp
    return AlignmentResult(
        score=best_score,
        query_start=q_lo,
        query_end=q_lo + best_pos[0] + 1,
        subject_start=s_lo,
        subject_end=s_lo + best_pos[1] + 1,
        gapped=True,
    )
