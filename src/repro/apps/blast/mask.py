"""Low-complexity region masking (SEG-style).

Real BLAST masks low-complexity segments (poly-A runs, proline-rich
stretches) before seeding, because they generate floods of spurious
word hits. This is a compact entropy-based variant of Wootton &
Federhen's SEG: windows whose Shannon entropy (in bits over the
20-letter alphabet) falls below a trigger are replaced by ``X`` —
which never seeds, since X scores too low to reach the word threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.blast.scoring import PROTEIN_ALPHABET, encode_sequence
from repro.errors import ApplicationError

_X_INDEX = PROTEIN_ALPHABET.index("X")


@dataclass(frozen=True)
class SegParams:
    """Masking parameters (defaults near SEG's 12/2.2/2.5)."""

    window: int = 12
    #: Entropy (bits) at or below which a window triggers masking.
    trigger: float = 2.2
    #: Entropy up to which a triggered region is extended.
    extend: float = 2.5

    def __post_init__(self) -> None:
        if self.window < 2:
            raise ApplicationError("SEG window must be >= 2")
        if not 0 <= self.trigger <= self.extend:
            raise ApplicationError("need 0 <= trigger <= extend")


def window_entropy(encoded: np.ndarray) -> float:
    """Shannon entropy (bits) of a residue window."""
    if encoded.size == 0:
        return 0.0
    _values, counts = np.unique(encoded, return_counts=True)
    probs = counts / encoded.size
    return float(-(probs * np.log2(probs)).sum())


def low_complexity_mask(residues: str, params: SegParams | None = None) -> np.ndarray:
    """Boolean mask: True where the residue is low-complexity.

    Two-pass SEG flavour: sliding windows at or below ``trigger``
    entropy seed regions, which then grow while windows stay at or
    below ``extend``.
    """
    params = params or SegParams()
    encoded = encode_sequence(residues)
    n = encoded.size
    mask = np.zeros(n, dtype=bool)
    if n < params.window:
        return mask
    w = params.window
    entropies = np.array(
        [window_entropy(encoded[i : i + w]) for i in range(n - w + 1)]
    )
    triggered = entropies <= params.trigger
    extendable = entropies <= params.extend
    i = 0
    while i < triggered.size:
        if not triggered[i]:
            i += 1
            continue
        # Grow left/right through extendable windows.
        start = i
        while start > 0 and extendable[start - 1]:
            start -= 1
        end = i
        while end + 1 < extendable.size and extendable[end + 1]:
            end += 1
        mask[start : end + w] = True
        i = end + 1
    return mask


def mask_sequence(residues: str, params: SegParams | None = None) -> str:
    """Replace low-complexity residues with ``X``.

    >>> mask_sequence("MKVW" + "AAAAAAAAAAAAAAAA" + "WVKM")  # doctest: +SKIP
    'MKVWXXXXXXXXXXXXXXXXWVKM'
    """
    mask = low_complexity_mask(residues, params)
    if not mask.any():
        return residues.upper()
    chars = list(residues.upper())
    for i in np.nonzero(mask)[0]:
        chars[i] = "X"
    return "".join(chars)


def masked_fraction(residues: str, params: SegParams | None = None) -> float:
    """Fraction of the sequence that is low-complexity."""
    if not residues:
        return 0.0
    mask = low_complexity_mask(residues, params)
    return float(mask.mean())
