"""BLOSUM62 substitution scoring.

The standard NCBI BLOSUM62 matrix over the 24-symbol protein alphabet
(20 amino acids + B/Z ambiguity codes + X any + ``*`` stop). Sequences
are encoded to ``uint8`` indices once so the hot alignment loops score
via array indexing rather than dict lookups (vectorization guidance
from the HPC coding guides).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ApplicationError

#: Symbol order of the matrix rows/columns (NCBI convention).
PROTEIN_ALPHABET = "ARNDCQEGHILKMFPSTWYVBZX*"

#: The 20 unambiguous amino acids (used by the synthetic generators).
AMINO_ACIDS = "ARNDCQEGHILKMFPSTWYV"

_BLOSUM62_ROWS = """
 4 -1 -2 -2  0 -1 -1  0 -2 -1 -1 -1 -1 -2 -1  1  0 -3 -2  0 -2 -1  0 -4
-1  5  0 -2 -3  1  0 -2  0 -3 -2  2 -1 -3 -2 -1 -1 -3 -2 -3 -1  0 -1 -4
-2  0  6  1 -3  0  0  0  1 -3 -3  0 -2 -3 -2  1  0 -4 -2 -3  3  0 -1 -4
-2 -2  1  6 -3  0  2 -1 -1 -3 -4 -1 -3 -3 -1  0 -1 -4 -3 -3  4  1 -1 -4
 0 -3 -3 -3  9 -3 -4 -3 -3 -1 -1 -3 -1 -2 -3 -1 -1 -2 -2 -1 -3 -3 -2 -4
-1  1  0  0 -3  5  2 -2  0 -3 -2  1  0 -3 -1  0 -1 -2 -1 -2  0  3 -1 -4
-1  0  0  2 -4  2  5 -2  0 -3 -3  1 -2 -3 -1  0 -1 -3 -2 -2  1  4 -1 -4
 0 -2  0 -1 -3 -2 -2  6 -2 -4 -4 -2 -3 -3 -2  0 -2 -2 -3 -3 -1 -2 -1 -4
-2  0  1 -1 -3  0  0 -2  8 -3 -3 -1 -2 -1 -2 -1 -2 -2  2 -3  0  0 -1 -4
-1 -3 -3 -3 -1 -3 -3 -4 -3  4  2 -3  1  0 -3 -2 -1 -3 -1  3 -3 -3 -1 -4
-1 -2 -3 -4 -1 -2 -3 -4 -3  2  4 -2  2  0 -3 -2 -1 -2 -1  1 -4 -3 -1 -4
-1  2  0 -1 -3  1  1 -2 -1 -3 -2  5 -1 -3 -1  0 -1 -3 -2 -2  0  1 -1 -4
-1 -1 -2 -3 -1  0 -2 -3 -2  1  2 -1  5  0 -2 -1 -1 -1 -1  1 -3 -1 -1 -4
-2 -3 -3 -3 -2 -3 -3 -3 -1  0  0 -3  0  6 -4 -2 -2  1  3 -1 -3 -3 -1 -4
-1 -2 -2 -1 -3 -1 -1 -2 -2 -3 -3 -1 -2 -4  7 -1 -1 -4 -3 -2 -2 -1 -2 -4
 1 -1  1  0 -1  0  0  0 -1 -2 -2  0 -1 -2 -1  4  1 -3 -2 -2  0  0  0 -4
 0 -1  0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1  1  5 -2 -2  0 -1 -1  0 -4
-3 -3 -4 -4 -2 -2 -3 -2 -2 -3 -2 -3 -1  1 -4 -3 -2 11  2 -3 -4 -3 -2 -4
-2 -2 -2 -3 -2 -1 -2 -3  2 -1 -1 -2 -1  3 -3 -2 -2  2  7 -1 -3 -2 -1 -4
 0 -3 -3 -3 -1 -2 -2 -3 -3  3  1 -2  1 -1 -2 -2  0 -3 -1  4 -3 -2 -1 -4
-2 -1  3  4 -3  0  1 -1  0 -3 -4  0 -3 -3 -2  0 -1 -4 -3 -3  4  1 -1 -4
-1  0  0  1 -3  3  4 -2  0 -3 -3  1 -1 -3 -1  0 -1 -3 -2 -2  1  4 -1 -4
 0 -1 -1 -1 -2 -1 -1 -1 -1 -1 -1 -1 -1 -1 -2  0  0 -2 -1 -1 -1 -1 -1 -4
-4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4  1
"""

#: BLOSUM62 as a (24, 24) int8 array indexed by PROTEIN_ALPHABET order.
BLOSUM62 = np.array(
    [[int(x) for x in row.split()] for row in _BLOSUM62_ROWS.strip().splitlines()],
    dtype=np.int8,
)

if BLOSUM62.shape != (24, 24) or not np.array_equal(BLOSUM62, BLOSUM62.T):
    raise AssertionError("BLOSUM62 table corrupted (must be 24x24 symmetric)")

_CHAR_TO_INDEX = np.full(128, 255, dtype=np.uint8)
for _i, _ch in enumerate(PROTEIN_ALPHABET):
    _CHAR_TO_INDEX[ord(_ch)] = _i
# Common extra ambiguity codes map to X.
for _ch in "UJO":
    _CHAR_TO_INDEX[ord(_ch)] = PROTEIN_ALPHABET.index("X")


def encode_sequence(residues: str) -> np.ndarray:
    """Encode a protein string to BLOSUM62 row indices (uint8 array).

    Unknown characters raise :class:`ApplicationError` — silently
    treating garbage as X hides corrupted inputs.
    """
    raw = np.frombuffer(residues.upper().encode("ascii", "replace"), dtype=np.uint8)
    encoded = _CHAR_TO_INDEX[np.minimum(raw, 127)]
    if np.any(encoded == 255):
        bad = {residues[i] for i in np.nonzero(encoded == 255)[0][:5]}
        raise ApplicationError(f"non-protein characters in sequence: {sorted(bad)}")
    return encoded


def decode_sequence(encoded: np.ndarray) -> str:
    """Inverse of :func:`encode_sequence`."""
    return "".join(PROTEIN_ALPHABET[i] for i in encoded)


def score_pair(a: str | np.ndarray, b: str | np.ndarray) -> int:
    """Sum of positional BLOSUM62 scores of two equal-length sequences."""
    ea = encode_sequence(a) if isinstance(a, str) else a
    eb = encode_sequence(b) if isinstance(b, str) else b
    if ea.shape != eb.shape:
        raise ApplicationError(
            f"score_pair needs equal lengths, got {len(ea)} and {len(eb)}"
        )
    if ea.size == 0:
        return 0
    return int(BLOSUM62[ea.astype(np.intp), eb.astype(np.intp)].sum())
