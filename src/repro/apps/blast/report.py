"""BLAST result formatting: tabular (outfmt-6-style) and pairwise views.

Bridges the search driver and the traceback aligner: given hits from
:func:`~repro.apps.blast.search.blast_search`, produce the standard
12-column tabular output and, on demand, the full pairwise alignment
rendering for a hit.
"""

from __future__ import annotations

import io
from typing import Sequence

from repro.apps.blast.align import TracedAlignment, smith_waterman
from repro.apps.blast.fasta import SequenceRecord
from repro.apps.blast.search import BlastDatabase, BlastHit

#: Column order of the classic ``-outfmt 6`` table.
TABULAR_COLUMNS = (
    "qseqid", "sseqid", "pident", "length", "mismatch", "gapopen",
    "qstart", "qend", "sstart", "send", "evalue", "bitscore",
)


def trace_hit(
    query: SequenceRecord,
    hit: BlastHit,
    database: BlastDatabase,
    *,
    gap_open: int = 11,
    gap_extend: int = 1,
) -> TracedAlignment:
    """Re-align a reported hit with full traceback.

    The search path keeps only scores/coordinates; this recomputes the
    optimal local alignment of the two sequences for display.
    """
    subject_index = next(
        i for i, rec in enumerate(database.records) if rec.seq_id == hit.subject_id
    )
    return smith_waterman(
        query.residues,
        database.records[subject_index].residues,
        gap_open=gap_open,
        gap_extend=gap_extend,
    )


def _gap_opens(traced: TracedAlignment) -> int:
    opens = 0
    for aligned in (traced.aligned_query, traced.aligned_subject):
        in_gap = False
        for ch in aligned:
            if ch == "-" and not in_gap:
                opens += 1
                in_gap = True
            elif ch != "-":
                in_gap = False
    return opens


def tabular_row(query: SequenceRecord, hit: BlastHit, traced: TracedAlignment) -> str:
    """One outfmt-6 line (tab-separated, 1-based inclusive coordinates)."""
    mismatches = sum(
        1
        for a, b in zip(traced.aligned_query, traced.aligned_subject)
        if a != "-" and b != "-" and a != b
    )
    fields = (
        query.seq_id,
        hit.subject_id,
        f"{traced.identity_fraction * 100:.2f}",
        str(traced.length),
        str(mismatches),
        str(_gap_opens(traced)),
        str(traced.query_start + 1),
        str(traced.query_end),
        str(traced.subject_start + 1),
        str(traced.subject_end),
        f"{hit.e_value:.2e}",
        f"{hit.bit_score:.1f}",
    )
    return "\t".join(fields)


def tabular_report(
    query: SequenceRecord,
    hits: Sequence[BlastHit],
    database: BlastDatabase,
    *,
    header: bool = False,
) -> str:
    """Full outfmt-6 table for one query's hits."""
    out = io.StringIO()
    if header:
        out.write("#" + "\t".join(TABULAR_COLUMNS) + "\n")
    for hit in hits:
        traced = trace_hit(query, hit, database)
        out.write(tabular_row(query, hit, traced) + "\n")
    return out.getvalue()
