"""A Hadoop-like transparent-locality execution engine (baseline).

The model captures the two properties the paper attributes to
MapReduce-style systems:

1. **Transparent placement**: input files are scattered HDFS-style —
   each file replicated ``replication`` times on worker nodes chosen
   pseudo-randomly; the user does not control placement ("Hadoop
   provides minimal control over data distribution", §VI).
2. **Locality-greedy scheduling**: an idle worker is handed the queued
   task with the most input bytes already on its node; files it lacks
   are read remotely from a replica holder over the network.

Contrast with FRIEDA: a *pairwise* application (two inputs per task)
only runs fully local when both files landed on one node by luck —
FRIEDA's partition generator co-locates them by construction. A
*common-data* application (BLAST's database) cannot be block-scattered
at all; Hadoop-style placement leaves most reads remote. Those are
exactly the "applications that don't fit the paradigm" (§I).

The engine reuses the cloud substrate (cluster, flow network, compute
models) so its numbers are directly comparable with FRIEDA runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence


from repro.cloud.cluster import ClusterSpec, Provisioner
from repro.cloud.instance import VirtualMachine
from repro.core.framework import RunOutcome, TaskRecord
from repro.core.strategies import StrategyKind
from repro.data.files import Dataset
from repro.data.partition import PartitionScheme, TaskGroup, generate_groups
from repro.engines.compute import ComputeModel
from repro.errors import ConfigurationError
from repro.sim.kernel import Environment, Event
from repro.sim.monitor import Monitor
from repro.util.seeding import make_rng


@dataclass(frozen=True)
class BlockPlacement:
    """Where each file's replicas live (node ids per file)."""

    holders: dict[str, tuple[str, ...]]

    def nodes_for(self, file_name: str) -> tuple[str, ...]:
        return self.holders.get(file_name, ())

    def add_replica(self, file_name: str, node_id: str) -> None:
        current = self.holders.get(file_name, ())
        if node_id not in current:
            self.holders[file_name] = current + (node_id,)

    def local_bytes(self, group: TaskGroup, node_id: str) -> int:
        return sum(f.size for f in group.files if node_id in self.nodes_for(f.name))


def scatter_blocks(
    dataset: Dataset,
    node_ids: Sequence[str],
    *,
    replication: int = 2,
    seed: int = 0,
) -> BlockPlacement:
    """HDFS-style pseudo-random replica placement."""
    if replication < 1:
        raise ConfigurationError("replication must be >= 1")
    if not node_ids:
        raise ConfigurationError("cannot scatter blocks over zero nodes")
    rng = make_rng(seed, "hdfs-scatter")
    replication = min(replication, len(node_ids))
    holders: dict[str, tuple[str, ...]] = {}
    for f in dataset:
        chosen = rng.choice(len(node_ids), size=replication, replace=False)
        holders[f.name] = tuple(node_ids[i] for i in chosen)
    return BlockPlacement(holders=holders)


class HadoopLikeEngine:
    """Transparent-locality execution on the simulated substrate."""

    def __init__(
        self,
        cluster_spec: ClusterSpec | None = None,
        *,
        replication: int = 2,
        seed: int = 0,
        control_rtt: float = 0.002,
        include_disk_io: bool = True,
        cache_remote_reads: bool = False,
    ):
        self.spec = cluster_spec or ClusterSpec()
        self.replication = replication
        self.seed = seed
        self.control_rtt = control_rtt
        self.include_disk_io = include_disk_io
        #: When True, a remotely-read file becomes a local replica
        #: (distributed-cache flavour). Off by default: the transparent
        #: system has no application knowledge about reuse (§VI).
        self.cache_remote_reads = cache_remote_reads

    def run(
        self,
        dataset: Dataset,
        *,
        compute_model: ComputeModel,
        grouping: PartitionScheme | str = PartitionScheme.SINGLE,
        grouping_options: dict | None = None,
        multicore: bool = True,
    ) -> RunOutcome:
        """Execute the workload with locality-greedy scheduling."""
        env = Environment()
        monitor = Monitor()
        cluster = Provisioner(env, monitor).provision_now(self.spec)
        workers = [vm for vm in cluster.worker_vms if vm.is_running]
        if not workers:
            raise ConfigurationError("no running workers")
        node_ids = [vm.vm_id for vm in workers]
        groups = generate_groups(dataset, grouping, **(grouping_options or {}))
        placement = scatter_blocks(
            dataset, node_ids, replication=self.replication, seed=self.seed
        )
        # Blocks pre-exist on node disks (data already "in HDFS").
        for f in dataset:
            for node_id in placement.nodes_for(f.name):
                cluster.vm(node_id).local_disk.store_file(f.name, f.size)

        queue: list[TaskGroup] = list(groups)
        records: list[TaskRecord] = []
        busy: dict[str, float] = {}
        local_tasks = [0]
        remote_bytes = [0.0]
        done_event = Event(env)
        outstanding = [len(groups)]
        start_time = env.now

        def pick_task(node_id: str) -> Optional[TaskGroup]:
            """Most-local-bytes-first (Hadoop's locality preference)."""
            if not queue:
                return None
            best_index = 0
            best_bytes = -1
            for index, group in enumerate(queue):
                local = placement.local_bytes(group, node_id)
                if local > best_bytes:
                    best_index, best_bytes = index, local
                if local == group.total_size:
                    best_index = index
                    break  # fully local: take it immediately
            return queue.pop(best_index)

        def worker_clone(vm: VirtualMachine, wid: str):
            busy.setdefault(wid, 0.0)
            while True:
                yield env.timeout(self.control_rtt)
                group = pick_task(vm.vm_id)
                if group is None:
                    return
                task_start = env.now
                # Remote reads: stream missing files from a replica
                # holder over the network.
                missing = [
                    f
                    for f in group.files
                    if vm.vm_id not in placement.nodes_for(f.name)
                ]
                fully_local = not missing
                flows = []
                for f in missing:
                    holder = placement.nodes_for(f.name)[0]
                    path = (
                        cluster.vm(holder).local_disk.read_path()
                        + cluster.route_between(holder, vm.vm_id)
                    )
                    flows.append(
                        cluster.network.start_flow(path, f.size, tag=f"remote:{wid}")
                    )
                    remote_bytes[0] += f.size
                if flows:
                    yield env.all_of([fl.done for fl in flows])
                    if self.cache_remote_reads and vm.is_running:
                        for f in missing:
                            vm.local_disk.store_file(f.name, f.size)
                            placement.add_replica(f.name, vm.vm_id)
                with vm.cpu.request() as slot:
                    yield slot
                    exec_start = env.now
                    if self.include_disk_io and fully_local and group.total_size > 0:
                        read = cluster.network.start_flow(
                            vm.local_disk.read_path(), group.total_size, tag=f"read:{wid}"
                        )
                        yield read.done
                    cost = float(compute_model.cost(group)) / vm.itype.core_speed
                    if cost > 0:
                        yield env.timeout(cost)
                busy[wid] += env.now - exec_start
                if fully_local:
                    local_tasks[0] += 1
                monitor.interval("exec", exec_start, env.now, worker=wid)
                if flows:
                    monitor.interval("transfer", task_start, exec_start, worker=wid)
                records.append(
                    TaskRecord(
                        task_id=group.index,
                        worker_id=wid,
                        node_id=vm.vm_id,
                        start=task_start,
                        end=env.now,
                        ok=True,
                        transfer_seconds=exec_start - task_start if flows else 0.0,
                    )
                )
                outstanding[0] -= 1
                if outstanding[0] == 0 and not done_event.triggered:
                    done_event.succeed()

        for vm in workers:
            clones = vm.itype.cores if multicore else 1
            for index in range(clones):
                env.process(worker_clone(vm, f"{vm.vm_id}:{index}"))
        if groups:
            env.run(until=done_event)
        makespan = env.now - start_time
        for vm in cluster.vms.values():
            vm.terminate()
        outcome = RunOutcome(
            strategy=StrategyKind.REAL_TIME,  # closest descriptor: pull-based
            grouping=PartitionScheme(grouping),
            makespan=makespan,
            transfer_time=monitor.union_time("transfer"),
            execution_time=monitor.union_time("exec"),
            tasks_total=len(groups),
            tasks_completed=len(records),
            bytes_transferred=remote_bytes[0],
            task_records=sorted(records, key=lambda r: (r.start, r.task_id)),
            worker_busy=busy,
            extra={
                "engine": "hadoop-like",
                "replication": self.replication,
                "locality_rate": (local_tasks[0] / len(groups)) if groups else 1.0,
            },
        )
        return outcome
