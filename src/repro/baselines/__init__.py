"""Baseline data-management systems FRIEDA is contrasted against.

§I/§VI of the paper position FRIEDA against MapReduce/Hadoop, where
"data management can be transparent to the user and the framework can
transparently provide data locality to the tasks at runtime. While this
works well for a certain class of applications, it often is less
optimal for applications that don't fit the paradigm."

:mod:`repro.baselines.hadooplike` implements that transparent model on
the same simulated substrate so the claim can be measured: HDFS-style
random block placement with replication, and a locality-greedy task
scheduler with remote-read fallback.
"""

from repro.baselines.hadooplike import BlockPlacement, HadoopLikeEngine

__all__ = ["BlockPlacement", "HadoopLikeEngine"]
