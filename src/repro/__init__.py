"""FRIEDA reproduction — Flexible Robust Intelligent Elastic DAta management.

This package reproduces the system described in *FRIEDA: Flexible Robust
Intelligent Elastic Data Management in Cloud Environments* (Ghoshal &
Ramakrishnan, SC 2012) together with every substrate the paper depends
on:

- :mod:`repro.sim` — a from-scratch discrete-event simulation kernel
  (coroutine processes, events, resources, stores).
- :mod:`repro.cloud` — the cloud substrate: instance types, virtual
  machines, storage tiers, a flow-level max-min fair-share network
  model, a cluster provisioner, failure injection and billing.
- :mod:`repro.data` — file/dataset model, the partition generator and
  placement policies.
- :mod:`repro.transfer` — transfer protocol models (scp, GridFTP-style).
- :mod:`repro.core` — FRIEDA proper: the two-plane architecture
  (controller / master / workers), data-management strategies, command
  templating, fault handling, elasticity and the adaptive advisor.
- :mod:`repro.engines` — the simulated execution engine that runs FRIEDA
  on top of the cloud substrate.
- :mod:`repro.runtime` — *real* execution backends (threaded in-process
  and asyncio TCP master/worker, the Twisted equivalent).
- :mod:`repro.apps` — the paper's two workloads built from scratch:
  a mini-BLAST sequence search and a light-source image-analysis
  pipeline.
- :mod:`repro.workloads` / :mod:`repro.experiments` — calibrated
  workload profiles and the harness regenerating Table I, Figure 6 and
  Figure 7 of the paper.

Quickstart::

    from repro import Frieda, PartitionScheme, StrategyKind

    frieda = Frieda.local(num_workers=4)
    result = frieda.run(
        command=my_function,
        inputs=list_of_files,
        grouping=PartitionScheme.PAIRWISE_ADJACENT,
        strategy=StrategyKind.REAL_TIME,
    )
"""

from repro._version import __version__
from repro.core.framework import Frieda, FriedaConfig, RunOutcome
from repro.core.strategies import StrategyKind
from repro.data.partition import PartitionScheme

__all__ = [
    "__version__",
    "Frieda",
    "FriedaConfig",
    "RunOutcome",
    "StrategyKind",
    "PartitionScheme",
]
