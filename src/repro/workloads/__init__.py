"""Workload profiles calibrated to the paper's evaluation (§IV-A).

- :func:`als_profile` — the light-source image-analysis workload:
  1250 images, pairwise-adjacent grouping, large files, cheap uniform
  compute (transfer-dominated).
- :func:`blast_profile` — the BLAST workload: 7500 query sequences
  (batched into query files), a common database every node needs,
  expensive highly-variable compute (compute-dominated).

Both accept ``scale`` to shrink the workload proportionally for tests
and quick runs while preserving the shape of the results.
"""

from repro.workloads.profiles import (
    AppProfile,
    PAPER_CLUSTER,
    als_profile,
    blast_profile,
    sequential_cluster,
)
from repro.workloads.scenarios import run_profile, run_sequential_baseline, strategy_sweep

__all__ = [
    "AppProfile",
    "PAPER_CLUSTER",
    "als_profile",
    "blast_profile",
    "sequential_cluster",
    "run_profile",
    "run_sequential_baseline",
    "strategy_sweep",
]
