"""Trace-driven workloads: load/save experiment specs as JSON.

A *trace* pins down a complete workload — every file's size, every
task's cost, the grouping, the common files — so an experiment can be
rerun bit-for-bit later, shared, or hand-edited. Trace schema
(version 1):

.. code-block:: json

    {
      "version": 1,
      "name": "my-workload",
      "grouping": "pairwise_adjacent",
      "grouping_options": {},
      "files": [{"name": "img0000.npy", "size": 6500000}, ...],
      "common_files": [{"name": "db", "size": 300000000}],
      "task_costs": [2.01, 1.87, ...]
    }

``task_costs[i]`` is the single-core cost of task group ``i`` in
generation order; its length must match the grouping's group count.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.data.files import DataFile, Dataset
from repro.data.partition import PartitionScheme, expected_group_count, generate_groups
from repro.data.partition import TaskGroup
from repro.errors import ConfigurationError

_VERSION = 1


@dataclass(frozen=True)
class TraceComputeModel:
    """Cost model backed by an explicit per-task cost list."""

    costs: tuple[float, ...]

    def cost(self, group: TaskGroup) -> float:
        try:
            return self.costs[group.index]
        except IndexError:
            raise ConfigurationError(
                f"trace has no cost for task {group.index} "
                f"(only {len(self.costs)} entries)"
            ) from None


@dataclass(frozen=True)
class TraceWorkload:
    """A fully pinned-down workload."""

    name: str
    dataset: Dataset
    grouping: PartitionScheme
    grouping_options: dict
    compute_model: TraceComputeModel
    common_files: tuple[DataFile, ...] = ()

    @property
    def num_tasks(self) -> int:
        return len(self.compute_model.costs)


def save_trace(workload: TraceWorkload, path: str) -> None:
    """Serialize a trace workload to JSON."""
    payload = {
        "version": _VERSION,
        "name": workload.name,
        "grouping": workload.grouping.value,
        "grouping_options": dict(workload.grouping_options),
        "files": [{"name": f.name, "size": f.size} for f in workload.dataset],
        "common_files": [
            {"name": f.name, "size": f.size} for f in workload.common_files
        ],
        "task_costs": list(workload.compute_model.costs),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_trace(path: str) -> TraceWorkload:
    """Load and validate a trace workload from JSON."""
    with open(path, "r", encoding="utf-8") as fh:
        try:
            payload = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"unparseable trace {path}: {exc}") from exc
    if payload.get("version") != _VERSION:
        raise ConfigurationError(
            f"trace version {payload.get('version')!r} unsupported (expected {_VERSION})"
        )
    try:
        grouping = PartitionScheme(payload["grouping"])
        files = [DataFile(f["name"], int(f["size"])) for f in payload["files"]]
        common = tuple(
            DataFile(f["name"], int(f["size"])) for f in payload.get("common_files", [])
        )
        costs = tuple(float(c) for c in payload["task_costs"])
        name = str(payload["name"])
        options = dict(payload.get("grouping_options", {}))
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed trace {path}: {exc}") from exc
    if any(c < 0 for c in costs):
        raise ConfigurationError("trace task costs must be non-negative")
    dataset = Dataset(name, files)
    expected = expected_group_count(grouping, len(dataset), **options)
    if expected != len(costs):
        raise ConfigurationError(
            f"trace has {len(costs)} task costs but grouping "
            f"{grouping.value} over {len(dataset)} files yields {expected} tasks"
        )
    return TraceWorkload(
        name=name,
        dataset=dataset,
        grouping=grouping,
        grouping_options=options,
        compute_model=TraceComputeModel(costs),
        common_files=common,
    )


def trace_from_profile(profile, *, name: str | None = None) -> TraceWorkload:
    """Pin an :class:`~repro.workloads.profiles.AppProfile` into a trace
    (samples every stochastic task cost once, making it exact)."""
    groups = generate_groups(profile.dataset, profile.grouping, **profile.grouping_options)
    costs = tuple(float(profile.compute_model.cost(g)) for g in groups)
    return TraceWorkload(
        name=name or profile.name,
        dataset=profile.dataset,
        grouping=profile.grouping,
        grouping_options=dict(profile.grouping_options),
        compute_model=TraceComputeModel(costs),
        common_files=tuple(profile.common_files),
    )


def run_trace(workload: TraceWorkload, strategy, *, cluster=None, options=None, **kw):
    """Run a trace workload on the simulated engine."""
    from repro.engines.simulated import SimulatedEngine
    from repro.workloads.profiles import PAPER_CLUSTER

    engine = SimulatedEngine(cluster or PAPER_CLUSTER, options)
    return engine.run(
        workload.dataset,
        compute_model=workload.compute_model,
        strategy=strategy,
        grouping=workload.grouping,
        grouping_options=workload.grouping_options,
        common_files=workload.common_files,
        **kw,
    )
