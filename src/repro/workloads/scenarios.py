"""Scenario helpers: run profiles through the simulated engine."""

from __future__ import annotations

from typing import Sequence

from repro.cloud.cluster import ClusterSpec
from repro.core.framework import RunOutcome
from repro.core.strategies import StrategyKind
from repro.engines.simulated import SimulatedEngine, SimulationOptions
from repro.telemetry.spans import Telemetry
from repro.workloads.profiles import AppProfile, sequential_cluster


def run_profile(
    profile: AppProfile,
    strategy: StrategyKind | str,
    *,
    cluster: ClusterSpec | None = None,
    options: SimulationOptions | None = None,
    **run_kwargs,
) -> RunOutcome:
    """Run one profile under one strategy on its (or a given) cluster."""
    engine = SimulatedEngine(cluster or profile.cluster, options)
    return engine.run(
        profile.dataset,
        compute_model=profile.compute_model,
        command=profile.command,
        strategy=strategy,
        grouping=profile.grouping,
        grouping_options=profile.grouping_options,
        common_files=profile.common_files,
        **run_kwargs,
    )


def run_sequential_baseline(
    profile: AppProfile,
    *,
    options: SimulationOptions | None = None,
    telemetry: Telemetry | None = None,
) -> RunOutcome:
    """Table I's sequential column: one VM, one program instance,
    data local (no distribution at all)."""
    engine = SimulatedEngine(sequential_cluster(), options)
    return engine.run(
        profile.dataset,
        compute_model=profile.compute_model,
        command=profile.command,
        strategy=StrategyKind.PRE_PARTITIONED_LOCAL,
        grouping=profile.grouping,
        grouping_options=profile.grouping_options,
        common_files=profile.common_files,
        multicore=False,
        telemetry=telemetry,
    )


def strategy_sweep(
    profile: AppProfile,
    strategies: Sequence[StrategyKind] = (
        StrategyKind.PRE_PARTITIONED_LOCAL,
        StrategyKind.PRE_PARTITIONED_REMOTE,
        StrategyKind.REAL_TIME,
    ),
    *,
    options: SimulationOptions | None = None,
    **run_kwargs,
) -> dict[StrategyKind, RunOutcome]:
    """Run the profile under several strategies (Fig 6's comparison)."""
    return {
        strategy: run_profile(profile, strategy, options=options, **run_kwargs)
        for strategy in strategies
    }
