"""Calibrated application profiles.

Calibration targets are the paper's Table I / §IV-A setup: 4 × c1.xlarge
(4 cores each ⇒ 16 program instances), 100 Mbps provisioned links.

ALS (image analysis)
    1250 images, pairwise-adjacent ⇒ 625 two-file tasks. Sequential
    time 1258.80 s ⇒ ≈2.014 s per comparison wall-clock; we budget
    ≈0.13 s of that as the local-disk read of two 6.2 MB frames at the
    disk tier rate, leaving 1.890 s of pure compute. 1250 × 6.2 MB ≈
    7.75 GB must cross the master's 100 Mbit/s uplink ⇒ ≈700 s of
    serialized transfer — the transfer-dominated regime of Fig 6a.

BLAST
    7500 query sequences, mean 8.16 s each (61200 s sequential),
    lognormal per-file CV 0.35 (match-dependent cost, §IV-B). Queries
    are batched 10-per-file (750 files ⇒ mean 81.6 s per task); a 300 MB
    database is common data staged to all nodes. Compute dominates;
    the pre-partitioned penalty is straggler skew from contiguous
    chunking, the real-time benefit is pull-based balancing.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cloud.cluster import ClusterSpec
from repro.cloud.instance import C1_XLARGE
from repro.core.commands import CommandTemplate
from repro.data.files import DataFile, Dataset, synthetic_dataset
from repro.data.partition import PartitionScheme
from repro.engines.compute import (
    ComputeModel,
    FixedComputeModel,
    StochasticComputeModel,
)
from repro.errors import ConfigurationError
from repro.util.units import KB, MB, Mbit

#: The testbed of §IV-A: 4 worker VMs, c1.xlarge, 100 Mbps links.
PAPER_CLUSTER = ClusterSpec(
    name="exogeni",
    instance_type=C1_XLARGE,
    num_workers=4,
    link_bps=100 * Mbit,
)


def sequential_cluster() -> ClusterSpec:
    """One worker VM for the sequential baselines of Table I."""
    return replace(PAPER_CLUSTER, name="sequential", num_workers=1)


@dataclass(frozen=True)
class AppProfile:
    """Everything needed to run one application workload in simulation."""

    name: str
    dataset: Dataset
    grouping: PartitionScheme
    grouping_options: dict
    compute_model: ComputeModel
    command: CommandTemplate
    common_files: tuple[DataFile, ...] = ()
    cluster: ClusterSpec = PAPER_CLUSTER
    notes: str = ""

    @property
    def num_tasks(self) -> int:
        from repro.data.partition import expected_group_count

        return expected_group_count(
            self.grouping, len(self.dataset), **self.grouping_options
        )


def _scaled_count(base: int, scale: float, *, even: bool = False, minimum: int = 2) -> int:
    if scale <= 0:
        raise ConfigurationError("scale must be positive")
    count = max(minimum, int(round(base * scale)))
    if even and count % 2:
        count += 1
    return count


def als_profile(scale: float = 1.0, *, seed: int = 0) -> AppProfile:
    """The light-source image-comparison workload (§IV-A).

    ``scale=1`` is the paper's 1250 images; smaller scales shrink the
    image count (file size and per-task cost stay fixed so the
    transfer/compute *ratio* — the thing that drives the figures — is
    preserved).
    """
    count = _scaled_count(1250, scale, even=True)
    dataset = synthetic_dataset(
        "als-images", count, 6.2 * MB, seed=seed, prefix="img", suffix=".npy"
    )
    return AppProfile(
        name="als",
        dataset=dataset,
        grouping=PartitionScheme.PAIRWISE_ADJACENT,
        grouping_options={},
        compute_model=FixedComputeModel(1.890),
        command=CommandTemplate(
            template="compare-images $inp1 $inp2", name="als-compare"
        ),
        cluster=PAPER_CLUSTER,
        notes=(
            "1250 x 6.2MB frames, pairwise adjacent (625 tasks), 1.890s "
            "compute/comparison + disk reads; transfer-dominated"
        ),
    )


def blast_profile(scale: float = 1.0, *, seed: int = 0) -> AppProfile:
    """The BLAST workload (§IV-A).

    ``scale=1`` is the paper's 7500 sequences (750 query files of 10);
    the 300 MB database is common data for every node.
    """
    files = _scaled_count(750, scale)
    dataset = synthetic_dataset(
        "blast-queries", files, 20 * KB, seed=seed, prefix="q", suffix=".fa"
    )
    # The database scales with the workload so reduced-scale runs keep
    # the paper's transfer/compute ratio (at scale=1 it is 300 MB).
    database = DataFile("nr-subset.db", max(int(20 * MB), int(300 * MB * scale)))
    return AppProfile(
        name="blast",
        dataset=dataset,
        grouping=PartitionScheme.SINGLE,
        grouping_options={},
        # 10 sequences/file x 8.16 s mean. Per-sequence costs within a
        # file correlate (homolog-rich vs decoy-rich query files), so
        # the per-file CV stays well above the sqrt(10)-averaged value.
        compute_model=StochasticComputeModel(mean_seconds=81.6, cv=0.35, seed=seed),
        command=CommandTemplate(
            template="blastall -p blastp -i $inp1 -d nr-subset.db", name="blast"
        ),
        common_files=(database,),
        cluster=PAPER_CLUSTER,
        notes=(
            "7500 sequences in 750 query files, 300MB common database, "
            "lognormal task cost (mean 81.6s/file, CV 0.35); "
            "compute-dominated with skew"
        ),
    )
