"""Module entry point: ``python -m repro <run|strategies|advise>``."""

import sys

from repro.cli import main

sys.exit(main())
