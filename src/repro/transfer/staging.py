"""Transfer execution: the service that moves files over the flow network.

:class:`TransferService` is what the simulated FRIEDA engine calls to
"scp a file": it applies a :class:`~repro.transfer.base.TransferProtocol`
model (handshake, efficiency, parallel streams) and starts flows on the
cluster's :class:`~repro.cloud.network.FlowNetwork`.

:class:`StagingPlan` batches many requests with a concurrency limit —
the master in pre-partitioning mode stages every partition this way
before execution starts (§III-B "Pre-Partitioned Task and Data").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cloud.failures import TransferFaultModel
from repro.cloud.network import FlowNetwork
from repro.errors import TransferError
from repro.sim.kernel import Environment
from repro.sim.monitor import Monitor, MonitorSink
from repro.sim.resources import Resource
from repro.telemetry.metrics import NULL_METRICS
from repro.telemetry.spans import SpanHandle, Telemetry
from repro.transfer.base import TransferProtocol, TransferRequest, TransferResult
from repro.transfer.retry import TransferRetryPolicy
from repro.util.seeding import make_rng


class TransferService:
    """Executes file transfers on a flow network under a protocol model.

    ``retry_policy`` (default: paper-faithful single attempt) governs
    how attempt failures — transient faults from ``fault_model``,
    per-attempt timeouts — are retried. A transfer whose retries exhaust
    returns a failed :class:`TransferResult` rather than raising, so
    callers always get one result per request.
    """

    def __init__(
        self,
        env: Environment,
        network: FlowNetwork,
        protocol: TransferProtocol,
        monitor: Monitor | None = None,
        telemetry: Telemetry | None = None,
        *,
        retry_policy: TransferRetryPolicy | None = None,
        fault_model: Optional[TransferFaultModel] = None,
        seed: int = 0,
    ):
        self.env = env
        self.network = network
        self.protocol = protocol
        self.monitor = monitor
        self.retry_policy = retry_policy or TransferRetryPolicy.paper_faithful()
        self.fault_model = fault_model
        self._backoff_rng = make_rng(seed, "transfer-backoff")
        if telemetry is None and monitor is not None:
            # Legacy construction: adapt the bare monitor so "transfer"
            # intervals land exactly where they always did.
            telemetry = Telemetry(clock=lambda: env.now)
            telemetry.bind(monitor=MonitorSink(monitor))
        self.telemetry = telemetry
        metrics = telemetry.metrics if telemetry is not None else NULL_METRICS
        self._m_count = metrics.counter("transfer.count")
        self._m_bytes = metrics.counter("transfer.bytes")
        self._h_seconds = metrics.histogram("transfer.seconds")
        self._m_retries = metrics.counter("transfer.retries")
        self._m_failed = metrics.counter("transfer.failed")
        self._m_timeouts = metrics.counter("transfer.timeouts")
        self._m_faults = metrics.counter("transfer.faults")
        self._h_attempts = metrics.histogram("transfer.attempts")
        self.results: list[TransferResult] = []

    def _attempt(self, request: TransferRequest):
        """Process: one wire attempt. Returns (ok, error) — never raises."""
        attempt_start = self.env.now
        if self.protocol.handshake_latency > 0:
            yield self.env.timeout(self.protocol.handshake_latency)
        wire_bytes = self.protocol.effective_bytes(request.nbytes)
        # A transient fault kills the stream after a drawn fraction of
        # the wire bytes: that much bandwidth is genuinely consumed,
        # then the attempt fails.
        fault_at: Optional[float] = None
        if self.fault_model is not None:
            fault_at = self.fault_model.draw()
            if fault_at is not None:
                wire_bytes *= fault_at
        sizes = self.protocol.stream_sizes(int(round(wire_bytes)))
        flows = [
            self.network.start_flow(
                request.path,
                size,
                max_rate=self.protocol.per_stream_cap_bps,
                tag=request.tag or request.file_name,
            )
            for size in sizes
            if size > 0
        ]
        timed_out = False
        if flows:
            completion = self.env.all_of([f.done for f in flows])
            timeout_s = self.retry_policy.timeout_s
            if timeout_s is None:
                yield completion
            else:
                # The guard covers the whole attempt including handshake.
                remaining = timeout_s - (self.env.now - attempt_start)
                if remaining <= 0:
                    timed_out = True
                else:
                    guard = self.env.timeout(remaining)
                    yield self.env.any_of([completion, guard])
                    timed_out = not completion.triggered
                if timed_out:
                    for flow in flows:
                        self.network.cancel_flow(flow, reason="transfer-timeout")
        if timed_out:
            self._m_timeouts.inc()
            return False, "timeout"
        if fault_at is not None:
            self._m_faults.inc()
            return False, f"transient-fault@{fault_at:.2f}"
        return True, ""

    def transfer(self, request: TransferRequest, parent: SpanHandle | None = None):
        """Process: move one file; returns a :class:`TransferResult`.

        Use as ``result = yield env.process(service.transfer(req))``.
        ``parent`` links the emitted "transfer" span into the
        requester's trace tree (e.g. a task's fetch span). Check
        ``result.ok`` — a transfer whose retries exhaust does not raise.
        """
        policy = self.retry_policy
        start = self.env.now
        attempt = 0
        ok, error = False, ""
        while True:
            attempt += 1
            ok, error = yield from self._attempt(request)
            if ok or attempt >= policy.max_attempts:
                break
            self._m_retries.inc()
            delay = policy.backoff_s(attempt, self._backoff_rng)
            if delay > 0:
                yield self.env.timeout(delay)
        result = TransferResult(
            file_name=request.file_name,
            nbytes=request.nbytes,
            start=start,
            end=self.env.now,
            ok=ok,
            error=error,
            attempts=attempt,
            tag=request.tag,
        )
        self.results.append(result)
        if self.telemetry is not None:
            # Annotate the span with retry detail only when something
            # non-default happened, so single-attempt traces (and the
            # golden trace bytes) are unchanged.
            extra = {} if ok and attempt == 1 else {"ok": ok, "attempts": attempt}
            self.telemetry.span_complete(
                "transfer",
                start,
                result.end,
                parent=parent,
                track="network",
                file=request.file_name,
                tag=request.tag,
                **extra,
            )
        self._m_count.inc()
        self._h_seconds.observe(result.end - start)
        self._h_attempts.observe(attempt)
        if ok:
            self._m_bytes.inc(request.nbytes)
        else:
            self._m_failed.inc()
        return result


@dataclass
class StagingPlan:
    """A batch of transfers executed with bounded concurrency.

    ``concurrency`` limits simultaneous sessions per plan (scp to many
    hosts is typically fanned out a few sessions at a time; unbounded
    fan-out just splits the same bottleneck bandwidth thinner while
    paying every handshake up front).
    """

    requests: list[TransferRequest] = field(default_factory=list)
    concurrency: int = 4

    def add(self, request: TransferRequest) -> None:
        self.requests.append(request)

    @property
    def total_bytes(self) -> int:
        return sum(r.nbytes for r in self.requests)

    def execute(self, service: TransferService, parent: SpanHandle | None = None):
        """Process: run all transfers; returns list of results in finish order.

        Use as ``results = yield env.process(plan.execute(service))``.
        ``parent`` is forwarded to each transfer's span.
        """
        if self.concurrency < 1:
            raise TransferError("staging concurrency must be >= 1")
        env = service.env
        gate = Resource(env, capacity=self.concurrency)
        results: list[TransferResult] = []

        def one(request: TransferRequest):
            with gate.request() as slot:
                yield slot
                result = yield env.process(service.transfer(request, parent=parent))
            results.append(result)
            return result

        children = [env.process(one(r), name=f"stage-{r.file_name}") for r in self.requests]
        if children:
            yield env.all_of(children)
        return results
