"""Transfer execution: the service that moves files over the flow network.

:class:`TransferService` is what the simulated FRIEDA engine calls to
"scp a file": it applies a :class:`~repro.transfer.base.TransferProtocol`
model (handshake, efficiency, parallel streams) and starts flows on the
cluster's :class:`~repro.cloud.network.FlowNetwork`.

:class:`StagingPlan` batches many requests with a concurrency limit —
the master in pre-partitioning mode stages every partition this way
before execution starts (§III-B "Pre-Partitioned Task and Data").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.network import FlowNetwork
from repro.errors import TransferError
from repro.sim.kernel import Environment
from repro.sim.monitor import Monitor, MonitorSink
from repro.sim.resources import Resource
from repro.telemetry.metrics import NULL_METRICS
from repro.telemetry.spans import SpanHandle, Telemetry
from repro.transfer.base import TransferProtocol, TransferRequest, TransferResult


class TransferService:
    """Executes file transfers on a flow network under a protocol model."""

    def __init__(
        self,
        env: Environment,
        network: FlowNetwork,
        protocol: TransferProtocol,
        monitor: Monitor | None = None,
        telemetry: Telemetry | None = None,
    ):
        self.env = env
        self.network = network
        self.protocol = protocol
        self.monitor = monitor
        if telemetry is None and monitor is not None:
            # Legacy construction: adapt the bare monitor so "transfer"
            # intervals land exactly where they always did.
            telemetry = Telemetry(clock=lambda: env.now)
            telemetry.bind(monitor=MonitorSink(monitor))
        self.telemetry = telemetry
        metrics = telemetry.metrics if telemetry is not None else NULL_METRICS
        self._m_count = metrics.counter("transfer.count")
        self._m_bytes = metrics.counter("transfer.bytes")
        self._h_seconds = metrics.histogram("transfer.seconds")
        self.results: list[TransferResult] = []

    def transfer(self, request: TransferRequest, parent: SpanHandle | None = None):
        """Process: move one file; returns a :class:`TransferResult`.

        Use as ``result = yield env.process(service.transfer(req))``.
        ``parent`` links the emitted "transfer" span into the
        requester's trace tree (e.g. a task's fetch span).
        """
        start = self.env.now
        if self.protocol.handshake_latency > 0:
            yield self.env.timeout(self.protocol.handshake_latency)
        wire_bytes = self.protocol.effective_bytes(request.nbytes)
        sizes = self.protocol.stream_sizes(int(round(wire_bytes)))
        flows = [
            self.network.start_flow(
                request.path,
                size,
                max_rate=self.protocol.per_stream_cap_bps,
                tag=request.tag or request.file_name,
            )
            for size in sizes
            if size > 0
        ]
        if flows:
            yield self.env.all_of([f.done for f in flows])
        result = TransferResult(
            file_name=request.file_name,
            nbytes=request.nbytes,
            start=start,
            end=self.env.now,
        )
        self.results.append(result)
        if self.telemetry is not None:
            self.telemetry.span_complete(
                "transfer",
                start,
                result.end,
                parent=parent,
                track="network",
                file=request.file_name,
                tag=request.tag,
            )
        self._m_count.inc()
        self._m_bytes.inc(request.nbytes)
        self._h_seconds.observe(result.end - start)
        return result


@dataclass
class StagingPlan:
    """A batch of transfers executed with bounded concurrency.

    ``concurrency`` limits simultaneous sessions per plan (scp to many
    hosts is typically fanned out a few sessions at a time; unbounded
    fan-out just splits the same bottleneck bandwidth thinner while
    paying every handshake up front).
    """

    requests: list[TransferRequest] = field(default_factory=list)
    concurrency: int = 4

    def add(self, request: TransferRequest) -> None:
        self.requests.append(request)

    @property
    def total_bytes(self) -> int:
        return sum(r.nbytes for r in self.requests)

    def execute(self, service: TransferService, parent: SpanHandle | None = None):
        """Process: run all transfers; returns list of results in finish order.

        Use as ``results = yield env.process(plan.execute(service))``.
        ``parent`` is forwarded to each transfer's span.
        """
        if self.concurrency < 1:
            raise TransferError("staging concurrency must be >= 1")
        env = service.env
        gate = Resource(env, capacity=self.concurrency)
        results: list[TransferResult] = []

        def one(request: TransferRequest):
            with gate.request() as slot:
                yield slot
                result = yield env.process(service.transfer(request, parent=parent))
            results.append(result)
            return result

        children = [env.process(one(r), name=f"stage-{r.file_name}") for r in self.requests]
        if children:
            yield env.all_of(children)
        return results
