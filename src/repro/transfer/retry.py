"""Deterministic retry policy for the data-movement layer.

Pilot-Data's lesson (PAPERS.md, 1301.6228): robustness in cloud data
management is won at the *transfer* layer — an scp session reset or a
stalled link should cost a retry, not a workflow. The FRIEDA paper
itself only re-runs whole tasks (§V-A); per-transfer retry with backoff
is our extension, so the paper-faithful preset keeps it off.

All backoff jitter comes from a seeded RNG owned by the
:class:`~repro.transfer.staging.TransferService` (stream
``"transfer-backoff"``), never from wall-clock or global random state,
so a chaos run replays byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TransferRetryPolicy:
    """How a :class:`TransferService` reacts to a failed transfer attempt.

    ``max_attempts`` counts tries *including* the first (1 = no retry,
    matching :class:`repro.core.fault.RetryPolicy` semantics). After
    failed attempt *k* the service sleeps
    ``min(cap, base * factor**(k-1))`` seconds, jittered uniformly by
    ``±jitter_fraction`` of itself. ``timeout_s`` bounds each attempt's
    wire time: on expiry the attempt's remaining flows are cancelled
    (releasing their bandwidth) and the attempt counts as failed.
    """

    max_attempts: int = 1
    backoff_base_s: float = 0.0
    backoff_factor: float = 2.0
    backoff_cap_s: float = 60.0
    #: Uniform jitter as a fraction of the delay, in [0, 1].
    jitter_fraction: float = 0.0
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ConfigurationError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ConfigurationError("jitter_fraction must be in [0, 1]")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigurationError("timeout_s must be positive")

    @classmethod
    def paper_faithful(cls) -> "TransferRetryPolicy":
        """One shot, no timeout: a lost transfer surfaces as a task error
        and costs a whole re-run, exactly as the paper's recovery does."""
        return cls(max_attempts=1)

    @classmethod
    def resilient(cls) -> "TransferRetryPolicy":
        """The recommended chaos-survival preset: 5 attempts, 1 s base
        exponential backoff with 25% jitter, 300 s per-attempt guard."""
        return cls(
            max_attempts=5,
            backoff_base_s=1.0,
            backoff_factor=2.0,
            backoff_cap_s=30.0,
            jitter_fraction=0.25,
            timeout_s=300.0,
        )

    @property
    def enabled(self) -> bool:
        """False when the policy can never change behaviour — the service
        uses this to keep the no-retry path zero-cost."""
        return self.max_attempts > 1 or self.timeout_s is not None

    def backoff_s(self, attempt: int, rng: np.random.Generator) -> float:
        """Delay after failed attempt number ``attempt`` (1-based).

        The RNG is only consulted when jitter is configured, so the
        jitter-free policies leave the seeded stream untouched.
        """
        delay = min(
            self.backoff_cap_s,
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
        )
        if self.jitter_fraction > 0.0 and delay > 0.0:
            delay *= 1.0 + self.jitter_fraction * (2.0 * float(rng.random()) - 1.0)
        return delay
