"""Transfer protocol abstraction.

A protocol model answers one question for the engine: *given this file
on this path, what flows do I start?* Three knobs cover the protocols
the paper mentions:

- ``handshake_latency`` — per-file session setup (ssh handshake for
  scp; why transferring 1250 small files one-by-one hurts),
- ``efficiency`` — fraction of raw link bandwidth the protocol
  achieves (framing, encryption),
- ``streams`` — concurrent TCP streams per transfer (1 for scp;
  GridFTP's parallelism, which buys a larger share on congested links).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import TransferError


@dataclass(frozen=True)
class TransferRequest:
    """One file to be moved along a link path."""

    file_name: str
    nbytes: int
    path: tuple[str, ...]
    tag: str = ""

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise TransferError(f"negative transfer size for {self.file_name!r}")
        if not self.path:
            raise TransferError(f"empty path for {self.file_name!r}")


@dataclass(frozen=True)
class TransferResult:
    """Completion record for one file transfer.

    A failed transfer (retries exhausted or timed out) still yields a
    result — ``ok=False`` with ``error`` naming the last failure — so a
    staging batch never crashes on a lost file. ``attempts`` counts
    tries including the first.
    """

    file_name: str
    nbytes: int
    start: float
    end: float
    ok: bool = True
    error: str = ""
    attempts: int = 1
    #: Echo of the request's tag so batch callers can attribute results.
    tag: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def throughput_bps(self) -> float:
        if self.duration <= 0:
            return float("inf")
        return self.nbytes * 8.0 / self.duration


class TransferProtocol:
    """Base protocol model. Subclasses override the class attributes."""

    name: str = "raw"
    #: Per-file session setup time (seconds).
    handshake_latency: float = 0.0
    #: Fraction of goodput over raw bandwidth in (0, 1].
    efficiency: float = 1.0
    #: Number of parallel streams a single transfer opens.
    streams: int = 1
    #: Hard per-stream rate cap in bits/s (None = unlimited).
    per_stream_cap_bps: Optional[float] = None

    def stream_sizes(self, nbytes: int) -> Sequence[int]:
        """Split a file across ``streams`` flows (last stream gets the rest)."""
        n = max(1, int(self.streams))
        if n == 1 or nbytes == 0:
            return [nbytes]
        base = nbytes // n
        sizes = [base] * n
        sizes[-1] += nbytes - base * n
        return sizes

    def effective_bytes(self, nbytes: int) -> float:
        """Wire bytes including protocol overhead (goodput correction)."""
        if not 0.0 < self.efficiency <= 1.0:
            raise TransferError(f"{self.name}: efficiency must be in (0, 1]")
        return nbytes / self.efficiency

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} streams={self.streams} "
            f"eff={self.efficiency} handshake={self.handshake_latency}s>"
        )
