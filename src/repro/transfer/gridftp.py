"""GridFTP-style parallel-stream transfer model.

§II-C: *"Future work will consider other protocols including
GridFTP."* — implemented here as an extension. GridFTP pipelines
transfers over a persistent control channel (amortizing the handshake)
and opens several parallel data streams, which grants a proportionally
larger share on a congested fair-shared link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.transfer.base import TransferProtocol


@dataclass(frozen=True, repr=False)
class GridFtpModel(TransferProtocol):
    """Pipelined, multi-stream GridFTP."""

    name: str = "gridftp"
    #: Pipelined session reuse: tiny per-file overhead.
    handshake_latency: float = 0.02
    efficiency: float = 0.97
    streams: int = 4
    per_stream_cap_bps: Optional[float] = None
