"""scp transfer model — the paper prototype's protocol (§II-C).

scp opens one ssh session per file: a handshake in the hundreds of
milliseconds, a single TCP stream, and some cipher/framing overhead.
On a 100 Mbps LAN the bandwidth efficiency is high; the handshake is
what penalizes many-small-file workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.transfer.base import TransferProtocol


@dataclass(frozen=True, repr=False)
class ScpModel(TransferProtocol):
    """Single-stream scp with per-file ssh handshake."""

    name: str = "scp"
    #: LAN ssh session setup (no DNS, cached host keys) ≈ 100 ms.
    handshake_latency: float = 0.1
    efficiency: float = 0.93
    streams: int = 1
    #: Cipher throughput limit (aes128 on a 2012-era core ≈ 400 Mbit/s);
    #: irrelevant on 100 Mbit links but binds on fast local networks.
    per_stream_cap_bps: Optional[float] = 400e6
