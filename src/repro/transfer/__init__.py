"""Transfer protocol models and staging plans.

The prototype in the paper uses ``scp`` per file and names GridFTP as
future work (§II-C). Here both are *models* that shape how a file
transfer maps onto network flows: per-file handshake latency, protocol
efficiency, single-stream caps and parallel streams.
"""

from repro.transfer.base import TransferProtocol, TransferRequest, TransferResult
from repro.transfer.scp import ScpModel
from repro.transfer.gridftp import GridFtpModel
from repro.transfer.staging import StagingPlan, TransferService

__all__ = [
    "TransferProtocol",
    "TransferRequest",
    "TransferResult",
    "ScpModel",
    "GridFtpModel",
    "StagingPlan",
    "TransferService",
]
